"""The LSTM case study of paper Sec. 8.4 (Fig. 7, Table 6).

Rammer exploits wavefront parallelism but reloads every cell's weights at
each time step; Souffle compiles the whole unrolled LSTM into ONE kernel,
discovers the temporal reuse of the weights via global analysis, and pins
them on-chip — cutting global-memory traffic by orders of magnitude.

Run:  python examples/lstm_case_study.py [time_steps] [cells]
"""

import sys

from repro import SouffleCompiler, profile_module
from repro.baselines import RammerCompiler
from repro.graph import lower_graph
from repro.analysis import find_reuse
from repro.models import build_lstm


def main(time_steps: int = 100, num_cells: int = 10) -> None:
    print(f"LSTM: {num_cells} cells x {time_steps} steps, hidden 256, FP16")
    graph = build_lstm(time_steps=time_steps, num_cells=num_cells)

    # --- what the global analysis sees -------------------------------------
    program = lower_graph(graph)
    reuse = find_reuse(program)
    recurrent = [
        opp for opp in reuse.temporal if opp.tensor.name.endswith("_U")
    ]
    print(
        f"\nglobal analysis: {len(program)} TEs; temporal-reuse tensors "
        f"include the recurrent weights, e.g. {recurrent[0].tensor.name} "
        f"consumed by {len(recurrent[0].consumers)} dependent GEMVs"
    )

    # --- Rammer: wavefront co-scheduling, weights reloaded per wavefront ---
    print("\ncompiling with Rammer (wavefront co-scheduling)...")
    rammer = profile_module(RammerCompiler().compile(graph))

    # --- Souffle: one kernel, weights pinned on-chip ------------------------
    print("compiling with Souffle...")
    module = SouffleCompiler().compile(graph)
    souffle = profile_module(module)

    pinned = module.kernels[0].reuse_report
    weights = [name for name in pinned.pinned if "_W" in name or "_U" in name]
    print(
        f"souffle reuse cache pinned {len(weights)} weight tensors "
        f"on-chip (e.g. {', '.join(weights[:4])} ...)"
    )

    print(f"\n{'metric':34s} {'rammer':>12s} {'souffle':>12s}")
    print(f"{'kernel launches':34s} {rammer.kernel_calls:12d} "
          f"{souffle.kernel_calls:12d}")
    print(f"{'global memory transfer (MB)':34s} "
          f"{rammer.transfer_bytes / 1e6:12.2f} "
          f"{souffle.transfer_bytes / 1e6:12.2f}")
    print(f"{'execution time (ms)':34s} {rammer.total_time_ms:12.3f} "
          f"{souffle.total_time_ms:12.3f}")
    ru, su = rammer.utilization(), souffle.utilization()
    print(f"{'FMA pipeline utilisation (%)':34s} {ru['fma'] * 100:12.1f} "
          f"{su['fma'] * 100:12.1f}")
    print(f"\npaper Table 6: 1911 MB vs 21.1 MB; Souffle is one kernel "
          f"with {module.kernels[0].spec.grid_syncs} grid syncs")


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    cells = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    main(steps, cells)
