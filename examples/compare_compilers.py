"""Compare Souffle against the six baseline compilers on one model.

Reproduces one row of the paper's Table 3 / Table 5 for a chosen model:

    python examples/compare_compilers.py            # BERT (default)
    python examples/compare_compilers.py efficientnet
    python examples/compare_compilers.py lstm
"""

import sys

from repro import compile_model, get_model, profile_module
from repro.baselines import ALL_BASELINES


def main(model_name: str = "bert") -> None:
    print(f"building {model_name} (paper Table 2 configuration)...")
    graph = get_model(model_name)

    rows = []
    module = compile_model(graph, level=4)
    rows.append(("souffle", profile_module(module)))
    for name, compiler_cls in ALL_BASELINES.items():
        print(f"compiling with {name}...")
        rows.append((name, profile_module(compiler_cls().compile(graph))))

    print()
    print(f"{'system':10s} {'time (ms)':>10s} {'kernels':>8s} "
          f"{'memory (MB)':>12s} {'speedup':>8s}")
    souffle_time = rows[0][1].total_time_ms
    for name, report in sorted(rows, key=lambda r: r[1].total_time_ms):
        print(
            f"{name:10s} {report.total_time_ms:10.3f} "
            f"{report.kernel_calls:8d} {report.transfer_bytes / 1e6:12.2f} "
            f"{report.total_time_ms / souffle_time:7.2f}x"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bert")
