"""Deployment-oriented features: dynamic shapes and memory planning.

Demonstrates the two Sec. 9 discussion items this reproduction implements:

* multi-version kernels with runtime shape dispatch ("generate multiple
  versions of a kernel and choose the appropriate one based on shape
  information available at execution time");
* workspace planning from the global liveness analysis (intermediates with
  disjoint live ranges share buffers).

Run:  python examples/deployment.py
"""

import numpy as np

from repro.graph import GraphBuilder, lower_graph
from repro.models import build_bert
from repro.runtime import ShapeDispatcher, plan_memory


def sequence_classifier(seq_len: int):
    """A tiny row-wise classifier parameterised by sequence length."""
    b = GraphBuilder(f"classifier_{seq_len}")
    x = b.input((seq_len, 64), name="tokens")
    w1 = b.weight((64, 128), name="w1")
    w2 = b.weight((128, 16), name="w2")
    hidden = b.relu(b.matmul(x, w1))
    return b.build([b.softmax(b.matmul(hidden, w2), axis=-1)])


def main() -> None:
    # ---- dynamic shapes ----------------------------------------------------
    dispatcher = ShapeDispatcher(
        sequence_classifier,
        buckets=[32, 64, 128],
        dynamic_inputs=["tokens"],
        level=4,
    )
    rng = np.random.default_rng(0)
    weights = {
        "w1": rng.standard_normal((64, 128)) * 0.1,
        "w2": rng.standard_normal((128, 16)) * 0.1,
    }
    print("dynamic-shape dispatch:")
    for seq_len in (20, 64, 100):
        feeds = dict(weights, tokens=rng.standard_normal((seq_len, 64)))
        (probabilities,) = dispatcher.run(feeds)
        record = dispatcher.history[-1]
        print(
            f"  request seq={record.requested:4d} -> bucket {record.bucket:4d} "
            f"(padded={record.padded}); output {probabilities.shape}, "
            f"rows sum to {probabilities.sum(axis=-1).mean():.3f}"
        )
    print(f"  compiled buckets: {dispatcher.compiled_buckets}")

    # ---- memory planning -----------------------------------------------------
    print("\nworkspace planning for BERT-base (2 layers shown):")
    program = lower_graph(build_bert(layers=2))
    plan = plan_memory(program)
    print(plan.render(top=8))


if __name__ == "__main__":
    main()
