"""Deployment-oriented features: dynamic shapes, serving and memory planning.

Demonstrates the two Sec. 9 discussion items this reproduction implements,
plus the plan-based serving path built on top of them:

* multi-version kernels with runtime shape dispatch ("generate multiple
  versions of a kernel and choose the appropriate one based on shape
  information available at execution time");
* workspace planning from the global liveness analysis (intermediates with
  disjoint live ranges share buffers);
* an `InferenceSession` that lowers the TE program once into a flat
  execution plan and replays it per request against a preallocated arena.

Run:  python examples/deployment.py
"""

import time

import numpy as np

from repro.graph import GraphBuilder, lower_graph
from repro.models import build_bert, build_bert_tiny
from repro.runtime import InferenceSession, ShapeDispatcher, plan_memory


def sequence_classifier(seq_len: int):
    """A tiny row-wise classifier parameterised by sequence length."""
    b = GraphBuilder(f"classifier_{seq_len}")
    x = b.input((seq_len, 64), name="tokens")
    w1 = b.weight((64, 128), name="w1")
    w2 = b.weight((128, 16), name="w2")
    hidden = b.relu(b.matmul(x, w1))
    return b.build([b.softmax(b.matmul(hidden, w2), axis=-1)])


def main() -> None:
    # ---- dynamic shapes ----------------------------------------------------
    dispatcher = ShapeDispatcher(
        sequence_classifier,
        buckets=[32, 64, 128],
        dynamic_inputs=["tokens"],
        level=4,
    )
    rng = np.random.default_rng(0)
    weights = {
        "w1": rng.standard_normal((64, 128)) * 0.1,
        "w2": rng.standard_normal((128, 16)) * 0.1,
    }
    print("dynamic-shape dispatch:")
    for seq_len in (20, 64, 100):
        feeds = dict(weights, tokens=rng.standard_normal((seq_len, 64)))
        (probabilities,) = dispatcher.run(feeds)
        record = dispatcher.history[-1]
        print(
            f"  request seq={record.requested:4d} -> bucket {record.bucket:4d} "
            f"(padded={record.padded}); output {probabilities.shape}, "
            f"rows sum to {probabilities.sum(axis=-1).mean():.3f}"
        )
    print(f"  compiled buckets: {dispatcher.compiled_buckets}")
    bucket_session = dispatcher.module_for(64).session
    print(
        f"  bucket-64 session: {bucket_session.request_count} requests "
        f"through one plan, {bucket_session.workspace_bytes} arena bytes "
        f"x{bucket_session.arenas_allocated}"
    )

    # ---- serving with an explicit session ------------------------------------
    print("\nplan-based serving (tiny BERT, 200 requests):")
    program = lower_graph(build_bert_tiny())
    session = InferenceSession(program, profile=True, optimize=True)
    feeds = {
        t.name: rng.standard_normal(t.shape) * 0.1 for t in program.inputs
    }
    start = time.perf_counter()
    for _ in range(200):
        session.run_by_name(feeds)
    wall = time.perf_counter() - start
    print(
        f"  {session.request_count} requests in {wall:.3f}s "
        f"({session.requests_per_second:.0f} req/s), workspace "
        f"{session.workspace_bytes / 1e3:.1f} kB allocated "
        f"{session.arenas_allocated}x"
    )
    print(f"  {session.plan.optimization.stats.summary()}")

    # `optimize=True` is the default; `optimize=False` keeps the plain
    # one-step-per-TE plan (the baseline the optimizer is measured against).
    plain = InferenceSession(program, optimize=False)
    plain.run_by_name(feeds)
    start = time.perf_counter()
    for _ in range(200):
        plain.run_by_name(feeds)
    print(
        f"  unoptimized baseline: {200 / (time.perf_counter() - start):.0f} "
        f"req/s over {plain.plan.num_steps} steps"
    )
    print("\n  slowest plan steps:")
    for line in session.profile_report().render(top=5).splitlines()[1:]:
        print("  " + line)

    # ---- dynamic micro-batching ----------------------------------------------
    print("\ndynamic micro-batching (tiny BERT, 8 client threads):")
    import threading

    lead = program.inputs[0]
    base = dict(feeds)

    def request_feeds():
        varied = dict(base)
        varied[lead.name] = rng.standard_normal(lead.shape) * 0.1
        return varied

    batch_session = InferenceSession(program)
    with batch_session.serve(max_batch_size=8, max_queue_delay_ms=2.0) as server:

        def client():
            for _ in range(16):
                server.run(request_feeds(), timeout=60)

        threads = [threading.Thread(target=client) for _ in range(8)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
    print(
        f"  {server.requests_completed} requests in {wall:.3f}s "
        f"({server.requests_completed / wall:.0f} req/s), "
        f"mean batch {server.mean_batch_size:.1f}"
    )
    for line in server.profile_report().render().splitlines()[:2]:
        print("  " + line)

    # ---- memory planning -----------------------------------------------------
    print("\nworkspace planning for BERT-base (2 layers shown):")
    program = lower_graph(build_bert(layers=2))
    plan = plan_memory(program)
    print(plan.render(top=8))


if __name__ == "__main__":
    main()
