"""Quickstart: compile a BERT attention block with Souffle and inspect it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compile_model, profile_module
from repro.baselines import UnfusedCompiler
from repro.models import build_bert_attention_subgraph


def main() -> None:
    # A single BERT-base attention block (the paper's motivating subgraph).
    graph = build_bert_attention_subgraph(seq_len=32, hidden=64, heads=2)

    # Compile at full optimisation (V4): horizontal + vertical TE
    # transformations, resource-aware partitioning with grid sync, and
    # subprogram-level pipeline/reuse optimisation.
    module = compile_model(graph, level=4, validate=True)
    print(module)

    # --- performance (analytic A100 model) --------------------------------
    report = profile_module(module)
    print(report.render())

    # --- the generated merged kernel, as pseudo-CUDA -----------------------
    print()
    print(module.render_kernels(limit=1))

    # --- functional execution + correctness vs an unfused compile ----------
    rng = np.random.default_rng(0)
    feeds = {t.name: rng.standard_normal(t.shape) * 0.1
             for t in module.program.inputs}
    (output,) = module.run_by_name(feeds)

    unfused = UnfusedCompiler().compile(graph)
    (expected,) = unfused.run_by_name(feeds)
    print(f"\noutput shape: {output.shape}")
    print(f"max |souffle - unfused| = {np.abs(output - expected).max():.3e}")
    assert np.allclose(output, expected, atol=1e-6)
    print("optimised module matches the unfused reference.")


if __name__ == "__main__":
    main()
