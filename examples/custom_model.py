"""Walk the whole Souffle pipeline on a hand-built model, stage by stage.

Shows what each phase of the paper's Fig. 2 workflow produces: the lowered
TE program, element-wise dependence relations, reuse sets, compute/memory
characterisation, partitioning, transformed TEs and the merged kernel.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import GraphBuilder, compile_model, lower_graph, profile_module
from repro.analysis import (
    Partitioner,
    characterize_program,
    find_reuse,
    te_relations,
)
from repro.gpu import a100_40gb
from repro.te import format_tensor
from repro.transform import (
    check_equivalent,
    horizontal_transform,
    vertical_transform,
)


def build_model():
    """A small two-branch MLP with a softmax head — enough structure to
    exercise every analysis: spatial reuse (two branches reading x),
    temporal reuse (softmax), memory ops (transpose) and reductions."""
    b = GraphBuilder("custom")
    x = b.input((64, 128), name="x")
    w1, w2 = b.weight((128, 64), name="w1"), b.weight((128, 64), name="w2")
    left = b.relu(b.matmul(x, w1))
    right = b.sigmoid(b.matmul(x, w2))
    merged = b.add(left, right)
    head = b.matmul(merged, b.weight((64, 32), name="w3"))
    return b.build([b.softmax(head, axis=-1)])


def main() -> None:
    graph = build_model()

    # ---- 1. TE lowering ----------------------------------------------------
    program = lower_graph(graph)
    print(f"1. lowered to {len(program)} tensor expressions:")
    for node in program:
        print(f"   {format_tensor(node.tensor)[:100]}")

    # ---- 2. global analysis -------------------------------------------------
    print("\n2. element-wise dependence (paper Sec. 5.2):")
    for node in list(program)[:3]:
        for relation in te_relations(node):
            print(f"   {relation.to_polyhedral()[:100]}")

    reuse = find_reuse(program)
    print("\n   spatial reuse:", [o.tensor.name for o in reuse.spatial])
    print("   temporal reuse:", [o.tensor.name for o in reuse.temporal])

    chars = characterize_program(program)
    ci = [n.name for n, c in chars.items() if c.is_compute_intensive]
    print("   compute-intensive TEs:", ci)

    # ---- 3. semantic-preserving transformations ------------------------------
    transformed, hreport = horizontal_transform(program)
    transformed, vreport = vertical_transform(transformed)
    print(f"\n3. transforms: {hreport.num_merged_groups} horizontal merges, "
          f"{vreport.num_inlined} vertical inlines -> "
          f"{len(program)} TEs become {len(transformed)}")
    assert check_equivalent(program, transformed)
    print("   differential check: PASS")

    # ---- 4. partitioning -----------------------------------------------------
    partition = Partitioner(a100_40gb()).partition(transformed)
    print(f"\n4. partitioned into {partition.num_subprograms} subprogram(s):")
    for sub in partition.subprograms:
        print(f"   {sub} -> {sub.names}")

    # ---- 5. full compile + profile -------------------------------------------
    module = compile_model(graph, level=4)
    report = profile_module(module)
    print(f"\n5. compiled: {report.kernel_calls} kernel(s), "
          f"{report.total_time_us:.1f} us, "
          f"{report.transfer_bytes / 1e3:.1f} KB moved")

    rng = np.random.default_rng(0)
    feeds = {t.name: rng.standard_normal(t.shape) * 0.1
             for t in module.program.inputs}
    (probabilities,) = module.run_by_name(feeds)
    assert np.allclose(probabilities.sum(axis=-1), 1.0)
    print("   softmax rows sum to 1: functional execution OK")


if __name__ == "__main__":
    main()
