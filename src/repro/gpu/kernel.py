"""Kernel descriptors consumed by the analytic simulator.

A :class:`KernelSpec` is the contract between every compiler in this repo
(Souffle and the six baselines) and the performance model: launch geometry,
resource footprint, arithmetic work split by precision, and global-memory
traffic after all fusion/reuse decisions have been applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class KernelSpec:
    """One GPU kernel launch."""

    name: str
    grid_blocks: int
    threads_per_block: int
    shared_mem_per_block: int = 0       # bytes
    regs_per_thread: int = 32

    # Arithmetic work.
    fp16_flops: float = 0.0             # tensor-core eligible FLOPs
    fp32_flops: float = 0.0             # CUDA-core FLOPs

    # Global memory traffic (after fusion & reuse decisions).
    load_bytes: float = 0.0
    store_bytes: float = 0.0
    atomic_bytes: float = 0.0           # global atomicAdd traffic

    # Intra-kernel structure.
    grid_syncs: int = 0                 # grid.sync() calls inside the kernel
    pipelined: bool = False             # ldgsts/compute overlap scheduled

    # Codegen-quality overrides: fraction of peak the generated code achieves.
    # ``None`` uses the simulator defaults; baselines use these to model
    # documented strengths/weaknesses (e.g. TensorRT's hand-tuned GEMMs vs
    # IREE's weak direct-conv code, paper Sec. 8.1).
    compute_efficiency: Optional[float] = None
    bandwidth_efficiency: Optional[float] = None
    te_names: List[str] = field(default_factory=list)
    source_ops: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0 or self.threads_per_block <= 0:
            raise ValueError(
                f"kernel {self.name} has empty launch geometry "
                f"({self.grid_blocks} x {self.threads_per_block})"
            )

    @property
    def total_flops(self) -> float:
        return self.fp16_flops + self.fp32_flops

    @property
    def total_bytes(self) -> float:
        return self.load_bytes + self.store_bytes + self.atomic_bytes

    @property
    def is_compute_bound_hint(self) -> bool:
        """Rough arithmetic-intensity hint (FLOPs per byte > 10)."""
        return self.total_flops > 10 * max(self.total_bytes, 1.0)

    def __repr__(self) -> str:
        return (
            f"<Kernel {self.name}: grid={self.grid_blocks} "
            f"threads={self.threads_per_block} smem={self.shared_mem_per_block}B "
            f"flops={self.total_flops:.3g} bytes={self.total_bytes:.3g}>"
        )


@dataclass
class KernelMetrics:
    """Simulated performance counters for one kernel (Nsight stand-in)."""

    kernel: KernelSpec
    time_us: float
    compute_time_us: float
    memory_time_us: float
    launch_overhead_us: float
    sync_overhead_us: float
    occupancy: float                # resident blocks / max resident blocks
    wave_utilization: float         # grid blocks / max blocks per wave (<=1)
    lsu_utilization: float          # load-store pipeline busy fraction
    fma_utilization: float          # arithmetic pipeline busy fraction

    @property
    def bytes_from_global(self) -> float:
        return self.kernel.load_bytes + self.kernel.atomic_bytes

    @property
    def bytes_to_global(self) -> float:
        return self.kernel.store_bytes + self.kernel.atomic_bytes
