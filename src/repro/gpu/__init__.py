"""GPU substrate: device models, kernel descriptors, analytic simulator."""

from repro.gpu.device import GPUSpec, a100_40gb, v100_16gb
from repro.gpu.kernel import KernelMetrics, KernelSpec
from repro.gpu.simulator import GPUSimulator, ModuleMetrics

__all__ = [
    "GPUSimulator",
    "GPUSpec",
    "KernelMetrics",
    "KernelSpec",
    "ModuleMetrics",
    "a100_40gb",
    "v100_16gb",
]
