"""Analytic GPU performance simulator.

A roofline-style model with launch and synchronisation overheads:

    t_kernel = launch + busy(t_compute, t_memory) + syncs * t_sync

``busy`` models the memory/compute overlap the hardware achieves. Kernels
that Souffle's instruction-level optimisation has pipelined
(``KernelSpec.pipelined``) overlap nearly perfectly (Sec. 6.5's
LDGSTS/HMMA dual issue); others achieve partial overlap.

Compute throughput degrades when a kernel cannot fill the device (few
blocks), which is what makes horizontal fusion profitable, and memory
throughput degrades for tiny transfers (latency-bound), which is what makes
kernel fusion of small elementwise ops profitable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.gpu.device import GPUSpec
from repro.gpu.kernel import KernelMetrics, KernelSpec

# Fraction of min(t_mem, t_comp) hidden by hardware overlap in an ordinary
# kernel vs one scheduled for software pipelining.
DEFAULT_OVERLAP = 0.55
PIPELINED_OVERLAP = 0.92

# Achievable fractions of peak (no real kernel hits 100%).
COMPUTE_EFFICIENCY = 0.60
BANDWIDTH_EFFICIENCY = 0.82

# A memory transaction cannot beat this latency floor no matter how small
# (DRAM round-trip); it is what makes many tiny kernels slow.
MIN_MEMORY_TIME_US = 1.2


@dataclass
class ModuleMetrics:
    """Aggregated counters for a whole compiled module."""

    kernels: List[KernelMetrics] = field(default_factory=list)

    @property
    def total_time_us(self) -> float:
        return sum(k.time_us for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_us / 1e3

    @property
    def kernel_calls(self) -> int:
        return len(self.kernels)

    @property
    def load_bytes(self) -> float:
        return sum(k.kernel.load_bytes + k.kernel.atomic_bytes for k in self.kernels)

    @property
    def store_bytes(self) -> float:
        return sum(k.kernel.store_bytes + k.kernel.atomic_bytes for k in self.kernels)

    @property
    def transfer_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def launch_overhead_us(self) -> float:
        return sum(k.launch_overhead_us for k in self.kernels)

    def mean_utilization(self) -> dict:
        """Time-weighted pipeline utilisation (Table 6 counters)."""
        total = max(self.total_time_us, 1e-9)
        lsu = sum(k.lsu_utilization * k.time_us for k in self.kernels) / total
        fma = sum(k.fma_utilization * k.time_us for k in self.kernels) / total
        return {"lsu": lsu, "fma": fma}


class GPUSimulator:
    """Evaluates :class:`KernelSpec` sequences against a :class:`GPUSpec`."""

    def __init__(self, device: GPUSpec) -> None:
        self.device = device

    # ---- single kernel ----------------------------------------------------

    def run_kernel(self, kernel: KernelSpec) -> KernelMetrics:
        device = self.device

        blocks_per_sm = device.blocks_per_sm(
            kernel.threads_per_block,
            kernel.shared_mem_per_block,
            kernel.regs_per_thread,
        )
        max_wave = max(blocks_per_sm * device.sm_count, 1)
        wave_util = min(kernel.grid_blocks / max_wave, 1.0)
        occupancy = min(
            blocks_per_sm * kernel.threads_per_block / device.max_threads_per_sm,
            1.0,
        )

        # Device fill factor: a grid smaller than one SM per block leaves
        # compute units idle and scales throughput down linearly.
        fill = min(kernel.grid_blocks / device.sm_count, 1.0)

        compute_eff = (
            kernel.compute_efficiency
            if kernel.compute_efficiency is not None
            else COMPUTE_EFFICIENCY
        )
        bandwidth_eff = (
            kernel.bandwidth_efficiency
            if kernel.bandwidth_efficiency is not None
            else BANDWIDTH_EFFICIENCY
        )
        compute_time_us = 0.0
        if kernel.fp16_flops:
            peak = device.peak_flops(use_tensor_core=True) * compute_eff
            compute_time_us += kernel.fp16_flops / (peak * max(fill, 1e-3)) * 1e6
        if kernel.fp32_flops:
            peak = device.peak_flops(use_tensor_core=False) * compute_eff
            compute_time_us += kernel.fp32_flops / (peak * max(fill, 1e-3)) * 1e6

        bandwidth = device.bandwidth_bytes * bandwidth_eff
        stream_bytes = kernel.load_bytes + kernel.store_bytes
        memory_time_us = stream_bytes / bandwidth * 1e6
        if kernel.atomic_bytes:
            memory_time_us += (
                kernel.atomic_bytes / (device.atomic_throughput_gbs * 1e9) * 1e6
            )
        if stream_bytes or kernel.atomic_bytes:
            memory_time_us = max(memory_time_us, MIN_MEMORY_TIME_US)

        overlap = PIPELINED_OVERLAP if kernel.pipelined else DEFAULT_OVERLAP
        short, long_ = sorted((compute_time_us, memory_time_us))
        busy_us = long_ + (1.0 - overlap) * short

        sync_overhead_us = kernel.grid_syncs * device.grid_sync_us
        launch_us = device.kernel_launch_us
        time_us = launch_us + busy_us + sync_overhead_us

        denominator = max(busy_us, 1e-9)
        lsu_util = min(memory_time_us / denominator, 1.0)
        fma_util = min(compute_time_us / denominator, 1.0)

        return KernelMetrics(
            kernel=kernel,
            time_us=time_us,
            compute_time_us=compute_time_us,
            memory_time_us=memory_time_us,
            launch_overhead_us=launch_us,
            sync_overhead_us=sync_overhead_us,
            occupancy=occupancy,
            wave_utilization=wave_util,
            lsu_utilization=lsu_util,
            fma_utilization=fma_util,
        )

    # ---- whole module -------------------------------------------------------

    def run_module(self, kernels: Sequence[KernelSpec]) -> ModuleMetrics:
        """Simulate a module: kernels execute back-to-back in order."""
        metrics = ModuleMetrics()
        for kernel in kernels:
            metrics.kernels.append(self.run_kernel(kernel))
        return metrics
