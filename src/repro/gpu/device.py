"""GPU device models.

An analytic description of the target accelerator: enough detail for the
roofline cost model, occupancy/resource checks and the max-blocks-per-wave
constraint that drives Souffle's TE-program partitioning (Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static hardware parameters of one GPU."""

    name: str
    sm_count: int
    shared_mem_per_sm: int          # bytes
    registers_per_sm: int           # 32-bit registers
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int
    fp32_tflops: float              # peak FMA throughput
    fp16_tensor_tflops: float       # peak tensor-core throughput
    mem_bandwidth_gbs: float        # global memory bandwidth
    l2_cache_bytes: int
    kernel_launch_us: float         # paper Sec. 8.3: ~2 us on A100
    grid_sync_us: float             # lightweight CUDA grid sync
    atomic_throughput_gbs: float    # atomicAdd bandwidth for global reduction

    @property
    def total_shared_mem(self) -> int:
        """Device-wide shared memory: the ``C`` of the partitioning model."""
        return self.sm_count * self.shared_mem_per_sm

    @property
    def total_registers(self) -> int:
        return self.sm_count * self.registers_per_sm

    def blocks_per_sm(self, threads_per_block: int, shared_mem_per_block: int,
                      regs_per_thread: int = 32) -> int:
        """How many blocks of the given footprint fit on one SM."""
        limit = self.max_blocks_per_sm
        if threads_per_block > 0:
            limit = min(limit, self.max_threads_per_sm // threads_per_block)
        if shared_mem_per_block > 0:
            limit = min(limit, self.shared_mem_per_sm // shared_mem_per_block)
        regs_per_block = regs_per_thread * threads_per_block
        if regs_per_block > 0:
            limit = min(limit, self.registers_per_sm // regs_per_block)
        return max(limit, 0)

    def max_blocks_per_wave(self, threads_per_block: int,
                            shared_mem_per_block: int,
                            regs_per_thread: int = 32) -> int:
        """Maximum co-resident blocks — the grid-sync feasibility bound."""
        return self.sm_count * self.blocks_per_sm(
            threads_per_block, shared_mem_per_block, regs_per_thread
        )

    def peak_flops(self, use_tensor_core: bool) -> float:
        """Peak arithmetic throughput in FLOP/s."""
        tflops = self.fp16_tensor_tflops if use_tensor_core else self.fp32_tflops
        return tflops * 1e12

    @property
    def bandwidth_bytes(self) -> float:
        """Global memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9


def a100_40gb() -> GPUSpec:
    """The paper's evaluation platform (Sec. 7.1): NVIDIA A100-40GB."""
    return GPUSpec(
        name="NVIDIA A100-40GB",
        sm_count=108,
        shared_mem_per_sm=164 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        warp_size=32,
        fp32_tflops=19.5,
        fp16_tensor_tflops=312.0,
        mem_bandwidth_gbs=1555.0,
        l2_cache_bytes=40 * 1024 * 1024,
        kernel_launch_us=2.0,
        grid_sync_us=0.35,
        atomic_throughput_gbs=200.0,
    )


def v100_16gb() -> GPUSpec:
    """A secondary device model, useful for portability tests."""
    return GPUSpec(
        name="NVIDIA V100-16GB",
        sm_count=80,
        shared_mem_per_sm=96 * 1024,
        registers_per_sm=65536,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        warp_size=32,
        fp32_tflops=15.7,
        fp16_tensor_tflops=125.0,
        mem_bandwidth_gbs=900.0,
        l2_cache_bytes=6 * 1024 * 1024,
        kernel_launch_us=2.5,
        grid_sync_us=0.5,
        atomic_throughput_gbs=120.0,
    )
