"""Building merged kernels from TE groups (paper Sec. 6.4-6.5).

One subprogram (or baseline fusion group) becomes one GPU kernel:

* TEs are assigned *stage depths*; consecutive depths are separated by
  ``grid.sync()`` (Sec. 6.4 "inserts global sync primitives between TEs with
  one-relies-on-many dependency");
* memory-intensive TEs attach to their producer's stage (schedule
  propagation, Sec. 6.3), so their values flow through shared memory and
  registers instead of global memory;
* the kernel's launch geometry is the maximum over its stages, with
  predicates guarding smaller TEs (Fig. 2's ``if blockIdx.x < 4`` wrappers);
* every global-memory access is recorded in a linear trace that the reuse
  pass (Sec. 6.5) later optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.characterize import TECharacter
from repro.errors import CodegenError
from repro.gpu.device import GPUSpec
from repro.gpu.kernel import KernelSpec
from repro.graph.te_program import TENode, TEProgram
from repro.schedule.ansor import AnsorScheduler
from repro.schedule.schedule import TESchedule
from repro.te.patterns import is_reduction
from repro.te.tensor import Tensor
from repro.tir.reuse_cache import Access, ReuseReport, total_traffic
from repro.tir.stmt import (
    AllocShared,
    ComputeStmt,
    GridSync,
    KernelFunction,
    LoadGlobal,
    Predicate,
    StoreGlobal,
    Stmt,
)

CI = "ci"
MI_ELEM = "mi-elem"
MI_REDUCE = "mi-reduce"


@dataclass
class BuiltKernel:
    """A constructed kernel plus its access trace for later optimisation."""

    spec: KernelSpec
    function: KernelFunction
    accesses: List[Access] = field(default_factory=list)
    reuse_report: Optional[ReuseReport] = None

    def refresh_traffic(self) -> None:
        """Recompute the spec's traffic from the (optimised) access trace."""
        loads, stores = total_traffic(self.accesses)
        self.spec.load_bytes = loads
        self.spec.store_bytes = stores


def _node_kind(node: TENode, chars: Dict[TENode, TECharacter]) -> str:
    if chars[node].is_compute_intensive:
        return CI
    if is_reduction(node.tensor):
        return MI_REDUCE
    return MI_ELEM


def _stage_depths(
    nodes: Sequence[TENode],
    program: TEProgram,
    kinds: Dict[TENode, str],
    uses_atomic: Dict[TENode, bool],
) -> Dict[TENode, int]:
    """Assign each TE a stage depth; a +1 edge means a grid sync is required
    before the consumer can run.

    Edge cost from producer p to consumer n (both in-kernel):
      * p is a two-phase (atomic) reduce  -> 1 (its result lands after sync)
      * n is compute-intensive and p is a contraction/reduction -> 1
        (n needs p complete device-wide)
      * n is a row-wise reduction that sweeps *all* of p per output element
        (e.g. an LSTM GEMV consuming the previous wavefront's whole hidden
        state) -> 1: the swept data spans blocks, so p must be complete
        device-wide — Fig. 7(b)'s grid sync between wavefronts
      * otherwise                          -> 0 (value flows on-chip:
        elementwise consumers align with p's tiles/rows via compute_at,
        row-aligned reductions like softmax's sum reduce their own block's
        rows, and elementwise producers inline into a contraction's operand
        reads as a prologue, TVM-style)
    """
    node_set = set(nodes)
    depth: Dict[TENode, int] = {}
    for node in nodes:
        d = 0
        reduce_domain = 1
        if kinds[node] == MI_REDUCE:
            assert node.tensor.op is not None
            for ax in node.tensor.op.reduce_axes:
                reduce_domain *= ax.extent
        for producer in program.node_producers(node):
            if producer not in node_set:
                continue
            cost = 0
            if uses_atomic[producer]:
                cost = 1
            elif kinds[node] == CI and kinds[producer] != MI_ELEM:
                cost = 1
            elif (
                kinds[node] == MI_REDUCE
                and not uses_atomic[node]
                and reduce_domain >= producer.tensor.num_elements
            ):
                cost = 1
            d = max(d, depth[producer] + cost)
        depth[node] = d
    return depth


def build_kernel(
    name: str,
    nodes: Sequence[TENode],
    program: TEProgram,
    chars: Dict[TENode, TECharacter],
    schedules: Dict[TENode, TESchedule],
    scheduler: AnsorScheduler,
    device: GPUSpec,
    allow_sync: bool = True,
) -> BuiltKernel:
    """Merge a group of TEs into one kernel with a traffic trace."""
    if not nodes:
        raise CodegenError(f"kernel {name} has no TEs")
    node_set = set(nodes)
    in_kernel = {id(n.tensor) for n in nodes}
    kinds = {n: _node_kind(n, chars) for n in nodes}

    def schedule_of(node: TENode) -> TESchedule:
        sched = schedules.get(node)
        if sched is None:
            sched = scheduler.schedule(node)
            schedules[node] = sched
        return sched

    uses_atomic = {
        n: kinds[n] == MI_REDUCE and schedule_of(n).atomic_bytes > 0
        for n in nodes
    }
    depth = _stage_depths(nodes, program, kinds, uses_atomic)
    max_depth = max(depth.values())
    if max_depth > 0 and not allow_sync:
        raise CodegenError(
            f"kernel {name} requires grid sync but sync is disabled; "
            "the grouping pass must not form such groups"
        )

    # ---- per-node traffic + statements -------------------------------------
    accesses: List[Access] = []
    stage_stmts: Dict[int, List[Stmt]] = {d: [] for d in range(max_depth + 1)}
    params: List[Tensor] = []
    param_ids: Set[int] = set()

    fp16_flops = 0.0
    fp32_flops = 0.0
    atomic_bytes = 0.0
    grid_blocks = 1
    threads = 1
    smem = 0
    regs = 32

    for node in nodes:
        sched = schedule_of(node)
        fp16_flops += sched.fp16_flops
        fp32_flops += sched.fp32_flops
        grid_blocks = max(grid_blocks, sched.grid_blocks)
        threads = max(threads, sched.threads_per_block)
        smem = max(smem, sched.shared_mem_per_block)
        regs = max(regs, sched.regs_per_thread)
        stmts = stage_stmts[depth[node]]

        # Input loads.
        inputs = node.inputs
        external = [t for t in inputs if id(t) not in in_kernel]
        external_total = sum(t.size_bytes for t in external) or 1
        for tensor in inputs:
            producer = program.producer(tensor)
            if producer is not None and producer in node_set:
                if depth[producer] == depth[node]:
                    continue  # on-chip flow within the stage
                internal = _internal(tensor, program, node_set)
                access = Access(tensor, "load", float(tensor.size_bytes),
                                internal=internal)
                accesses.append(access)
                stmts.append(LoadGlobal(tensor, access.nbytes))
            else:
                if kinds[node] == CI:
                    # Distribute the schedule's amortised contraction loads
                    # (with tile reload factors) across external inputs.
                    nbytes = sched.load_bytes * tensor.size_bytes / external_total
                else:
                    nbytes = float(tensor.size_bytes)
                access = Access(tensor, "load", nbytes, internal=False)
                accesses.append(access)
                stmts.append(LoadGlobal(tensor, nbytes))
                if id(tensor) not in param_ids:
                    param_ids.add(id(tensor))
                    params.append(tensor)

        # Compute.
        atomic_here = uses_atomic[node]
        if atomic_here:
            atomic_bytes += sched.atomic_bytes
        stmts.append(
            ComputeStmt(
                te_name=node.name,
                op_type=node.op_type,
                flops=sched.total_flops,
                tensor_core=sched.use_tensor_core,
                atomic=atomic_here,
            )
        )

        # Output store.
        out = node.tensor
        internal = _internal(out, program, node_set)
        store_bytes = 0.0 if atomic_here else float(out.size_bytes)
        access = Access(out, "store", store_bytes, internal=internal)
        accesses.append(access)
        stmts.append(StoreGlobal(out, store_bytes))
        if not internal and id(out) not in param_ids:
            param_ids.add(id(out))
            params.append(out)

    # ---- launch geometry ----------------------------------------------------
    syncs = max_depth
    if syncs > 0:
        # A kernel containing grid syncs must fit in one wave; larger stages
        # loop over tiles inside the persistent blocks. Register pressure
        # bounds the wave just like threads and shared memory do.
        wave = device.max_blocks_per_wave(threads, smem, regs)
        grid_blocks = min(grid_blocks, max(wave, 1))

    spec = KernelSpec(
        name=name,
        grid_blocks=grid_blocks,
        threads_per_block=threads,
        shared_mem_per_block=smem,
        regs_per_thread=regs,
        fp16_flops=fp16_flops,
        fp32_flops=fp32_flops,
        atomic_bytes=atomic_bytes,
        grid_syncs=syncs,
        te_names=[n.name for n in nodes],
        source_ops=sorted({n.op_name for n in nodes}),
    )

    # ---- function body -------------------------------------------------------
    body: List[Stmt] = [AllocShared(f"smem_{name}", smem)]
    for level in range(max_depth + 1):
        level_nodes = [n for n in nodes if depth[n] == level]
        active = max(
            (schedules[n].grid_blocks for n in level_nodes), default=grid_blocks
        )
        active = min(active, grid_blocks)
        body.append(Predicate(active, stage_stmts[level]))
        if level < max_depth:
            body.append(GridSync())
    function = KernelFunction(
        name=name,
        params=params,
        grid_blocks=grid_blocks,
        threads_per_block=threads,
        shared_mem_bytes=smem,
        stmts=body,
    )

    built = BuiltKernel(spec=spec, function=function, accesses=accesses)
    built.refresh_traffic()
    return built


def _internal(tensor: Tensor, program: TEProgram, node_set: Set[TENode]) -> bool:
    """Tensor never observed outside this kernel."""
    if program.is_output(tensor):
        return False
    return all(c in node_set for c in program.consumers(tensor))
