"""Tensor-reuse optimisation: the software-managed on-chip cache (Sec. 6.5).

Souffle "maximizes tensor buffer reuse across TEs with a simple
software-managed cache, using a Least Recently Used (LRU) policy ... It
scans instructions linearly until shared memory is exhausted, spilling the
shared memory to global memory".

We implement that linear LRU scan over a kernel's tensor-access trace, plus
a pinning pre-pass for tensors accessed many times across stages (the
grid-persistent-weight pattern of the LSTM case study, Sec. 8.4, where each
block keeps its cell's weights on-chip across all time steps). Pinning is a
greedy knapsack on bytes saved; the remaining capacity runs the LRU scan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.te.tensor import Tensor


@dataclass
class Access:
    """One global-memory access in a kernel's linear instruction scan."""

    tensor: Tensor
    kind: str            # "load" | "store"
    nbytes: float        # traffic this access would cost uncached
    internal: bool = False  # tensor lives entirely within this kernel
    satisfied: bool = False  # set by the pass: on-chip, no global traffic

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise ValueError(f"bad access kind {self.kind!r}")


@dataclass
class ReuseReport:
    """Outcome of the reuse pass for one kernel."""

    pinned: List[str] = field(default_factory=list)
    bytes_saved: float = 0.0
    loads_satisfied: int = 0
    stores_elided: int = 0


# Fraction of register file usable as a spill target for the software cache
# (values also live in registers, paper Sec. 2.3 "cache ... on
# register/shared memory").
REGISTER_CACHE_FRACTION = 0.5


def cache_capacity_bytes(total_shared: int, total_registers: int) -> float:
    """On-chip capacity available to the software-managed cache."""
    return total_shared + REGISTER_CACHE_FRACTION * total_registers * 4


def apply_reuse(accesses: List[Access], capacity: float) -> ReuseReport:
    """Mutates ``accesses`` marking which are satisfied on-chip.

    1. **Pinning**: tensors loaded more than once are candidates; pin
       greedily by bytes-saved density until capacity is filled. Pinned
       tensors pay their first load only.
    2. **LRU scan** over the remainder with the leftover capacity: a load
       hits if the tensor is resident; every touched tensor becomes resident
       (evicting least-recently-used). Stores of *internal* tensors whose
       subsequent loads all hit are elided entirely (the value never leaves
       chip, Sec. 2.3 "the entire tensor data can be kept on-chip").
    """
    report = ReuseReport()

    load_counts: Dict[int, int] = {}
    tensors: Dict[int, Tensor] = {}
    for access in accesses:
        tensors[id(access.tensor)] = access.tensor
        if access.kind == "load":
            load_counts[id(access.tensor)] = load_counts.get(id(access.tensor), 0) + 1

    # ---- pinning pre-pass -------------------------------------------------
    pinned: Set[int] = set()
    remaining = capacity
    candidates = [
        (key, tensors[key]) for key, count in load_counts.items() if count >= 2
    ]
    candidates.sort(
        key=lambda pair: (load_counts[pair[0]] - 1) * pair[1].size_bytes,
        reverse=True,
    )
    for key, tensor in candidates:
        if tensor.size_bytes <= remaining:
            pinned.add(key)
            remaining -= tensor.size_bytes
            report.pinned.append(tensor.name)

    seen_pinned: Set[int] = set()
    for access in accesses:
        key = id(access.tensor)
        if key not in pinned:
            continue
        if access.kind == "load":
            if key in seen_pinned:
                access.satisfied = True
                report.bytes_saved += access.nbytes
                report.loads_satisfied += 1
            seen_pinned.add(key)
        else:
            seen_pinned.add(key)

    # ---- LRU scan ---------------------------------------------------------
    lru: "OrderedDict[int, float]" = OrderedDict()
    used = 0.0

    def touch(key: int, nbytes: float) -> None:
        nonlocal used
        if nbytes > remaining:
            return  # larger than the cache: never resident
        if key in lru:
            lru.move_to_end(key)
            return
        while used + nbytes > remaining and lru:
            _, evicted = lru.popitem(last=False)
            used -= evicted
        if used + nbytes <= remaining:
            lru[key] = nbytes
            used += nbytes

    resident_loads: Dict[int, List[Access]] = {}
    for access in accesses:
        key = id(access.tensor)
        if key in pinned:
            continue
        nbytes = access.tensor.size_bytes
        if access.kind == "load":
            if key in lru:
                access.satisfied = True
                report.bytes_saved += access.nbytes
                report.loads_satisfied += 1
            resident_loads.setdefault(key, []).append(access)
            touch(key, nbytes)
        else:
            touch(key, nbytes)

    # ---- elide stores of fully on-chip internal tensors ---------------------
    # An internal tensor whose every in-kernel load was satisfied on-chip
    # never needs its global copy: the value stays in shared memory/registers
    # for its whole life (Sec. 2.3 "the entire tensor data can be kept
    # on-chip"). For pinned internal tensors the store *is* the placement, so
    # all their loads are satisfied by construction.
    loads_by_tensor: Dict[int, List[Access]] = {}
    for access in accesses:
        if access.kind == "load":
            loads_by_tensor.setdefault(id(access.tensor), []).append(access)
    for access in accesses:
        key = id(access.tensor)
        if access.kind != "store" or not access.internal or access.satisfied:
            continue
        loads = loads_by_tensor.get(key, [])
        if loads and all(a.satisfied for a in loads):
            access.satisfied = True
            report.bytes_saved += access.nbytes
            report.stores_elided += 1

    return report


def total_traffic(accesses: List[Access]) -> Tuple[float, float]:
    """(load_bytes, store_bytes) after the reuse pass."""
    loads = sum(a.nbytes for a in accesses if a.kind == "load" and not a.satisfied)
    stores = sum(a.nbytes for a in accesses if a.kind == "store" and not a.satisfied)
    return loads, stores
