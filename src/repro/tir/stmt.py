"""A lightweight TensorIR-like statement representation.

Merged subprogram kernels are represented as a statement list (Fig. 2 step 5
of the paper): shared-memory allocations, global<->shared transfers, compute
statements, predicates matching launch dimensions, and ``grid.sync()``.
The simulator consumes the aggregate :class:`repro.gpu.kernel.KernelSpec`;
this IR exists so kernels are inspectable and printable as pseudo-CUDA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.te.tensor import Tensor


@dataclass
class Stmt:
    """Base statement."""


@dataclass
class AllocShared(Stmt):
    """``shared name[bytes]``."""

    name: str
    nbytes: int

    def render(self) -> str:
        return f"__shared__ uint8_t {self.name}[{self.nbytes}];"


@dataclass
class LoadGlobal(Stmt):
    """ldg2s: copy a tensor (region) from global to shared memory."""

    tensor: Tensor
    nbytes: float
    cached: bool = False  # satisfied by the software-managed reuse cache

    def render(self) -> str:
        if self.cached:
            return f"// {self.tensor.name}: reuse hit (on-chip), 0 bytes"
        return f"ldg2s(S_{self.tensor.name}, {self.tensor.name}, {int(self.nbytes)}B);"


@dataclass
class StoreGlobal(Stmt):
    """sts2g: copy a tensor from shared memory to global."""

    tensor: Tensor
    nbytes: float
    elided: bool = False  # value stays on-chip, never written back

    def render(self) -> str:
        if self.elided:
            return f"// {self.tensor.name}: kept on-chip, store elided"
        return f"sts2g({self.tensor.name}, S_{self.tensor.name}, {int(self.nbytes)}B);"


@dataclass
class ComputeStmt(Stmt):
    """One TE's computation (a wmma/ffma loop nest in real code)."""

    te_name: str
    op_type: str
    flops: float
    tensor_core: bool = False
    atomic: bool = False

    def render(self) -> str:
        unit = "wmma_16x16" if self.tensor_core else "ffma"
        suffix = " + atomicAdd(global)" if self.atomic else ""
        return f"{unit}<{self.op_type}>({self.te_name});  // {self.flops:.3g} flops{suffix}"


@dataclass
class GridSync(Stmt):
    """``grid.sync()`` between stages of a merged kernel."""

    def render(self) -> str:
        return "grid.sync();"


@dataclass
class Predicate(Stmt):
    """Guard for TEs whose launch dims are smaller than the kernel's."""

    active_blocks: int
    body: List[Stmt] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"if (blockIdx.x < {self.active_blocks}) {{"]
        lines.extend("  " + stmt.render() for stmt in self.body)
        lines.append("}")
        return "\n".join(lines)


@dataclass
class KernelFunction:
    """A merged subprogram kernel: Fn_TE_Subprogram_k in the paper."""

    name: str
    params: List[Tensor]
    grid_blocks: int
    threads_per_block: int
    shared_mem_bytes: int
    stmts: List[Stmt] = field(default_factory=list)

    def render(self) -> str:
        """Pseudo-CUDA rendering of the merged function."""
        args = ", ".join(f"{p.dtype}* {p.name}" for p in self.params)
        lines = [
            f"__global__ void {self.name}({args})",
            f"// launch <<<{self.grid_blocks}, {self.threads_per_block}>>> "
            f"smem={self.shared_mem_bytes}B",
            "{",
        ]
        for stmt in self.stmts:
            rendered = stmt.render()
            lines.extend("  " + line for line in rendered.split("\n"))
        lines.append("}")
        return "\n".join(lines)

    @property
    def sync_count(self) -> int:
        return sum(1 for s in self.stmts if isinstance(s, GridSync))
