"""Instruction-level pipeline optimisation (paper Sec. 6.5).

Within a merged kernel holding several original operators, Souffle regroups
instructions so asynchronous global->shared copies (LDGSTS) overlap with
tensor-core arithmetic (HMMA) — Fig. 1(d)'s cross-GEMM pipelining: while
GEMM2 computes, GEMM3's weights stream in.

In the analytic model this raises the kernel's memory/compute overlap factor
(``KernelSpec.pipelined``). The optimisation needs global dependence
information ("without global data dependency analysis the optimization can
not be done"): it only applies where the next stage's operand addresses are
known in-kernel, i.e. to kernels merging at least two TEs with some
compute-intensive work to hide the loads behind.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.graph.te_program import TENode
from repro.tir.build import BuiltKernel


def apply_pipeline(
    built: BuiltKernel, nodes: List[TENode], chars: Dict[TENode, TECharacter]
) -> bool:
    """Mark the kernel pipelined when cross-TE overlap is legal & profitable.

    Conditions:
      * the kernel merges more than one TE (there is a *next* operator whose
        loads can be prefetched), and
      * at least one TE is compute-intensive (there is arithmetic to hide
        the loads behind).
    Returns whether the kernel was pipelined.
    """
    if len(nodes) < 2:
        return False
    if not any(chars[n].is_compute_intensive for n in nodes):
        return False
    built.spec.pipelined = True
    return True
