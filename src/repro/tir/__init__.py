"""TensorIR-like kernel construction and subprogram-level optimisations."""

from repro.tir.build import BuiltKernel, build_kernel
from repro.tir.pipeline import apply_pipeline
from repro.tir.reuse_cache import (
    Access,
    ReuseReport,
    apply_reuse,
    cache_capacity_bytes,
    total_traffic,
)
from repro.tir.stmt import (
    AllocShared,
    ComputeStmt,
    GridSync,
    KernelFunction,
    LoadGlobal,
    Predicate,
    Stmt,
    StoreGlobal,
)

__all__ = [
    "Access",
    "AllocShared",
    "BuiltKernel",
    "ComputeStmt",
    "GridSync",
    "KernelFunction",
    "LoadGlobal",
    "Predicate",
    "ReuseReport",
    "Stmt",
    "StoreGlobal",
    "apply_pipeline",
    "apply_reuse",
    "build_kernel",
    "cache_capacity_bytes",
    "total_traffic",
]
