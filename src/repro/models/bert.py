"""BERT-base (paper Table 2: base version, 12 layers, from TensorRT demo).

Sequence length 128, hidden 768, 12 heads, FFN 3072, batch 1, FP16 GEMMs.
The embedding lookup is out of scope (not a tensor expression workload);
the model takes the embedded sequence as input, as DNN compilers do when
benchmarking encoder latency.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.models.common import GEMM_DTYPE, transformer_layer


def build_bert(
    layers: int = 12,
    seq_len: int = 128,
    hidden: int = 768,
    heads: int = 12,
    intermediate: int = 3072,
    name: str = "bert",
) -> Graph:
    """The full BERT-base encoder stack."""
    builder = GraphBuilder(name)
    x = builder.input((seq_len, hidden), dtype=GEMM_DTYPE, name="embeddings")
    for layer in range(layers):
        x = transformer_layer(
            builder, x, hidden, heads, intermediate, name=f"l{layer}"
        )
    return builder.build([x])


def build_bert_tiny() -> Graph:
    """A functionally-testable miniature (2 layers, seq 8, hidden 32)."""
    return build_bert(layers=2, seq_len=8, hidden=32, heads=2,
                      intermediate=64, name="bert_tiny")


def build_bert_attention_subgraph(
    seq_len: int = 128, hidden: int = 768, heads: int = 12,
    name: str = "bert_attention",
) -> Graph:
    """The motivating subgraph of Fig. 1 / Table 1: one attention block."""
    from repro.models.common import layernorm, multi_head_attention

    builder = GraphBuilder(name)
    x = builder.input((seq_len, hidden), dtype=GEMM_DTYPE, name="x")
    attn = multi_head_attention(builder, x, hidden, heads, name="attn")
    out = layernorm(builder, builder.add(x, attn), name="ln")
    return builder.build([out])
