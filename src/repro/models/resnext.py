"""ResNeXt-101 (paper Table 2: 101 layers, bottleneck width 64d).

The 64x4d configuration: cardinality 64, base width 4, stages of
[3, 4, 23, 3] bottleneck blocks, ImageNet input 1x3x224x224.
"""

from __future__ import annotations

from typing import List

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.models.common import conv_bn_act


def _bottleneck(
    builder: GraphBuilder,
    x: OpNode,
    mid_channels: int,
    out_channels: int,
    stride: int,
    cardinality: int,
    name: str,
) -> OpNode:
    """conv1x1 -> grouped conv3x3 -> conv1x1, with identity/projection add."""
    shortcut = x
    y = conv_bn_act(builder, x, mid_channels, kernel=1, name=f"{name}_c1")
    y = conv_bn_act(
        builder, y, mid_channels, kernel=3, stride=stride,
        groups=cardinality, name=f"{name}_c2",
    )
    y = conv_bn_act(builder, y, out_channels, kernel=1, activation=None,
                    name=f"{name}_c3")
    if stride != 1 or x.shape[1] != out_channels:
        shortcut = conv_bn_act(
            builder, x, out_channels, kernel=1, stride=stride,
            padding=0, activation=None, name=f"{name}_proj",
        )
    return builder.relu(builder.add(y, shortcut), name=f"{name}_out")


def build_resnext(
    layers_per_stage: List[int] = (3, 4, 23, 3),
    cardinality: int = 64,
    base_width: int = 4,
    image_size: int = 224,
    num_classes: int = 1000,
    name: str = "resnext101",
) -> Graph:
    """ResNeXt-101 (64x4d) for ImageNet classification."""
    builder = GraphBuilder(name)
    x = builder.input((1, 3, image_size, image_size), name="image")
    x = conv_bn_act(builder, x, 64, kernel=7, stride=2, padding=3, name="stem")
    x = builder.max_pool2d(x, kernel=3, stride=2, padding=1, name="stem_pool")

    channels = 64
    for stage, blocks in enumerate(layers_per_stage):
        out_channels = 256 * (2 ** stage)
        mid_channels = cardinality * base_width * (2 ** stage)
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _bottleneck(
                builder, x, mid_channels, out_channels, stride,
                cardinality, name=f"s{stage}b{block}",
            )
        channels = out_channels

    x = builder.global_avg_pool(x, name="gap")
    w = builder.weight((channels, num_classes), name="fc_w")
    logits = builder.matmul(x, w, name="logits")
    return builder.build([logits])


def build_resnext_tiny() -> Graph:
    """Small variant for functional tests (2 stages, 16x16 images)."""
    return build_resnext(
        layers_per_stage=[1, 1], cardinality=4, base_width=4,
        image_size=16, num_classes=10, name="resnext_tiny",
    )
