"""Stacked LSTM (paper Table 2: input length 100, hidden 256, 10 layers).

The time loop is fully unrolled, as in the paper's Fig. 7: cell ``n`` at
time ``t`` consumes the hidden state of cell ``n-1`` at time ``t`` and its
own state at ``t-1``, so cells along the anti-diagonal are independent
(wavefront parallelism). Weights use FP16, matching the GEMM precision
recipe; each cell's weights are shared across all 100 time steps — the
temporal-reuse opportunity that dominates Table 6.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.models.common import GEMM_DTYPE


def _lstm_cell_weights(
    builder: GraphBuilder, input_size: int, hidden: int, name: str
) -> Tuple[OpNode, OpNode, OpNode]:
    """Per-cell parameters: W (input), U (recurrent), bias — 4 gates packed."""
    w = builder.weight((input_size, 4 * hidden), dtype=GEMM_DTYPE,
                       name=f"{name}_W")
    u = builder.weight((hidden, 4 * hidden), dtype=GEMM_DTYPE,
                       name=f"{name}_U")
    b = builder.weight((4 * hidden,), dtype=GEMM_DTYPE, name=f"{name}_b")
    return w, u, b


def _lstm_cell_step(
    builder: GraphBuilder,
    x: OpNode,
    h_prev: OpNode,
    c_prev: OpNode,
    weights: Tuple[OpNode, OpNode, OpNode],
    hidden: int,
    name: str,
) -> Tuple[OpNode, OpNode]:
    """One LSTM cell update; returns (h, c)."""
    w, u, b = weights
    gates = builder.add(
        builder.matmul(x, w, name=f"{name}_xW"),
        builder.matmul(h_prev, u, name=f"{name}_hU"),
    )
    gates = builder.bias_add(gates, b)
    i = builder.sigmoid(builder.slice(gates, (0, 0), (1, hidden)))
    f = builder.sigmoid(builder.slice(gates, (0, hidden), (1, 2 * hidden)))
    g = builder.tanh(builder.slice(gates, (0, 2 * hidden), (1, 3 * hidden)))
    o = builder.sigmoid(builder.slice(gates, (0, 3 * hidden), (1, 4 * hidden)))
    c = builder.add(builder.mul(f, c_prev), builder.mul(i, g))
    h = builder.mul(o, builder.tanh(c), name=f"{name}_h")
    return h, c


def build_lstm(
    time_steps: int = 100,
    num_cells: int = 10,
    hidden: int = 256,
    input_size: int = 256,
    name: str = "lstm",
) -> Graph:
    """The paper's 10-cell, 100-step stacked LSTM, fully unrolled."""
    builder = GraphBuilder(name)
    xs = [
        builder.input((1, input_size), dtype=GEMM_DTYPE, name=f"x_t{t}")
        for t in range(time_steps)
    ]
    weights = [
        _lstm_cell_weights(
            builder, input_size if n == 0 else hidden, hidden, f"cell{n}"
        )
        for n in range(num_cells)
    ]
    h0 = builder.input((1, hidden), dtype=GEMM_DTYPE, name="h0")
    c0 = builder.input((1, hidden), dtype=GEMM_DTYPE, name="c0")

    h: Dict[int, OpNode] = {n: h0 for n in range(num_cells)}
    c: Dict[int, OpNode] = {n: c0 for n in range(num_cells)}
    outputs: List[OpNode] = []
    for t in range(time_steps):
        layer_input = xs[t]
        for n in range(num_cells):
            h[n], c[n] = _lstm_cell_step(
                builder, layer_input, h[n], c[n], weights[n], hidden,
                name=f"t{t}n{n}",
            )
            layer_input = h[n]
        outputs.append(layer_input)
    return builder.build([outputs[-1]])


def build_lstm_tiny() -> Graph:
    """Miniature for functional tests (4 steps, 2 cells, hidden 8)."""
    return build_lstm(time_steps=4, num_cells=2, hidden=8, input_size=8,
                      name="lstm_tiny")
