"""Swin Transformer (paper Table 2: base version, patch 4, window 7).

Swin-B: embed dim 128, stage depths [2, 2, 18, 2], heads [4, 8, 16, 32],
ImageNet input 224x224. Window attention runs each 7x7 window as a batch
entry of a batched matmul; patch merging halves resolution and doubles
channels between stages.

Shifted-window attention masks are omitted (they contribute a single
elementwise add per attention and do not change the fusion structure);
windows are re-partitioned with reshape/transpose memory operators, which
is exactly the operator diet the paper's analysis targets.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.models.common import GEMM_DTYPE, dense_fp16, layernorm, transformer_ffn


def _window_partition(
    builder: GraphBuilder, x: OpNode, resolution: int, window: int, dim: int,
    name: str,
) -> OpNode:
    """(H*W, C) -> (num_windows, window*window, C)."""
    windows_per_side = resolution // window
    x = builder.reshape(
        x, (windows_per_side, window, windows_per_side, window, dim),
        name=f"{name}_r1",
    )
    x = builder.transpose(x, (0, 2, 1, 3, 4), name=f"{name}_perm")
    return builder.reshape(
        x, (windows_per_side * windows_per_side, window * window, dim),
        name=f"{name}_r2",
    )


def _window_reverse(
    builder: GraphBuilder, x: OpNode, resolution: int, window: int, dim: int,
    name: str,
) -> OpNode:
    """(num_windows, window*window, C) -> (H*W, C)."""
    windows_per_side = resolution // window
    x = builder.reshape(
        x, (windows_per_side, windows_per_side, window, window, dim),
        name=f"{name}_r1",
    )
    x = builder.transpose(x, (0, 2, 1, 3, 4), name=f"{name}_perm")
    return builder.reshape(x, (resolution * resolution, dim), name=f"{name}_r2")


def _window_attention(
    builder: GraphBuilder, x: OpNode, resolution: int, window: int,
    dim: int, heads: int, name: str,
) -> OpNode:
    """W-MSA over (H*W, C) tokens."""
    tokens_per_window = window * window
    num_windows = (resolution // window) ** 2
    head_dim = dim // heads

    qkv = dense_fp16(builder, x, dim, 3 * dim, name=f"{name}_qkv")
    windows = _window_partition(
        builder, qkv, resolution, window, 3 * dim, name=f"{name}_part"
    )

    def split_heads(begin: int) -> OpNode:
        part = builder.slice(
            windows,
            (0, 0, begin),
            (num_windows, tokens_per_window, begin + dim),
        )
        part = builder.reshape(
            part, (num_windows, tokens_per_window, heads, head_dim)
        )
        part = builder.transpose(part, (0, 2, 1, 3))
        return builder.reshape(
            part, (num_windows * heads, tokens_per_window, head_dim)
        )

    q = split_heads(0)
    k = split_heads(dim)
    v = split_heads(2 * dim)

    kt = builder.transpose(k, (0, 2, 1))
    scores = builder.scale(builder.batch_matmul(q, kt), head_dim ** -0.5)
    probs = builder.softmax(scores, axis=-1)
    ctx = builder.batch_matmul(probs, v)

    ctx = builder.reshape(
        ctx, (num_windows, heads, tokens_per_window, head_dim)
    )
    ctx = builder.transpose(ctx, (0, 2, 1, 3))
    ctx = builder.reshape(ctx, (num_windows, tokens_per_window, dim))
    merged = _window_reverse(builder, ctx, resolution, window, dim,
                             name=f"{name}_rev")
    return dense_fp16(builder, merged, dim, dim, name=f"{name}_proj")


def _patch_merging(
    builder: GraphBuilder, x: OpNode, resolution: int, dim: int, name: str
) -> OpNode:
    """Concatenate 2x2 neighbourhoods and project 4C -> 2C."""
    x = builder.reshape(
        x, (resolution // 2, 2, resolution // 2, 2, dim), name=f"{name}_r1"
    )
    x = builder.transpose(x, (0, 2, 1, 3, 4), name=f"{name}_perm")
    x = builder.reshape(
        x, ((resolution // 2) * (resolution // 2), 4 * dim), name=f"{name}_r2"
    )
    x = layernorm(builder, x, name=f"{name}_ln")
    return dense_fp16(builder, x, 4 * dim, 2 * dim, bias=False,
                      name=f"{name}_reduce")


def build_swin(
    image_size: int = 224,
    patch: int = 4,
    window: int = 7,
    embed_dim: int = 128,
    depths: Tuple[int, ...] = (2, 2, 18, 2),
    heads: Tuple[int, ...] = (4, 8, 16, 32),
    num_classes: int = 1000,
    name: str = "swin_b",
) -> Graph:
    """Swin-B for ImageNet classification."""
    builder = GraphBuilder(name)
    resolution = image_size // patch
    tokens = resolution * resolution
    # Patch embedding arrives pre-computed (a single conv outside the
    # encoder); the encoder input is (tokens, embed_dim), FP16.
    x = builder.input((tokens, embed_dim), dtype=GEMM_DTYPE, name="patches")
    dim = embed_dim

    for stage, (depth, n_heads) in enumerate(zip(depths, heads)):
        for block in range(depth):
            blk = f"s{stage}b{block}"
            attn = _window_attention(
                builder, layernorm(builder, x, name=f"{blk}_ln1"),
                resolution, window, dim, n_heads, name=f"{blk}_attn",
            )
            x = builder.add(x, attn, name=f"{blk}_res1")
            ffn = transformer_ffn(
                builder, layernorm(builder, x, name=f"{blk}_ln2"),
                dim, 4 * dim, name=f"{blk}_ffn",
            )
            x = builder.add(x, ffn, name=f"{blk}_res2")
        if stage < len(depths) - 1:
            x = _patch_merging(builder, x, resolution, dim, name=f"s{stage}_merge")
            resolution //= 2
            dim *= 2

    x = layernorm(builder, x, name="final_ln")
    pooled = builder.reduce_mean(x, axes=(0,), keepdims=True, name="pool")
    w = builder.weight((dim, num_classes), dtype=GEMM_DTYPE, name="fc_w")
    logits = builder.matmul(pooled, w, name="logits")
    return builder.build([logits])


def build_swin_tiny_test() -> Graph:
    """Miniature for functional tests (one stage, 16x16 tokens)."""
    return build_swin(
        image_size=32, patch=4, window=4, embed_dim=16,
        depths=(1, 1), heads=(2, 2), num_classes=10, name="swin_test",
    )
