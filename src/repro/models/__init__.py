"""The six evaluation models of paper Table 2, plus test-size variants."""

from typing import Callable, Dict

from repro.graph.graph import Graph
from repro.models.bert import (
    build_bert,
    build_bert_attention_subgraph,
    build_bert_tiny,
)
from repro.models.efficientnet import (
    B0_STAGES,
    MBConvConfig,
    build_efficientnet,
    build_efficientnet_tiny,
    build_mbconv_submodule,
)
from repro.models.lstm import build_lstm, build_lstm_tiny
from repro.models.mmoe import build_mmoe, build_mmoe_tiny
from repro.models.resnext import build_resnext, build_resnext_tiny
from repro.models.swin import build_swin, build_swin_tiny_test

# Paper-scale builders (Table 2 configurations).
PAPER_MODELS: Dict[str, Callable[[], Graph]] = {
    "bert": build_bert,
    "resnext": build_resnext,
    "lstm": build_lstm,
    "efficientnet": build_efficientnet,
    "swin": build_swin,
    "mmoe": build_mmoe,
}

# Miniatures small enough for functional (numpy) execution in tests.
TINY_MODELS: Dict[str, Callable[[], Graph]] = {
    "bert": build_bert_tiny,
    "resnext": build_resnext_tiny,
    "lstm": build_lstm_tiny,
    "efficientnet": build_efficientnet_tiny,
    "swin": build_swin_tiny_test,
    "mmoe": build_mmoe_tiny,
}


def get_model(name: str, scale: str = "paper") -> Graph:
    """Build an evaluation model by name at ``paper`` or ``tiny`` scale."""
    registry = PAPER_MODELS if scale == "paper" else TINY_MODELS
    try:
        return registry[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(PAPER_MODELS)}"
        ) from None


__all__ = [
    "B0_STAGES",
    "MBConvConfig",
    "PAPER_MODELS",
    "TINY_MODELS",
    "build_bert",
    "build_bert_attention_subgraph",
    "build_bert_tiny",
    "build_efficientnet",
    "build_efficientnet_tiny",
    "build_lstm",
    "build_lstm_tiny",
    "build_mbconv_submodule",
    "build_mmoe",
    "build_mmoe_tiny",
    "build_resnext",
    "build_resnext_tiny",
    "build_swin",
    "build_swin_tiny_test",
    "get_model",
]
