"""EfficientNet-B0 (paper Table 2: "Efficient-b0 from the source publication").

Stem conv, seven MBConv stages (expand -> depthwise -> squeeze-excite ->
project), head conv, pooling and classifier; swish activations throughout.
ImageNet input 1x3x224x224.

The MBConv block is the paper's Fig. 5/6 micro-benchmark: its expand/
project 1x1 convs with depthwise+SE in between is "the pattern ... common
in many DNN models [that] existing DNN frameworks fail to optimize
optimally" (Sec. 8.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.models.common import conv_bn_act, squeeze_excite


@dataclass(frozen=True)
class MBConvConfig:
    """One EfficientNet stage."""

    expand_ratio: int
    channels: int
    repeats: int
    stride: int
    kernel: int


# EfficientNet-B0 architecture (Tan & Le, 2019, Table 1).
B0_STAGES: Tuple[MBConvConfig, ...] = (
    MBConvConfig(1, 16, 1, 1, 3),
    MBConvConfig(6, 24, 2, 2, 3),
    MBConvConfig(6, 40, 2, 2, 5),
    MBConvConfig(6, 80, 3, 2, 3),
    MBConvConfig(6, 112, 3, 1, 5),
    MBConvConfig(6, 192, 4, 2, 5),
    MBConvConfig(6, 320, 1, 1, 3),
)


def mbconv_block(
    builder: GraphBuilder,
    x: OpNode,
    out_channels: int,
    expand_ratio: int,
    kernel: int,
    stride: int,
    name: str,
    use_se: bool = True,
) -> OpNode:
    """Mobile inverted bottleneck with squeeze-excitation."""
    in_channels = x.shape[1]
    expanded = in_channels * expand_ratio
    y = x
    if expand_ratio != 1:
        y = conv_bn_act(builder, y, expanded, kernel=1, activation="swish",
                        name=f"{name}_expand")
    y = conv_bn_act(builder, y, expanded, kernel=kernel, stride=stride,
                    activation="swish", depthwise=True, name=f"{name}_dw")
    if use_se:
        y = squeeze_excite(builder, y, max(1, in_channels // 4),
                           name=f"{name}_se")
    y = conv_bn_act(builder, y, out_channels, kernel=1, activation=None,
                    name=f"{name}_project")
    if stride == 1 and in_channels == out_channels:
        y = builder.add(y, x, name=f"{name}_residual")
    return y


def build_efficientnet(
    stages: Tuple[MBConvConfig, ...] = B0_STAGES,
    image_size: int = 224,
    num_classes: int = 1000,
    name: str = "efficientnet_b0",
) -> Graph:
    """EfficientNet-B0 for ImageNet classification."""
    builder = GraphBuilder(name)
    x = builder.input((1, 3, image_size, image_size), name="image")
    x = conv_bn_act(builder, x, 32, kernel=3, stride=2, activation="swish",
                    name="stem")
    for stage_index, config in enumerate(stages):
        for repeat in range(config.repeats):
            stride = config.stride if repeat == 0 else 1
            x = mbconv_block(
                builder, x, config.channels, config.expand_ratio,
                config.kernel, stride, name=f"s{stage_index}r{repeat}",
            )
    x = conv_bn_act(builder, x, 1280, kernel=1, activation="swish", name="head")
    x = builder.global_avg_pool(x, name="gap")
    w = builder.weight((1280, num_classes), name="fc_w")
    logits = builder.matmul(x, w, name="logits")
    return builder.build([logits])


def build_efficientnet_tiny() -> Graph:
    """Small variant for functional tests."""
    stages = (
        MBConvConfig(1, 8, 1, 1, 3),
        MBConvConfig(4, 16, 1, 2, 3),
    )
    builder = GraphBuilder("efficientnet_tiny")
    x = builder.input((1, 3, 16, 16), name="image")
    x = conv_bn_act(builder, x, 8, kernel=3, stride=2, activation="swish",
                    name="stem")
    for stage_index, config in enumerate(stages):
        for repeat in range(config.repeats):
            stride = config.stride if repeat == 0 else 1
            x = mbconv_block(
                builder, x, config.channels, config.expand_ratio,
                config.kernel, stride, name=f"s{stage_index}r{repeat}",
            )
    x = builder.global_avg_pool(x, name="gap")
    w = builder.weight((x.shape[-1], 10), name="fc_w")
    return builder.build([builder.matmul(x, w, name="logits")])


def build_mbconv_submodule(
    channels: int, resolution: int, expand_ratio: int = 6, kernel: int = 3,
    name: str = "mbconv",
) -> Graph:
    """One MBConv block in isolation — the M0-M9 sub-modules of Fig. 6."""
    builder = GraphBuilder(name)
    x = builder.input((1, channels, resolution, resolution), name="x")
    y = mbconv_block(builder, x, channels, expand_ratio, kernel, stride=1,
                     name="m")
    return builder.build([y])
