"""MMoE — Multi-gate Mixture-of-Experts (paper Table 2: base model of
Ma et al., KDD'18, on a synthetic workload).

The base configuration: a shared input, N expert MLPs, and per-task gating
networks whose softmax outputs mix the expert outputs; each task has its own
tower head. All experts consume the same input tensor — the spatial-reuse
pattern Souffle's horizontal transformation merges into one kernel, which
is why Souffle compiles MMoE to a single kernel (Table 5).
"""

from __future__ import annotations

from typing import List

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.models.common import GEMM_DTYPE, dense_fp16, mlp


def build_mmoe(
    input_dim: int = 512,
    num_experts: int = 8,
    expert_hidden: int = 16,
    num_tasks: int = 2,
    tower_hidden: int = 8,
    name: str = "mmoe",
) -> Graph:
    """The MMoE base model: experts + per-task gates + towers."""
    builder = GraphBuilder(name)
    x = builder.input((1, input_dim), dtype=GEMM_DTYPE, name="features")

    expert_outputs: List[OpNode] = []
    for expert in range(num_experts):
        h = dense_fp16(builder, x, input_dim, expert_hidden,
                       name=f"expert{expert}_fc")
        expert_outputs.append(builder.relu(h))
    # (num_experts, expert_hidden): stack expert outputs for gating mixes.
    experts = builder.concat(expert_outputs, axis=0, name="experts")

    task_outputs: List[OpNode] = []
    for task in range(num_tasks):
        gate_logits = dense_fp16(builder, x, input_dim, num_experts,
                                 bias=False, name=f"gate{task}")
        gate = builder.softmax(gate_logits, axis=-1)  # (1, num_experts)
        mixed = builder.matmul(gate, experts, name=f"mix{task}")
        tower = mlp(builder, mixed, (tower_hidden, 1), name=f"tower{task}")
        task_outputs.append(tower)
    return builder.build(task_outputs)


def build_mmoe_tiny() -> Graph:
    """Small variant for functional tests."""
    return build_mmoe(input_dim=16, num_experts=3, expert_hidden=4,
                      num_tasks=2, tower_hidden=4, name="mmoe_tiny")
