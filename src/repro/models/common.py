"""Shared building blocks for the evaluation models (paper Table 2).

All models follow the paper's precision recipe (Sec. 7.1): FP32 everywhere
except GEMM/batched-GEMM, which run in FP16 on tensor cores; batch size 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.op import OpNode

GEMM_DTYPE = "float16"


def dense_fp16(
    builder: GraphBuilder,
    x: OpNode,
    in_features: int,
    out_features: int,
    bias: bool = True,
    name: str = "",
) -> OpNode:
    """FP16 GEMM layer ``x @ W (+ b)`` with a fresh weight."""
    w = builder.weight((in_features, out_features), dtype=x.dtype,
                       name=f"{name}_w" if name else "")
    y = builder.matmul(x, w, name=name)
    if bias:
        b = builder.weight((out_features,), dtype=x.dtype,
                           name=f"{name}_b" if name else "")
        y = builder.bias_add(y, b)
    return y


def conv_bn_act(
    builder: GraphBuilder,
    x: OpNode,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: Optional[int] = None,
    groups: int = 1,
    activation: Optional[str] = "relu",
    depthwise: bool = False,
    name: str = "",
) -> OpNode:
    """Conv + folded batch-norm (per-channel scale & shift) + activation.

    Inference-time BN folds to an affine per-channel transform; we keep the
    scale/shift explicit (two elementwise TEs) so the fusion passes have the
    memory-bound operators the paper's models actually contain.
    """
    in_channels = x.shape[1]
    if padding is None:
        padding = kernel // 2
    if depthwise:
        w = builder.weight((in_channels, 1, kernel, kernel),
                           name=f"{name}_w" if name else "")
        y = builder.depthwise_conv2d(x, w, stride=stride, padding=padding,
                                     name=name)
    else:
        w = builder.weight(
            (out_channels, in_channels // groups, kernel, kernel),
            name=f"{name}_w" if name else "",
        )
        y = builder.conv2d(x, w, stride=stride, padding=padding, groups=groups,
                           name=name)
    channels = y.shape[1]
    gamma = builder.weight((channels, 1, 1), name=f"{name}_bn_g" if name else "")
    beta = builder.weight((channels, 1, 1), name=f"{name}_bn_b" if name else "")
    y = builder.add(builder.mul(y, gamma), beta)
    if activation == "relu":
        y = builder.relu(y)
    elif activation == "swish":
        y = builder.swish(y)
    elif activation == "relu6":
        y = builder.relu6(y)
    elif activation is not None:
        raise ValueError(f"unknown activation {activation!r}")
    return y


def squeeze_excite(
    builder: GraphBuilder, x: OpNode, reduced: int, name: str = ""
) -> OpNode:
    """Squeeze-and-excitation block (EfficientNet): GAP -> FC -> swish ->
    FC -> sigmoid -> channel-wise scale."""
    channels = x.shape[1]
    pooled = builder.global_avg_pool(x, name=f"{name}_gap" if name else "")
    w1 = builder.weight((channels, reduced), name=f"{name}_se_w1" if name else "")
    z = builder.matmul(pooled, w1)
    z = builder.swish(z)
    w2 = builder.weight((reduced, channels), name=f"{name}_se_w2" if name else "")
    z = builder.matmul(z, w2)
    z = builder.sigmoid(z)
    gate = builder.reshape(z, (1, channels, 1, 1))
    return builder.mul(x, gate)


def multi_head_attention(
    builder: GraphBuilder,
    x: OpNode,
    hidden: int,
    heads: int,
    name: str = "",
) -> OpNode:
    """Standard transformer MHA over a (seq, hidden) FP16 input."""
    seq = x.shape[0]
    head_dim = hidden // heads

    q = dense_fp16(builder, x, hidden, hidden, name=f"{name}_q")
    k = dense_fp16(builder, x, hidden, hidden, name=f"{name}_k")
    v = dense_fp16(builder, x, hidden, hidden, name=f"{name}_v")

    def to_heads(t: OpNode) -> OpNode:
        t = builder.reshape(t, (seq, heads, head_dim))
        return builder.transpose(t, (1, 0, 2))  # (heads, seq, head_dim)

    qh, kh, vh = to_heads(q), to_heads(k), to_heads(v)
    kt = builder.transpose(kh, (0, 2, 1))  # (heads, head_dim, seq)
    scores = builder.batch_matmul(qh, kt)  # (heads, seq, seq)
    scores = builder.scale(scores, head_dim ** -0.5)
    probs = builder.softmax(scores, axis=-1)
    ctx = builder.batch_matmul(probs, vh)  # (heads, seq, head_dim)
    ctx = builder.transpose(ctx, (1, 0, 2))
    ctx = builder.reshape(ctx, (seq, hidden))
    return dense_fp16(builder, ctx, hidden, hidden, name=f"{name}_o")


def transformer_ffn(
    builder: GraphBuilder, x: OpNode, hidden: int, intermediate: int,
    name: str = "",
) -> OpNode:
    """GELU feed-forward block."""
    y = dense_fp16(builder, x, hidden, intermediate, name=f"{name}_fc1")
    y = builder.gelu(y)
    return dense_fp16(builder, y, intermediate, hidden, name=f"{name}_fc2")


def layernorm(
    builder: GraphBuilder, x: OpNode, name: str = ""
) -> OpNode:
    """Layer normalisation with fresh gamma/beta over the last dim."""
    hidden = x.shape[-1]
    gamma = builder.weight((hidden,), dtype=x.dtype,
                           name=f"{name}_ln_g" if name else "")
    beta = builder.weight((hidden,), dtype=x.dtype,
                          name=f"{name}_ln_b" if name else "")
    return builder.layernorm(x, gamma, beta, name=name)


def transformer_layer(
    builder: GraphBuilder,
    x: OpNode,
    hidden: int,
    heads: int,
    intermediate: int,
    name: str = "",
) -> OpNode:
    """Post-norm transformer encoder layer (BERT style)."""
    attn = multi_head_attention(builder, x, hidden, heads, name=f"{name}_attn")
    x = layernorm(builder, builder.add(x, attn), name=f"{name}_ln1")
    ffn = transformer_ffn(builder, x, hidden, intermediate, name=f"{name}_ffn")
    return layernorm(builder, builder.add(x, ffn), name=f"{name}_ln2")


def mlp(
    builder: GraphBuilder,
    x: OpNode,
    dims: Sequence[int],
    activation: str = "relu",
    name: str = "",
) -> OpNode:
    """A chain of FP16 dense layers with activations between them."""
    y = x
    for index, out_features in enumerate(dims):
        y = dense_fp16(builder, y, y.shape[-1], out_features,
                       name=f"{name}_fc{index}" if name else "")
        if index < len(dims) - 1:
            if activation == "relu":
                y = builder.relu(y)
            elif activation == "tanh":
                y = builder.tanh(y)
    return y
