"""Content-addressed JSON store: the persistence layer of the compile cache.

One store is a directory of small JSON documents, one per key, fronted by an
in-memory LRU map. Every document is wrapped in a versioned envelope; a
version bump invalidates every stale entry the next time it is read (the
file is removed so the directory self-cleans). Corrupted or truncated files
are treated as misses, counted, and deleted — a damaged cache can never
break a compile, only slow it down.

The store is deliberately dumb: keys are opaque hex digests (see
:mod:`repro.cache.keys`) and payloads are plain JSON-able dicts. The
schedule and module tiers layer their own (de)serialisation on top.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class CacheStats:
    """Hit/miss counters for one cache tier."""

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0           # LRU front evictions (entries stay on disk)
    load_errors: int = 0         # corrupted / stale files recovered from
    store_errors: int = 0        # failed disk writes (entry stays in memory)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "load_errors": self.load_errors,
            "store_errors": self.store_errors,
        }


class JsonStore:
    """A versioned key -> JSON-dict store with an in-memory LRU front.

    ``directory=None`` keeps the store purely in memory (useful for tests
    and for processes that want memoisation without persistence).
    """

    def __init__(
        self,
        directory: Optional[str],
        *,
        format_name: str,
        version: int,
        capacity: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.directory = directory
        self.format_name = format_name
        self.version = version
        self.capacity = capacity
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # ---- public API ---------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` on a miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return cached
        payload = self._read_disk(key)
        if payload is not None:
            self._remember(key, payload)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return payload
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` in memory and (if set) on disk."""
        self._remember(key, payload)
        if self.directory is None:
            self.stats.stores += 1
            return
        path = self._path(key)
        envelope = {
            "format": self.format_name,
            "version": self.version,
            "key": key,
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(envelope, handle)
            os.replace(tmp, path)  # atomic: readers never see partial writes
        except OSError:
            # An unwritable cache (read-only mount, path collision, full
            # disk) must never break a compile: keep the in-memory entry.
            self.stats.store_errors += 1
            return
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and os.path.exists(self._path(key))

    def __len__(self) -> int:
        """Entries in the LRU front (the disk may hold more)."""
        return len(self._memory)

    # ---- internals ----------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.directory is not None
        # Two-level fan-out keeps directories small for big caches.
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._recover(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != self.format_name
            or envelope.get("version") != self.version
            or envelope.get("key") != key
            or not isinstance(envelope.get("payload"), dict)
        ):
            # Stale format version (or foreign file): invalidate in place.
            self._recover(path)
            return None
        return envelope["payload"]

    def _recover(self, path: str) -> None:
        """Drop an unreadable/stale entry so the next lookup is a clean miss."""
        self.stats.load_errors += 1
        try:
            os.remove(path)
        except OSError:
            pass
