"""The whole-module tier of the compile cache.

Schedule search is only one slice of compile time; lowering, the TE
transformations and kernel construction dominate once search is memoised.
This tier therefore content-addresses the *entire compiled artifact* — the
kernel specs the simulator consumes and the statement-level IR the printer
renders — keyed by the source model's structural hash, the device and the
compiler options (:func:`repro.cache.keys.module_cache_key`). A warm
recompile is a JSON load plus object reconstruction: near-free, and provably
identical to the cold path (the differential suite in
``tests/test_parallel_compile.py`` asserts byte-identical kernel IR and
identical simulated latency).

The functional program is *not* serialised: a cache-hit module materialises
it lazily by re-running the deterministic front half of the pipeline the
first time ``run()`` is called. Performance queries (``simulate``,
``render_kernels``) never pay that cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.cache.store import CacheStats, JsonStore
from repro.errors import ExecutionError
from repro.gpu.device import GPUSpec
from repro.gpu.kernel import KernelSpec
from repro.graph.te_program import TEProgram
from repro.te.tensor import Tensor
from repro.tir.build import BuiltKernel

from repro.tir.stmt import (
    AllocShared,
    ComputeStmt,
    GridSync,
    KernelFunction,
    LoadGlobal,
    Predicate,
    Stmt,
    StoreGlobal,
)

if TYPE_CHECKING:  # import would cycle through repro.runtime at runtime
    from repro.runtime.module import CompiledModule, CompileStats

MODULE_STORE_FORMAT = "repro-module-cache"
MODULE_STORE_VERSION = 1


# ---- statement (de)serialisation ---------------------------------------------


def _tensor_ref(tensor: Tensor) -> List[Any]:
    return [tensor.name, list(tensor.shape), tensor.dtype]


class _TensorPool:
    """Rebuilds tensors by name so shared references stay shared."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Tensor] = {}

    def resolve(self, ref: List[Any]) -> Tensor:
        name, shape, dtype = ref
        tensor = self._by_name.get(name)
        if tensor is None:
            tensor = Tensor(tuple(shape), dtype=dtype, name=name)
            self._by_name[name] = tensor
        return tensor


def _stmt_to_record(stmt: Stmt) -> Dict[str, Any]:
    if isinstance(stmt, AllocShared):
        return {"t": "alloc", "name": stmt.name, "nbytes": stmt.nbytes}
    if isinstance(stmt, LoadGlobal):
        return {
            "t": "load",
            "tensor": _tensor_ref(stmt.tensor),
            "nbytes": stmt.nbytes,
            "cached": stmt.cached,
        }
    if isinstance(stmt, StoreGlobal):
        return {
            "t": "store",
            "tensor": _tensor_ref(stmt.tensor),
            "nbytes": stmt.nbytes,
            "elided": stmt.elided,
        }
    if isinstance(stmt, ComputeStmt):
        return {
            "t": "compute",
            "te_name": stmt.te_name,
            "op_type": stmt.op_type,
            "flops": stmt.flops,
            "tensor_core": stmt.tensor_core,
            "atomic": stmt.atomic,
        }
    if isinstance(stmt, GridSync):
        return {"t": "sync"}
    if isinstance(stmt, Predicate):
        return {
            "t": "pred",
            "active_blocks": stmt.active_blocks,
            "body": [_stmt_to_record(s) for s in stmt.body],
        }
    raise ExecutionError(f"unserialisable statement {type(stmt).__name__}")


def _stmt_from_record(record: Dict[str, Any], pool: _TensorPool) -> Stmt:
    tag = record["t"]
    if tag == "alloc":
        return AllocShared(record["name"], record["nbytes"])
    if tag == "load":
        return LoadGlobal(
            pool.resolve(record["tensor"]), record["nbytes"], record["cached"]
        )
    if tag == "store":
        return StoreGlobal(
            pool.resolve(record["tensor"]), record["nbytes"], record["elided"]
        )
    if tag == "compute":
        return ComputeStmt(
            te_name=record["te_name"],
            op_type=record["op_type"],
            flops=record["flops"],
            tensor_core=record["tensor_core"],
            atomic=record["atomic"],
        )
    if tag == "sync":
        return GridSync()
    if tag == "pred":
        return Predicate(
            record["active_blocks"],
            [_stmt_from_record(s, pool) for s in record["body"]],
        )
    raise ExecutionError(f"unknown cached statement tag {tag!r}")


# ---- kernel / module (de)serialisation ---------------------------------------

_SPEC_FIELDS = (
    "name",
    "grid_blocks",
    "threads_per_block",
    "shared_mem_per_block",
    "regs_per_thread",
    "fp16_flops",
    "fp32_flops",
    "load_bytes",
    "store_bytes",
    "atomic_bytes",
    "grid_syncs",
    "pipelined",
    "compute_efficiency",
    "bandwidth_efficiency",
    "te_names",
    "source_ops",
)


def kernel_to_record(built: BuiltKernel) -> Dict[str, Any]:
    spec = built.spec
    function = built.function
    return {
        "spec": {name: getattr(spec, name) for name in _SPEC_FIELDS},
        "function": {
            "name": function.name,
            "params": [_tensor_ref(p) for p in function.params],
            "grid_blocks": function.grid_blocks,
            "threads_per_block": function.threads_per_block,
            "shared_mem_bytes": function.shared_mem_bytes,
            "stmts": [_stmt_to_record(s) for s in function.stmts],
        },
    }


def kernel_from_record(record: Dict[str, Any], pool: _TensorPool) -> BuiltKernel:
    spec = KernelSpec(**record["spec"])
    fn = record["function"]
    function = KernelFunction(
        name=fn["name"],
        params=[pool.resolve(p) for p in fn["params"]],
        grid_blocks=fn["grid_blocks"],
        threads_per_block=fn["threads_per_block"],
        shared_mem_bytes=fn["shared_mem_bytes"],
        stmts=[_stmt_from_record(s, pool) for s in fn["stmts"]],
    )
    # The access trace and reuse report are compile-time intermediates that
    # feed the subprogram optimiser; the cached artifact is post-optimisation,
    # so they are intentionally not persisted.
    return BuiltKernel(spec=spec, function=function)


def module_to_record(module: "CompiledModule") -> Dict[str, Any]:
    return {
        "name": module.name,
        "compiler": module.compiler,
        "device": module.device.name,
        "kernels": [kernel_to_record(k) for k in module.kernels],
    }


def module_from_record(
    record: Dict[str, Any],
    device: GPUSpec,
    stats: "CompileStats",
    program_loader: Optional[Callable[[], TEProgram]] = None,
) -> "CompiledModule":
    from repro.runtime.module import CompiledModule

    pool = _TensorPool()
    kernels = [kernel_from_record(k, pool) for k in record["kernels"]]
    return CompiledModule(
        name=record["name"],
        compiler=record["compiler"],
        program=None,
        kernels=kernels,
        device=device,
        stats=stats,
        program_loader=program_loader,
    )


class ModuleCache:
    """Persistent, content-addressed store of whole compiled modules."""

    def __init__(
        self, directory: Optional[str] = None, capacity: int = 64
    ) -> None:
        self._store = JsonStore(
            directory,
            format_name=MODULE_STORE_FORMAT,
            version=MODULE_STORE_VERSION,
            capacity=capacity,
        )

    @property
    def directory(self) -> Optional[str]:
        return self._store.directory

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    def load(
        self,
        key: str,
        device: GPUSpec,
        stats: "CompileStats",
        program_loader: Optional[Callable[[], TEProgram]] = None,
    ) -> Optional["CompiledModule"]:
        record = self._store.get(key)
        if record is None:
            return None
        try:
            return module_from_record(record, device, stats, program_loader)
        except (ExecutionError, KeyError, TypeError, ValueError):
            self._store.stats.load_errors += 1
            return None

    def store(self, key: str, module: "CompiledModule") -> None:
        self._store.put(key, module_to_record(module))
