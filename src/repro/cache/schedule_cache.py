"""The per-TE schedule tier of the compile cache.

A :class:`repro.schedule.schedule.TESchedule` is pure data apart from the
``node`` it targets, so it round-trips losslessly through JSON; on a hit the
record is re-targeted at the requesting node (exactly how the schedulers'
in-memory memoisation already re-targets structurally identical TEs).

Keys come from :func:`repro.cache.keys.schedule_cache_key`: the scheduler
implementation, the device model, the compiler options and the TE structure
all participate, so a Roller schedule can never satisfy an Ansor lookup and
an A100 schedule can never leak onto a V100.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cache.store import CacheStats, JsonStore
from repro.errors import ScheduleError
from repro.graph.te_program import TENode
from repro.schedule.schedule import ScheduleStep, TESchedule

SCHEDULE_STORE_FORMAT = "repro-schedule-cache"
SCHEDULE_STORE_VERSION = 1


def schedule_to_record(schedule: TESchedule) -> Dict[str, Any]:
    """Serialise a schedule to a JSON-able dict (node identity excluded)."""
    return {
        "kind": schedule.kind,
        "tile": list(schedule.tile),
        "grid_blocks": schedule.grid_blocks,
        "threads_per_block": schedule.threads_per_block,
        "shared_mem_per_block": schedule.shared_mem_per_block,
        "regs_per_thread": schedule.regs_per_thread,
        "use_tensor_core": schedule.use_tensor_core,
        "load_bytes": schedule.load_bytes,
        "store_bytes": schedule.store_bytes,
        "fp16_flops": schedule.fp16_flops,
        "fp32_flops": schedule.fp32_flops,
        "atomic_bytes": schedule.atomic_bytes,
        "steps": [[step.primitive, step.detail] for step in schedule.steps],
    }


def schedule_from_record(record: Dict[str, Any], node: TENode) -> TESchedule:
    """Rebuild a schedule from its record, targeted at ``node``."""
    try:
        return TESchedule(
            node=node,
            kind=record["kind"],
            tile=tuple(record["tile"]),
            grid_blocks=record["grid_blocks"],
            threads_per_block=record["threads_per_block"],
            shared_mem_per_block=record["shared_mem_per_block"],
            regs_per_thread=record["regs_per_thread"],
            use_tensor_core=record["use_tensor_core"],
            load_bytes=record["load_bytes"],
            store_bytes=record["store_bytes"],
            fp16_flops=record["fp16_flops"],
            fp32_flops=record["fp32_flops"],
            atomic_bytes=record.get("atomic_bytes", 0.0),
            steps=[
                ScheduleStep(primitive, detail)
                for primitive, detail in record.get("steps", [])
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed cached schedule record: {exc}") from exc


class ScheduleCache:
    """Persistent, content-addressed store of optimised TE schedules."""

    def __init__(
        self, directory: Optional[str] = None, capacity: int = 4096
    ) -> None:
        self._store = JsonStore(
            directory,
            format_name=SCHEDULE_STORE_FORMAT,
            version=SCHEDULE_STORE_VERSION,
            capacity=capacity,
        )

    @property
    def directory(self) -> Optional[str]:
        return self._store.directory

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def load(self, key: str, node: TENode) -> Optional[TESchedule]:
        """The cached schedule for ``key`` re-targeted at ``node``, if any."""
        record = self._store.get(key)
        if record is None:
            return None
        try:
            return schedule_from_record(record, node)
        except ScheduleError:
            # A record that deserialises but does not validate is as good as
            # corrupt: drop it from the front and fall back to a fresh build.
            self._store.stats.load_errors += 1
            return None

    def store(self, key: str, schedule: TESchedule) -> None:
        self._store.put(key, schedule_to_record(schedule))
