"""The two-tier compile cache handed to :class:`SouffleCompiler`.

Layout under one cache directory::

    <dir>/schedules/<k0k1>/<key>.json     per-TE optimised schedules
    <dir>/modules/<k0k1>/<key>.json       whole compiled modules
    <dir>/certificates/<k0k1>/<key>.json  equivalence certificates

Either tier can be disabled independently (the differential tests exercise
the schedule tier with the module tier off, proving the cached-schedule
pipeline emits the same kernels as a fresh search).

Resolution rules for ``SouffleCompiler(cache=...)``:

* ``None`` (default): use ``$REPRO_CACHE_DIR`` if set, else no cache;
* ``False``: never cache, even with the environment variable set;
* a path string: persistent cache rooted there;
* a :class:`CompileCache`: used as given (share one across compilers to
  share its in-memory LRU front).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.cache.certificate_cache import CertificateCache
from repro.cache.module_cache import ModuleCache
from repro.cache.schedule_cache import ScheduleCache

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[str]:
    """The cache directory named by ``$REPRO_CACHE_DIR``, if any."""
    directory = os.environ.get(CACHE_DIR_ENV)
    return os.path.expanduser(directory) if directory else None


class CompileCache:
    """Bundles the schedule and module tiers under one directory."""

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        schedules: bool = True,
        modules: bool = True,
        certificates: bool = True,
        schedule_capacity: int = 4096,
        module_capacity: int = 64,
        certificate_capacity: int = 256,
    ) -> None:
        self.directory = directory

        def subdir(name: str) -> Optional[str]:
            return os.path.join(directory, name) if directory else None

        self.schedules: Optional[ScheduleCache] = (
            ScheduleCache(subdir("schedules"), capacity=schedule_capacity)
            if schedules
            else None
        )
        self.modules: Optional[ModuleCache] = (
            ModuleCache(subdir("modules"), capacity=module_capacity)
            if modules
            else None
        )
        self.certificates: Optional[CertificateCache] = (
            CertificateCache(
                subdir("certificates"), capacity=certificate_capacity
            )
            if certificates
            else None
        )

    def __repr__(self) -> str:
        tiers = [
            name
            for name, tier in (
                ("schedules", self.schedules),
                ("modules", self.modules),
                ("certificates", self.certificates),
            )
            if tier is not None
        ]
        where = self.directory or "memory"
        return f"<CompileCache {where}: {'+'.join(tiers) or 'disabled'}>"


def resolve_compile_cache(
    cache: Union[None, bool, str, os.PathLike, CompileCache]
) -> Optional[CompileCache]:
    """Normalise the ``cache`` constructor argument to a ``CompileCache``."""
    if cache is None:
        directory = default_cache_dir()
        return CompileCache(directory) if directory else None
    if cache is False:
        return None
    if cache is True:
        return CompileCache(default_cache_dir())
    if isinstance(cache, (str, os.PathLike)):
        return CompileCache(os.path.expanduser(os.fspath(cache)))
    return cache
