"""The certificate tier of the compile cache.

Translation validation (``repro.verify.equiv``) discharges one proof
obligation per transform application. The obligations depend only on what
the module cache key already fingerprints — model structure, device and
compiler options — so certificates are content-addressed under the *same*
key as the compiled module and a warm recompile replays its certificates
from JSON instead of re-proving them (the acceptance bar: certified warm
compiles must stay within 10% of uncertified ones).

A corrupt or version-skewed record is treated as a miss: the compiler falls
through to a full certify-and-store compile, never to an uncertified one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.cache.store import CacheStats, JsonStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.equiv import EquivalenceCertificate

CERTIFICATE_STORE_FORMAT = "repro-certificate-cache"
CERTIFICATE_STORE_VERSION = 1


class CertificateCache:
    """Content-addressed store of per-compile certificate lists."""

    def __init__(
        self, directory: Optional[str], capacity: int = 256
    ) -> None:
        self.store = JsonStore(
            directory,
            format_name=CERTIFICATE_STORE_FORMAT,
            version=CERTIFICATE_STORE_VERSION,
            capacity=capacity,
        )

    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    def load(self, key: str) -> Optional[List["EquivalenceCertificate"]]:
        """The certificates stored under ``key``, or ``None`` on a miss
        (including a corrupt record — the caller re-certifies)."""
        from repro.verify.equiv import EquivalenceCertificate

        payload = self.store.get(key)
        if payload is None:
            return None
        try:
            return [
                EquivalenceCertificate.from_dict(record)
                for record in payload["certificates"]
            ]
        except Exception:
            return None

    def save(
        self, key: str, certificates: Sequence["EquivalenceCertificate"]
    ) -> None:
        self.store.put(
            key,
            {
                "certificates": [
                    certificate.as_dict() for certificate in certificates
                ]
            },
        )

    def __repr__(self) -> str:
        where = self.store.directory or "memory"
        return f"<CertificateCache {where}>"
