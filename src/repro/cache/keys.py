"""Canonical structural hashing for the compile cache.

Cache keys must be *content addresses*: two compiles see the same entry iff
nothing that influences the produced artifact differs. The ingredients are

* the TE's structural key (op type, output/input shapes and dtypes,
  reduction extents, per-element op-count fingerprints — exactly the key the
  schedulers already memoise on);
* the device specification (every ``GPUSpec`` field participates);
* the compiler options and the scheduler implementation;
* a format version, bumped whenever serialisation or codegen changes.

Everything is normalised to JSON (tuples become lists) and digested with
SHA-256, so keys are stable across processes and platforms.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Sequence, Union

from repro.analysis.characterize import _structure_key
from repro.gpu.device import GPUSpec
from repro.graph.graph import Graph
from repro.graph.te_program import TENode, TEProgram

if TYPE_CHECKING:  # import would cycle through repro.core at runtime
    from repro.core.config import SouffleOptions

# Bump to invalidate every cached schedule (schedule serialisation or the
# scheduler search space changed).
SCHEDULE_FORMAT_VERSION = 1

# Bump to invalidate every cached module (kernel construction, the IR
# serialisation, or the simulator contract changed).
MODULE_FORMAT_VERSION = 1


def _canonical(value: Any) -> Any:
    """Normalise nested tuples/lists to plain JSON-able lists."""
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def _digest(payload: Any) -> str:
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---- fingerprints -------------------------------------------------------------


def structure_key(node: TENode) -> tuple:
    """Public alias for the scheduler memoisation key of one TE."""
    return _structure_key(node)


def step_content_key(nodes: Sequence[TENode]) -> str:
    """Durable content identity of one plan step.

    Digest over the *ordered* structural keys of the TE nodes a step
    materialises: a plain step hashes its single node, a fused step hashes
    every member, and a tiled chain hashes the chain members once (all
    sibling blocks share the chain's key, so profile rows survive
    re-tiling with a different block count). Names never participate, so
    renames and display-name changes (``a+b+c``, ``chain[blk i/n]``) do
    not orphan profile rows, and structurally identical layers pool their
    samples under one key.
    """
    return _digest([_canonical(structure_key(n)) for n in nodes])[:16]


def program_profile_key(program: TEProgram) -> str:
    """Name-free content identity of a program for profile bucketing.

    Unlike :func:`program_structural_hash` this deliberately ignores tensor
    names: profile rows must survive renames and display-name churn, and
    pooling measurements across structurally identical programs is a
    feature (the rows are step-keyed, so nothing can be misattributed).
    Input shapes and the per-node structural keys keep different shape
    configurations in different buckets.
    """
    return _digest(
        {
            "inputs": [[list(t.shape), t.dtype] for t in program.inputs],
            "nodes": [_canonical(structure_key(n)) for n in program],
            "outputs": len(program.outputs),
        }
    )


def device_fingerprint(device: GPUSpec) -> str:
    """Digest over every field of the device model."""
    return _digest(dataclasses.asdict(device))


def options_fingerprint(options: "SouffleOptions") -> str:
    """Digest over every compiler option."""
    return _digest(dataclasses.asdict(options))


def graph_structural_hash(graph: Graph) -> str:
    """Content address of a source operator graph (name-sensitive)."""
    from repro.frontends.serialize import graph_to_dict

    return _digest(graph_to_dict(graph))


def program_structural_hash(program: TEProgram) -> str:
    """Content address of a (possibly transformed) TE program.

    Includes tensor names on top of the per-TE structural keys: cached kernel
    IR mentions tensors by name, so two programs must only share an address
    when their rendered kernels would be byte-identical.
    """
    nodes = []
    for node in program:
        nodes.append(
            [
                node.name,
                node.op_name,
                node.op_type,
                _canonical(structure_key(node)),
                [t.name for t in node.inputs],
            ]
        )
    return _digest(
        {
            "name": program.name,
            "inputs": [[t.name, list(t.shape), t.dtype] for t in program.inputs],
            "nodes": nodes,
            "outputs": [t.name for t in program.outputs],
        }
    )


# ---- cache keys ---------------------------------------------------------------


def schedule_context(
    scheduler_name: str, device: GPUSpec, options_token: str = ""
) -> str:
    """The per-compiler prefix shared by all of one scheduler's entries."""
    return _digest(
        {
            "tier": "schedule",
            "version": SCHEDULE_FORMAT_VERSION,
            "scheduler": scheduler_name,
            "device": device_fingerprint(device),
            "options": options_token,
        }
    )


def schedule_cache_key(context: str, node: TENode) -> str:
    """Content address of one TE's schedule under ``context``."""
    return _digest([context, _canonical(structure_key(node))])


def module_cache_key(
    model: Union[Graph, TEProgram],
    device: GPUSpec,
    options: "SouffleOptions",
    scheduler_name: str,
) -> str:
    """Content address of one whole compiled module."""
    if isinstance(model, Graph):
        source = ["graph", graph_structural_hash(model)]
    else:
        source = ["program", program_structural_hash(model)]
    return _digest(
        {
            "tier": "module",
            "version": MODULE_FORMAT_VERSION,
            "source": source,
            "device": device_fingerprint(device),
            "options": options_fingerprint(options),
            "scheduler": scheduler_name,
        }
    )
