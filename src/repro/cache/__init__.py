"""Persistent compile caching (schedules + whole modules).

Repeat compilation is near-free: optimised TE schedules and whole compiled
modules are content-addressed by structural hashes of the work (TE / model
structure + device spec + compiler options) and persisted as JSON, fronted
by an in-memory LRU. See ``DESIGN.md`` ("Compile cache & parallel build").
"""

from repro.cache.certificate_cache import (
    CERTIFICATE_STORE_FORMAT,
    CERTIFICATE_STORE_VERSION,
    CertificateCache,
)
from repro.cache.compile_cache import (
    CACHE_DIR_ENV,
    CompileCache,
    default_cache_dir,
    resolve_compile_cache,
)
from repro.cache.keys import (
    MODULE_FORMAT_VERSION,
    SCHEDULE_FORMAT_VERSION,
    device_fingerprint,
    graph_structural_hash,
    module_cache_key,
    options_fingerprint,
    program_structural_hash,
    schedule_cache_key,
    schedule_context,
    structure_key,
)
from repro.cache.module_cache import (
    ModuleCache,
    kernel_from_record,
    kernel_to_record,
    module_from_record,
    module_to_record,
)
from repro.cache.schedule_cache import (
    ScheduleCache,
    schedule_from_record,
    schedule_to_record,
)
from repro.cache.store import CacheStats, JsonStore

__all__ = [
    "CACHE_DIR_ENV",
    "CERTIFICATE_STORE_FORMAT",
    "CERTIFICATE_STORE_VERSION",
    "CacheStats",
    "CertificateCache",
    "CompileCache",
    "JsonStore",
    "MODULE_FORMAT_VERSION",
    "ModuleCache",
    "SCHEDULE_FORMAT_VERSION",
    "ScheduleCache",
    "default_cache_dir",
    "device_fingerprint",
    "graph_structural_hash",
    "kernel_from_record",
    "kernel_to_record",
    "module_cache_key",
    "module_from_record",
    "module_to_record",
    "options_fingerprint",
    "program_structural_hash",
    "resolve_compile_cache",
    "schedule_cache_key",
    "schedule_context",
    "schedule_from_record",
    "schedule_to_record",
    "structure_key",
]
