"""Graph operator nodes.

A :class:`OpNode` is one operator of the model computation graph, before
lowering to tensor expressions. Nodes reference their input nodes directly,
so a graph is a DAG of OpNodes rooted at ``input``/``weight`` nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import LoweringError

Shape = Tuple[int, ...]

# Operator taxonomy used by baselines' fusion rules and by analysis.
ELEMENTWISE_ARITH_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "exp",
        "log",
        "sqrt",
        "rsqrt",
        "erf",
        "tanh",
        "sigmoid",
        "relu",
        "relu6",
        "gelu",
        "swish",
        "power",
        "scale",
        "bias_add",
        "clip",
    }
)
ELEMENTWISE_MEMORY_OPS = frozenset(
    {"reshape", "transpose", "slice", "concat", "pad", "broadcast_to", "identity"}
)
REDUCTION_OPS = frozenset(
    {"reduce_sum", "reduce_mean", "reduce_max", "softmax", "layernorm",
     "avg_pool2d", "max_pool2d", "global_avg_pool"}
)
COMPUTE_OPS = frozenset(
    {"matmul", "batch_matmul", "dense", "conv2d", "depthwise_conv2d", "gemv"}
)
OPAQUE_OPS = frozenset({"resize"})  # paper Sec. 9: no TE lowering, library call

ALL_OPS = (
    ELEMENTWISE_ARITH_OPS
    | ELEMENTWISE_MEMORY_OPS
    | REDUCTION_OPS
    | COMPUTE_OPS
    | OPAQUE_OPS
    | {"input", "weight"}
)

_op_counter = itertools.count()


@dataclass
class OpNode:
    """One operator in the computation graph."""

    op_type: str
    inputs: List["OpNode"]
    shape: Shape
    dtype: str = "float32"
    attrs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if self.op_type not in ALL_OPS:
            raise LoweringError(f"unknown operator type {self.op_type!r}")
        if not self.name:
            self.name = f"{self.op_type}_{next(_op_counter)}"

    @property
    def is_source(self) -> bool:
        """True for graph inputs and weights."""
        return self.op_type in ("input", "weight")

    @property
    def is_compute_op(self) -> bool:
        return self.op_type in COMPUTE_OPS

    @property
    def is_memory_op(self) -> bool:
        return self.op_type in ELEMENTWISE_MEMORY_OPS

    @property
    def is_reduction_op(self) -> bool:
        return self.op_type in REDUCTION_OPS

    @property
    def num_elements(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    def __repr__(self) -> str:
        ins = ", ".join(i.name for i in self.inputs)
        return f"{self.name}({ins}) : {self.dtype}{list(self.shape)}"

    # identity semantics: two nodes are equal iff same object
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
