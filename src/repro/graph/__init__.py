"""Computation graphs and lowering to tensor expressions."""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.lowering import LoweringContext, lower_graph
from repro.graph.op import (
    COMPUTE_OPS,
    ELEMENTWISE_ARITH_OPS,
    ELEMENTWISE_MEMORY_OPS,
    REDUCTION_OPS,
    OpNode,
)
from repro.graph.te_program import TENode, TEProgram

__all__ = [
    "COMPUTE_OPS",
    "ELEMENTWISE_ARITH_OPS",
    "ELEMENTWISE_MEMORY_OPS",
    "Graph",
    "GraphBuilder",
    "LoweringContext",
    "OpNode",
    "REDUCTION_OPS",
    "TENode",
    "TEProgram",
    "lower_graph",
]
