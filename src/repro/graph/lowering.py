"""Lowering graph operators to tensor expressions (paper Sec. 4, step 1).

Each operator type has a registered lowering rule that emits one or more
TEs. Composite operators decompose into simpler TEs — e.g. softmax becomes a
reduction TE plus elementwise TEs, exactly the property Souffle's analysis
exploits (Sec. 1: "a softmax operator can be represented by two TEs").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import LoweringError, UnsupportedOperatorError
from repro.graph.graph import Graph
from repro.graph.op import OpNode
from repro.graph.te_program import TENode, TEProgram
from repro.te.expr import Const, Expr, Var, call, if_then_else, maximum, minimum
from repro.te.tensor import (
    Tensor,
    compute,
    max_expr,
    placeholder,
    reduce_axis,
    sum_expr,
)

Shape = Tuple[int, ...]


class LoweringContext:
    """Collects emitted TEs while lowering one graph."""

    def __init__(self, graph_name: str) -> None:
        self.graph_name = graph_name
        self.nodes: List[TENode] = []
        self.placeholders: List[Tensor] = []

    def emit(self, tensor: Tensor, source: OpNode) -> Tensor:
        """Register a compute tensor as a TE of the program."""
        if tensor.op is None:
            raise LoweringError(f"emit() expects a compute tensor, got {tensor.name}")
        self.nodes.append(
            TENode(len(self.nodes), tensor, source.name, source.op_type)
        )
        return tensor

    def add_placeholder(self, tensor: Tensor) -> Tensor:
        self.placeholders.append(tensor)
        return tensor


LoweringFn = Callable[[OpNode, List[Tensor], LoweringContext], Tensor]
_RULES: Dict[str, LoweringFn] = {}


def register(op_type: str) -> Callable[[LoweringFn], LoweringFn]:
    def deco(fn: LoweringFn) -> LoweringFn:
        if op_type in _RULES:
            raise LoweringError(f"duplicate lowering rule for {op_type}")
        _RULES[op_type] = fn
        return fn

    return deco


def lower_graph(graph: Graph) -> TEProgram:
    """Lower an operator graph to a TE program (tensor dependency graph)."""
    ctx = LoweringContext(graph.name)
    env: Dict[OpNode, Tensor] = {}
    for node in graph.nodes:
        if node.is_source:
            env[node] = ctx.add_placeholder(
                placeholder(node.shape, dtype=node.dtype, name=node.name,
                            role=node.op_type)
            )
            continue
        rule = _RULES.get(node.op_type)
        if rule is None:
            raise UnsupportedOperatorError(
                f"no TE lowering for operator {node.op_type!r} "
                f"(paper Sec. 6.7 limitation)"
            )
        inputs = [env[parent] for parent in node.inputs]
        env[node] = rule(node, inputs, ctx)
    outputs = [env[out] for out in graph.outputs]
    return TEProgram(graph.name, ctx.placeholders, ctx.nodes, outputs)


# ---- helpers --------------------------------------------------------------


def _clamp(index: Expr, extent: int) -> Expr:
    """Clamp an index into [0, extent) — used under predicates whose false
    branch must still evaluate in-range (the evaluator computes both sides of
    a select, like a GPU would with predication)."""
    return minimum(maximum(index, 0), extent - 1)


def _broadcast_read(tensor: Tensor, out_vars: Sequence[Var], out_shape: Shape) -> Expr:
    """Read ``tensor`` at the output point, numpy broadcast semantics."""
    offset = len(out_shape) - tensor.ndim
    if offset < 0:
        raise LoweringError(
            f"cannot broadcast {tensor.name} of rank {tensor.ndim} to rank "
            f"{len(out_shape)}"
        )
    indices: List[Expr] = []
    for d in range(tensor.ndim):
        if tensor.shape[d] == 1 and out_shape[d + offset] != 1:
            indices.append(Const(0, "int32"))
        else:
            indices.append(out_vars[d + offset])
    return tensor[tuple(indices)]


def _strides(shape: Shape) -> List[int]:
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def _maybe_pad(
    x: Tensor, padding: int, node: OpNode, ctx: LoweringContext
) -> Tensor:
    """Emit a zero-padding TE over the two trailing spatial dims if needed."""
    if padding == 0:
        return x
    n, c, h, w = x.shape
    ph, pw = h + 2 * padding, w + 2 * padding

    def body(nn: Var, cc: Var, hh: Var, ww: Var) -> Expr:
        inside = (
            (hh >= padding) * (hh < h + padding) * (ww >= padding) * (ww < w + padding)
        )
        return if_then_else(
            inside,
            x[nn, cc, _clamp(hh - padding, h), _clamp(ww - padding, w)],
            0.0,
        )

    padded = compute((n, c, ph, pw), body, name=f"{x.name}_pad", dtype=x.dtype)
    return ctx.emit(padded, node)


# ---- compute-intensive ops -------------------------------------------------


@register("matmul")
def _lower_matmul(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    a, b = inputs
    k = a.shape[1]
    rk = reduce_axis((0, k), name=f"rk_{node.name}")
    out = compute(
        node.shape,
        lambda i, j: sum_expr(a[i, rk] * b[rk, j], [rk]),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("batch_matmul")
def _lower_batch_matmul(
    node: OpNode, inputs: List[Tensor], ctx: LoweringContext
) -> Tensor:
    a, b = inputs
    k = a.shape[2]
    rk = reduce_axis((0, k), name=f"rk_{node.name}")
    out = compute(
        node.shape,
        lambda bb, i, j: sum_expr(a[bb, i, rk] * b[bb, rk, j], [rk]),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("gemv")
def _lower_gemv(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    a, v = inputs
    k = a.shape[1]
    rk = reduce_axis((0, k), name=f"rk_{node.name}")
    out = compute(
        node.shape,
        lambda i: sum_expr(a[i, rk] * v[rk], [rk]),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("conv2d")
def _lower_conv2d(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    x, w = inputs
    stride = node.attrs["stride"]
    padding = node.attrs["padding"]
    groups = node.attrs["groups"]
    x = _maybe_pad(x, padding, node, ctx)
    f_total, c_per_group, kh, kw = w.shape
    f_per_group = f_total // groups

    rc = reduce_axis((0, c_per_group), name=f"rc_{node.name}")
    rh = reduce_axis((0, kh), name=f"rh_{node.name}")
    rw = reduce_axis((0, kw), name=f"rw_{node.name}")

    def body(nn: Var, ff: Var, hh: Var, ww: Var) -> Expr:
        if groups == 1:
            cin: Expr = rc.var
        else:
            cin = (ff // f_per_group) * c_per_group + rc.var
        return sum_expr(
            x[nn, cin, hh * stride + rh, ww * stride + rw] * w[ff, rc, rh, rw],
            [rc, rh, rw],
        )

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


@register("depthwise_conv2d")
def _lower_depthwise(
    node: OpNode, inputs: List[Tensor], ctx: LoweringContext
) -> Tensor:
    x, w = inputs
    stride = node.attrs["stride"]
    padding = node.attrs["padding"]
    x = _maybe_pad(x, padding, node, ctx)
    _, _, kh, kw = w.shape
    rh = reduce_axis((0, kh), name=f"rh_{node.name}")
    rw = reduce_axis((0, kw), name=f"rw_{node.name}")
    out = compute(
        node.shape,
        lambda nn, cc, hh, ww: sum_expr(
            x[nn, cc, hh * stride + rh, ww * stride + rw] * w[cc, 0, rh, rw],
            [rh, rw],
        ),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


# ---- element-wise arithmetic ------------------------------------------------


def _lower_binary(op: str) -> LoweringFn:
    import operator

    fns = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "div": lambda a, b: a / b,
    }
    fn = fns[op]

    def rule(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
        a, b = inputs
        out = compute(
            node.shape,
            lambda *vs: fn(
                _broadcast_read(a, vs, node.shape),
                _broadcast_read(b, vs, node.shape),
            ),
            name=node.name,
            dtype=node.dtype,
        )
        return ctx.emit(out, node)

    return rule


for _op in ("add", "sub", "mul", "div"):
    register(_op)(_lower_binary(_op))


@register("bias_add")
def _lower_bias_add(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    x, bias = inputs
    out = compute(
        node.shape,
        lambda *vs: x[tuple(vs)] + bias[vs[-1]],
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


_UNARY_INTRINSICS = {
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "rsqrt": "rsqrt",
    "erf": "erf",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "gelu": "gelu",
}


def _lower_unary(op: str) -> LoweringFn:
    intrinsic = _UNARY_INTRINSICS[op]

    def rule(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
        (x,) = inputs
        out = compute(
            node.shape,
            lambda *vs: call(intrinsic, x[tuple(vs)]),
            name=node.name,
            dtype=node.dtype,
        )
        return ctx.emit(out, node)

    return rule


for _op in _UNARY_INTRINSICS:
    register(_op)(_lower_unary(_op))


@register("relu6")
def _lower_relu6(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    out = compute(
        node.shape,
        lambda *vs: minimum(maximum(x[tuple(vs)], 0.0), 6.0),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("swish")
def _lower_swish(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    out = compute(
        node.shape,
        lambda *vs: x[tuple(vs)] * call("sigmoid", x[tuple(vs)]),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("scale")
def _lower_scale(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    factor = node.attrs["factor"]
    out = compute(
        node.shape,
        lambda *vs: x[tuple(vs)] * factor,
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("clip")
def _lower_clip(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    lo, hi = node.attrs["lo"], node.attrs["hi"]
    out = compute(
        node.shape,
        lambda *vs: minimum(maximum(x[tuple(vs)], lo), hi),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


# ---- element-wise memory ops -------------------------------------------------


@register("reshape")
def _lower_reshape(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    out_strides = _strides(node.shape)
    in_strides = _strides(x.shape)

    def body(*vs: Var) -> Expr:
        linear: Expr = Const(0, "int32")
        for var, stride in zip(vs, out_strides):
            linear = linear + var * stride
        indices: List[Expr] = []
        for d, stride in enumerate(in_strides):
            index = linear // stride
            if d > 0:
                index = index % x.shape[d]
            indices.append(index)
        return x[tuple(indices)]

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


@register("transpose")
def _lower_transpose(
    node: OpNode, inputs: List[Tensor], ctx: LoweringContext
) -> Tensor:
    (x,) = inputs
    perm = node.attrs["perm"]

    def body(*vs: Var) -> Expr:
        indices: List[Expr] = [None] * x.ndim  # type: ignore[list-item]
        for out_dim, in_dim in enumerate(perm):
            indices[in_dim] = vs[out_dim]
        return x[tuple(indices)]

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


@register("slice")
def _lower_slice(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    begins = node.attrs["begins"]
    strides = node.attrs["strides"]

    def body(*vs: Var) -> Expr:
        indices = [
            v * s + b if (s != 1 or b != 0) else v
            for v, b, s in zip(vs, begins, strides)
        ]
        return x[tuple(indices)]

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


@register("concat")
def _lower_concat(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    axis = node.attrs["axis"]

    def body(*vs: Var) -> Expr:
        v = vs[axis]
        # Build the select chain from the last input backwards.
        offsets = []
        acc = 0
        for tensor in inputs:
            offsets.append(acc)
            acc += tensor.shape[axis]
        expr: Optional[Expr] = None
        for tensor, offset in zip(reversed(inputs), reversed(offsets)):
            extent = tensor.shape[axis]
            indices = list(vs)
            indices[axis] = _clamp(v - offset, extent)
            read = tensor[tuple(indices)]
            if expr is None:
                expr = read
            else:
                expr = if_then_else(v < offset + extent, read, expr)
        assert expr is not None
        return expr

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


@register("pad")
def _lower_pad(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    pad_width = node.attrs["pad_width"]

    def body(*vs: Var) -> Expr:
        inside: Optional[Expr] = None
        indices: List[Expr] = []
        for v, (before, _after), extent in zip(vs, pad_width, x.shape):
            if before == 0 and _after == 0:
                indices.append(v)
                continue
            cond = (v >= before) * (v < before + extent)
            inside = cond if inside is None else inside * cond
            indices.append(_clamp(v - before, extent))
        read = x[tuple(indices)]
        if inside is None:
            return read
        return if_then_else(inside, read, 0.0)

    out = compute(node.shape, body, name=node.name, dtype=node.dtype)
    return ctx.emit(out, node)


# ---- reductions & composites ---------------------------------------------------


def _reduce_body_indices(
    x: Tensor, out_vars: Sequence[Var], axes: Sequence[int], keepdims: bool,
    reduce_vars: Dict[int, Var],
) -> Tuple[Expr, ...]:
    """Input indices mixing surviving spatial vars and reduce vars."""
    norm = {a + x.ndim if a < 0 else a for a in axes}
    indices: List[Expr] = []
    pos = 0
    for d in range(x.ndim):
        if d in norm:
            indices.append(reduce_vars[d])
            if keepdims:
                pos += 1
        else:
            indices.append(out_vars[pos])
            pos += 1
    return tuple(indices)


def _lower_reduce(kind: str, scale_by_count: bool) -> LoweringFn:
    def rule(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
        (x,) = inputs
        axes = node.attrs["axes"]
        keepdims = node.attrs["keepdims"]
        norm = sorted(a + x.ndim if a < 0 else a for a in axes)
        rvars = {
            d: reduce_axis((0, x.shape[d]), name=f"r{d}_{node.name}") for d in norm
        }
        count = 1
        for d in norm:
            count *= x.shape[d]

        make = sum_expr if kind == "sum" else max_expr

        def body(*vs: Var) -> Expr:
            indices = _reduce_body_indices(
                x, vs, axes, keepdims, {d: rv.var for d, rv in rvars.items()}
            )
            return make(x[indices], [rvars[d] for d in norm])

        reduced_name = node.name if not scale_by_count else f"{node.name}_sum"
        reduced = compute(node.shape, body, name=reduced_name, dtype=node.dtype)
        ctx.emit(reduced, node)
        if not scale_by_count:
            return reduced
        out = compute(
            node.shape,
            lambda *vs: reduced[tuple(vs)] * (1.0 / count),
            name=node.name,
            dtype=node.dtype,
        )
        return ctx.emit(out, node)

    return rule


register("reduce_sum")(_lower_reduce("sum", scale_by_count=False))
register("reduce_mean")(_lower_reduce("sum", scale_by_count=True))
register("reduce_max")(_lower_reduce("max", scale_by_count=False))


@register("softmax")
def _lower_softmax(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    axis = node.attrs["axis"]
    extent = x.shape[axis]
    reduced_shape = tuple(e for d, e in enumerate(x.shape) if d != axis)
    reduced_shape = reduced_shape if reduced_shape else (1,)

    def _outer_indices(vs: Sequence[Var], rvar: Expr) -> Tuple[Expr, ...]:
        indices: List[Expr] = []
        pos = 0
        for d in range(x.ndim):
            if d == axis:
                indices.append(rvar)
            else:
                indices.append(vs[pos])
                pos += 1
        return tuple(indices)

    def _reduced_read(tensor: Tensor, vs: Sequence[Var]) -> Expr:
        outer = [vs[d] for d in range(x.ndim) if d != axis]
        if not outer:
            outer = [Const(0, "int32")]
        return tensor[tuple(outer)]

    r1 = reduce_axis((0, extent), name=f"rmax_{node.name}")
    xmax = compute(
        reduced_shape,
        lambda *vs: max_expr(x[_outer_indices(vs, r1.var)], [r1]),
        name=f"{node.name}_max",
        dtype=node.dtype,
    )
    ctx.emit(xmax, node)

    exp = compute(
        x.shape,
        lambda *vs: call("exp", x[tuple(vs)] - _reduced_read(xmax, vs)),
        name=f"{node.name}_exp",
        dtype=node.dtype,
    )
    ctx.emit(exp, node)

    r2 = reduce_axis((0, extent), name=f"rsum_{node.name}")
    xsum = compute(
        reduced_shape,
        lambda *vs: sum_expr(exp[_outer_indices(vs, r2.var)], [r2]),
        name=f"{node.name}_sum",
        dtype=node.dtype,
    )
    ctx.emit(xsum, node)

    out = compute(
        x.shape,
        lambda *vs: exp[tuple(vs)] / _reduced_read(xsum, vs),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


@register("layernorm")
def _lower_layernorm(
    node: OpNode, inputs: List[Tensor], ctx: LoweringContext
) -> Tensor:
    x, gamma, beta = inputs
    eps = node.attrs["eps"]
    hidden = x.shape[-1]
    outer_shape = x.shape[:-1] if len(x.shape) > 1 else (1,)

    def _outer(vs: Sequence[Var]) -> Tuple[Expr, ...]:
        if len(x.shape) == 1:
            return (Const(0, "int32"),)
        return tuple(vs[:-1])

    r1 = reduce_axis((0, hidden), name=f"rm_{node.name}")
    total = compute(
        outer_shape,
        lambda *vs: sum_expr(x[tuple(list(vs) + [r1.var])], [r1]),
        name=f"{node.name}_sum",
        dtype=node.dtype,
    )
    ctx.emit(total, node)
    mean = compute(
        outer_shape,
        lambda *vs: total[tuple(vs)] * (1.0 / hidden),
        name=f"{node.name}_mean",
        dtype=node.dtype,
    )
    ctx.emit(mean, node)

    # One-pass variance: Var[x] = E[x^2] - mean^2 (keeps the reduction body
    # to a single multiply, like production fused-LN kernels).
    r2 = reduce_axis((0, hidden), name=f"rv_{node.name}")
    sq = compute(
        outer_shape,
        lambda *vs: sum_expr(
            x[tuple(list(vs) + [r2.var])] * x[tuple(list(vs) + [r2.var])],
            [r2],
        ),
        name=f"{node.name}_sqsum",
        dtype=node.dtype,
    )
    ctx.emit(sq, node)
    var = compute(
        outer_shape,
        lambda *vs: sq[tuple(vs)] * (1.0 / hidden)
        - mean[tuple(vs)] * mean[tuple(vs)],
        name=f"{node.name}_var",
        dtype=node.dtype,
    )
    ctx.emit(var, node)

    out = compute(
        x.shape,
        lambda *vs: (x[tuple(vs)] - mean[_outer(vs)])
        * call("rsqrt", var[_outer(vs)] + eps)
        * gamma[vs[-1]]
        + beta[vs[-1]],
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)


def _lower_pool(kind: str) -> LoweringFn:
    def rule(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
        (x,) = inputs
        kernel = node.attrs["kernel"]
        stride = node.attrs["stride"]
        padding = node.attrs["padding"]
        x = _maybe_pad(x, padding, node, ctx)
        rh = reduce_axis((0, kernel), name=f"rh_{node.name}")
        rw = reduce_axis((0, kernel), name=f"rw_{node.name}")
        make = sum_expr if kind == "avg" else max_expr
        reduced_name = node.name if kind == "max" else f"{node.name}_sum"
        reduced = compute(
            node.shape,
            lambda nn, cc, hh, ww: make(
                x[nn, cc, hh * stride + rh, ww * stride + rw], [rh, rw]
            ),
            name=reduced_name,
            dtype=node.dtype,
        )
        ctx.emit(reduced, node)
        if kind == "max":
            return reduced
        out = compute(
            node.shape,
            lambda *vs: reduced[tuple(vs)] * (1.0 / (kernel * kernel)),
            name=node.name,
            dtype=node.dtype,
        )
        return ctx.emit(out, node)

    return rule


register("avg_pool2d")(_lower_pool("avg"))
register("max_pool2d")(_lower_pool("max"))


@register("global_avg_pool")
def _lower_gap(node: OpNode, inputs: List[Tensor], ctx: LoweringContext) -> Tensor:
    (x,) = inputs
    _, _, h, w = x.shape
    rh = reduce_axis((0, h), name=f"rh_{node.name}")
    rw = reduce_axis((0, w), name=f"rw_{node.name}")
    total = compute(
        node.shape,
        lambda nn, cc: sum_expr(x[nn, cc, rh, rw], [rh, rw]),
        name=f"{node.name}_sum",
        dtype=node.dtype,
    )
    ctx.emit(total, node)
    out = compute(
        node.shape,
        lambda *vs: total[tuple(vs)] * (1.0 / (h * w)),
        name=node.name,
        dtype=node.dtype,
    )
    return ctx.emit(out, node)
