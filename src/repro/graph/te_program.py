"""TE programs: the global tensor dependency graph (paper Sec. 4-5).

Lowering a model produces a :class:`TEProgram` — an ordered list of
:class:`TENode` (one per tensor expression) plus the placeholder inputs.
The program exposes producer/consumer queries used by every analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.errors import AnalysisError
from repro.te.tensor import Tensor
from repro.te.traversal import input_tensors


@dataclass
class TENode:
    """One tensor expression of the program.

    ``op_name``/``op_type`` record the graph operator the TE was lowered
    from (several TEs may share one source operator, e.g. softmax).
    """

    index: int
    tensor: Tensor
    op_name: str
    op_type: str

    @property
    def name(self) -> str:
        return self.tensor.name

    @property
    def inputs(self) -> List[Tensor]:
        """Tensors this TE reads (placeholders or other TE outputs)."""
        if self.tensor.op is None:
            return []
        return input_tensors(self.tensor.op.body)

    def __repr__(self) -> str:
        return f"<TE#{self.index} {self.name} from {self.op_name}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class TEProgram:
    """An ordered TE program with dependency queries."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[Tensor],
        nodes: Sequence[TENode],
        outputs: Sequence[Tensor],
    ) -> None:
        self.name = name
        self.inputs: List[Tensor] = list(inputs)
        self.nodes: List[TENode] = list(nodes)
        self.outputs: List[Tensor] = list(outputs)

        self._producer: Dict[int, TENode] = {}
        for node in self.nodes:
            if id(node.tensor) in self._producer:
                raise AnalysisError(f"tensor {node.name} produced twice")
            self._producer[id(node.tensor)] = node

        self._consumers: Dict[int, List[TENode]] = {}
        known = set(self._producer) | {id(t) for t in self.inputs}
        for node in self.nodes:
            for tensor in node.inputs:
                if id(tensor) not in known:
                    raise AnalysisError(
                        f"TE {node.name} reads unknown tensor {tensor.name}"
                    )
                self._consumers.setdefault(id(tensor), []).append(node)
        for out in self.outputs:
            if id(out) not in self._producer:
                raise AnalysisError(f"output {out.name} has no producer TE")

        self._check_topological()

    def _check_topological(self) -> None:
        seen: Set[int] = {id(t) for t in self.inputs}
        for node in self.nodes:
            for tensor in node.inputs:
                if id(tensor) not in seen:
                    raise AnalysisError(
                        f"TE program not topologically ordered: {node.name} "
                        f"reads {tensor.name} before it is produced"
                    )
            seen.add(id(node.tensor))

    # ---- queries --------------------------------------------------------

    def producer(self, tensor: Tensor) -> Optional[TENode]:
        """The TE producing ``tensor``, or ``None`` for placeholders."""
        return self._producer.get(id(tensor))

    def consumers(self, tensor: Tensor) -> List[TENode]:
        """TEs reading ``tensor``."""
        return list(self._consumers.get(id(tensor), []))

    def node_producers(self, node: TENode) -> List[TENode]:
        """TEs whose outputs ``node`` reads."""
        result = []
        for tensor in node.inputs:
            producer = self.producer(tensor)
            if producer is not None:
                result.append(producer)
        return result

    def node_consumers(self, node: TENode) -> List[TENode]:
        """TEs reading ``node``'s output."""
        return self.consumers(node.tensor)

    @property
    def tensors(self) -> List[Tensor]:
        """All tensors: inputs then TE outputs, program order."""
        return self.inputs + [node.tensor for node in self.nodes]

    def is_output(self, tensor: Tensor) -> bool:
        return any(tensor is out for out in self.outputs)

    def __iter__(self) -> Iterator[TENode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"<TEProgram {self.name}: {len(self.nodes)} TEs, "
            f"{len(self.inputs)} inputs, {len(self.outputs)} outputs>"
        )
