"""Shape inference for graph operators."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import LoweringError

Shape = Tuple[int, ...]


def broadcast_shapes(a: Shape, b: Shape) -> Shape:
    """Numpy-style broadcast of two shapes."""
    result: List[int] = []
    for da, db in zip(reversed((1,) * max(0, len(b) - len(a)) + tuple(a)),
                      reversed((1,) * max(0, len(a) - len(b)) + tuple(b))):
        if da == db or da == 1 or db == 1:
            result.append(max(da, db))
        else:
            raise LoweringError(f"cannot broadcast shapes {a} and {b}")
    return tuple(reversed(result))


def matmul_shape(a: Shape, b: Shape) -> Shape:
    """Shape of ``a @ b`` for 2-D operands."""
    if len(a) != 2 or len(b) != 2:
        raise LoweringError(f"matmul expects 2-D operands, got {a} and {b}")
    if a[1] != b[0]:
        raise LoweringError(f"matmul inner dims differ: {a} vs {b}")
    return (a[0], b[1])


def batch_matmul_shape(a: Shape, b: Shape) -> Shape:
    """Shape of a batched matmul over 3-D operands (batch, m, k)x(batch, k, n)."""
    if len(a) != 3 or len(b) != 3:
        raise LoweringError(f"batch_matmul expects 3-D operands, got {a} and {b}")
    if a[0] != b[0]:
        raise LoweringError(f"batch dims differ: {a} vs {b}")
    if a[2] != b[1]:
        raise LoweringError(f"batch_matmul inner dims differ: {a} vs {b}")
    return (a[0], a[1], b[2])


def conv2d_shape(
    x: Shape, w: Shape, stride: int, padding: int, groups: int = 1
) -> Shape:
    """NCHW conv2d output shape; weight is (F, C/groups, KH, KW)."""
    if len(x) != 4 or len(w) != 4:
        raise LoweringError(f"conv2d expects 4-D tensors, got {x} and {w}")
    n, c, h, width = x
    f, c_per_group, kh, kw = w
    if c % groups or f % groups:
        raise LoweringError(f"channels {c}/{f} not divisible by groups {groups}")
    if c // groups != c_per_group:
        raise LoweringError(
            f"weight expects {c_per_group} in-channels per group, input has "
            f"{c // groups}"
        )
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (width + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise LoweringError(f"conv2d output collapses: {x} conv {w}")
    return (n, f, oh, ow)


def depthwise_conv2d_shape(x: Shape, w: Shape, stride: int, padding: int) -> Shape:
    """NCHW depthwise conv output shape; weight is (C, 1, KH, KW)."""
    if len(x) != 4 or len(w) != 4 or w[1] != 1:
        raise LoweringError(f"depthwise conv expects (C,1,KH,KW) weight, got {w}")
    if x[1] != w[0]:
        raise LoweringError(f"channel mismatch: input {x}, weight {w}")
    n, c, h, width = x
    _, _, kh, kw = w
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (width + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise LoweringError(f"depthwise conv output collapses: {x} conv {w}")
    return (n, c, oh, ow)


def pool2d_shape(x: Shape, kernel: int, stride: int, padding: int) -> Shape:
    """NCHW pooling output shape."""
    if len(x) != 4:
        raise LoweringError(f"pool2d expects 4-D input, got {x}")
    n, c, h, w = x
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise LoweringError(f"pool output collapses for input {x}")
    return (n, c, oh, ow)


def reshape_shape(x: Shape, new_shape: Sequence[int]) -> Shape:
    """Validate element-count-preserving reshape (one -1 allowed)."""
    new = list(new_shape)
    total = 1
    for extent in x:
        total *= extent
    if new.count(-1) > 1:
        raise LoweringError("reshape allows at most one -1 dimension")
    if -1 in new:
        known = 1
        for extent in new:
            if extent != -1:
                known *= extent
        if known == 0 or total % known:
            raise LoweringError(f"cannot infer -1 in reshape {x} -> {new_shape}")
        new[new.index(-1)] = total // known
    prod = 1
    for extent in new:
        prod *= extent
    if prod != total:
        raise LoweringError(f"reshape {x} -> {tuple(new)} changes element count")
    return tuple(new)


def transpose_shape(x: Shape, perm: Sequence[int]) -> Shape:
    """Shape after permuting axes by ``perm``."""
    if sorted(perm) != list(range(len(x))):
        raise LoweringError(f"bad permutation {perm} for rank-{len(x)} tensor")
    return tuple(x[p] for p in perm)


def slice_shape(
    x: Shape, begins: Sequence[int], ends: Sequence[int], strides: Optional[Sequence[int]] = None
) -> Shape:
    """Shape of a strided slice."""
    if len(begins) != len(x) or len(ends) != len(x):
        raise LoweringError("slice begins/ends must cover every dimension")
    strides = list(strides) if strides is not None else [1] * len(x)
    out: List[int] = []
    for extent, b, e, s in zip(x, begins, ends, strides):
        if s <= 0:
            raise LoweringError("slice strides must be positive")
        if not (0 <= b < e <= extent):
            raise LoweringError(f"slice [{b}:{e}] out of range for extent {extent}")
        out.append((e - b + s - 1) // s)
    return tuple(out)


def concat_shape(shapes: Sequence[Shape], axis: int) -> Shape:
    """Shape of concatenation along ``axis``."""
    if not shapes:
        raise LoweringError("concat of zero tensors")
    rank = len(shapes[0])
    if axis < 0:
        axis += rank
    if not 0 <= axis < rank:
        raise LoweringError(f"concat axis {axis} out of range for rank {rank}")
    for shape in shapes[1:]:
        if len(shape) != rank:
            raise LoweringError("concat inputs must have equal rank")
        for d in range(rank):
            if d != axis and shape[d] != shapes[0][d]:
                raise LoweringError(
                    f"concat inputs disagree on dim {d}: {shapes}"
                )
    out = list(shapes[0])
    out[axis] = sum(shape[axis] for shape in shapes)
    return tuple(out)


def reduce_shape(x: Shape, axes: Sequence[int], keepdims: bool) -> Shape:
    """Shape after reducing over ``axes``."""
    rank = len(x)
    norm = sorted(a + rank if a < 0 else a for a in axes)
    for a in norm:
        if not 0 <= a < rank:
            raise LoweringError(f"reduce axis {a} out of range for rank {rank}")
    if len(set(norm)) != len(norm):
        raise LoweringError(f"duplicate reduce axes {axes}")
    if keepdims:
        return tuple(1 if d in norm else extent for d, extent in enumerate(x))
    out = tuple(extent for d, extent in enumerate(x) if d not in norm)
    return out if out else (1,)
