"""The model computation graph: a DAG of operator nodes."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Sequence, Set

from repro.errors import AnalysisError
from repro.graph.op import OpNode


class Graph:
    """A computation graph with designated inputs, weights and outputs."""

    def __init__(
        self,
        outputs: Sequence[OpNode],
        name: str = "model",
    ) -> None:
        if not outputs:
            raise AnalysisError("graph must have at least one output")
        self.name = name
        self.outputs: List[OpNode] = list(outputs)
        self.nodes: List[OpNode] = self._topological_order()
        self.inputs: List[OpNode] = [
            n for n in self.nodes if n.op_type == "input"
        ]
        self.weights: List[OpNode] = [
            n for n in self.nodes if n.op_type == "weight"
        ]

    def _topological_order(self) -> List[OpNode]:
        """All reachable nodes, inputs before consumers."""
        order: List[OpNode] = []
        state: Dict[OpNode, int] = {}  # 1 = visiting, 2 = done

        for root in self.outputs:
            stack: List[tuple] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    state[node] = 2
                    order.append(node)
                    continue
                status = state.get(node, 0)
                if status == 2:
                    continue
                if status == 1:
                    raise AnalysisError(f"cycle through operator {node.name}")
                state[node] = 1
                stack.append((node, True))
                for parent in reversed(node.inputs):
                    if state.get(parent, 0) == 0:
                        stack.append((parent, False))
                    elif state.get(parent) == 1:
                        raise AnalysisError(f"cycle through operator {parent.name}")
        return order

    @property
    def operators(self) -> List[OpNode]:
        """Non-source nodes (the actual computation)."""
        return [n for n in self.nodes if not n.is_source]

    def consumers(self, node: OpNode) -> List[OpNode]:
        """Nodes that read ``node``'s output."""
        if not hasattr(self, "_consumer_map"):
            consumer_map: Dict[OpNode, List[OpNode]] = {n: [] for n in self.nodes}
            for n in self.nodes:
                for parent in n.inputs:
                    consumer_map[parent].append(n)
            self._consumer_map = consumer_map
        return self._consumer_map[node]

    def op_counts(self) -> Dict[str, int]:
        """Histogram of operator types (useful in tests and reports)."""
        counts: Dict[str, int] = {}
        for node in self.operators:
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return counts

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"<Graph {self.name}: {len(self.operators)} ops, "
            f"{len(self.inputs)} inputs, {len(self.weights)} weights>"
        )
