"""Fluent builder for computation graphs.

The six evaluation models (`repro.models`) are written against this API:

    b = GraphBuilder("bert")
    x = b.input((128, 768), name="x")
    w = b.weight((768, 768))
    y = b.relu(b.matmul(x, w))
    graph = b.build([y])
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import LoweringError
from repro.graph import shapes as S
from repro.graph.graph import Graph
from repro.graph.op import OpNode

Shape = Tuple[int, ...]


class GraphBuilder:
    """Accumulates operator nodes and assembles a :class:`Graph`."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._nodes: List[OpNode] = []

    # ---- sources -------------------------------------------------------

    def _add(self, node: OpNode) -> OpNode:
        self._nodes.append(node)
        return node

    def input(self, shape: Sequence[int], dtype: str = "float32",
              name: str = "") -> OpNode:
        """A model input tensor."""
        return self._add(OpNode("input", [], tuple(shape), dtype, name=name))

    def weight(self, shape: Sequence[int], dtype: str = "float32",
               name: str = "") -> OpNode:
        """A trained parameter tensor."""
        return self._add(OpNode("weight", [], tuple(shape), dtype, name=name))

    # ---- compute-intensive ops ------------------------------------------

    def matmul(self, a: OpNode, b: OpNode, out_dtype: Optional[str] = None,
               name: str = "") -> OpNode:
        """2-D GEMM. Uses FP16 tensor cores when both operands are float16."""
        shape = S.matmul_shape(a.shape, b.shape)
        dtype = out_dtype or a.dtype
        return self._add(OpNode("matmul", [a, b], shape, dtype, name=name))

    def batch_matmul(self, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        """Batched 3-D matmul (batch, m, k) x (batch, k, n)."""
        shape = S.batch_matmul_shape(a.shape, b.shape)
        return self._add(OpNode("batch_matmul", [a, b], shape, a.dtype, name=name))

    def gemv(self, matrix: OpNode, vector: OpNode, name: str = "") -> OpNode:
        """Matrix-vector product (m, k) x (k,) -> (m,). LSTM's workhorse."""
        if len(matrix.shape) != 2 or len(vector.shape) != 1:
            raise LoweringError(
                f"gemv expects (m,k) x (k,), got {matrix.shape} x {vector.shape}"
            )
        if matrix.shape[1] != vector.shape[0]:
            raise LoweringError(
                f"gemv inner dims differ: {matrix.shape} vs {vector.shape}"
            )
        return self._add(
            OpNode("gemv", [matrix, vector], (matrix.shape[0],), matrix.dtype,
                   name=name)
        )

    def dense(self, x: OpNode, w: OpNode, bias: Optional[OpNode] = None,
              name: str = "") -> OpNode:
        """``x @ w (+ bias)`` with ``w`` of shape (in, out)."""
        y = self.matmul(x, w, name=name)
        if bias is not None:
            y = self.bias_add(y, bias)
        return y

    def conv2d(self, x: OpNode, w: OpNode, stride: int = 1, padding: int = 0,
               groups: int = 1, name: str = "") -> OpNode:
        """NCHW convolution (direct algorithm, as in the paper Sec. 6.7)."""
        shape = S.conv2d_shape(x.shape, w.shape, stride, padding, groups)
        return self._add(
            OpNode("conv2d", [x, w], shape, x.dtype,
                   {"stride": stride, "padding": padding, "groups": groups},
                   name=name)
        )

    def depthwise_conv2d(self, x: OpNode, w: OpNode, stride: int = 1,
                         padding: int = 0, name: str = "") -> OpNode:
        """NCHW depthwise convolution with (C, 1, KH, KW) weight."""
        shape = S.depthwise_conv2d_shape(x.shape, w.shape, stride, padding)
        return self._add(
            OpNode("depthwise_conv2d", [x, w], shape, x.dtype,
                   {"stride": stride, "padding": padding}, name=name)
        )

    # ---- element-wise arithmetic ----------------------------------------

    def _binary(self, op: str, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        shape = S.broadcast_shapes(a.shape, b.shape)
        return self._add(OpNode(op, [a, b], shape, a.dtype, name=name))

    def add(self, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        return self._binary("add", a, b, name)

    def sub(self, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        return self._binary("sub", a, b, name)

    def mul(self, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        return self._binary("mul", a, b, name)

    def div(self, a: OpNode, b: OpNode, name: str = "") -> OpNode:
        return self._binary("div", a, b, name)

    def bias_add(self, x: OpNode, bias: OpNode, name: str = "") -> OpNode:
        """Add a bias vector along the last dimension."""
        if bias.shape != (x.shape[-1],):
            raise LoweringError(
                f"bias shape {bias.shape} does not match last dim of {x.shape}"
            )
        return self._add(OpNode("bias_add", [x, bias], x.shape, x.dtype, name=name))

    def _unary(self, op: str, x: OpNode, name: str = "",
               attrs: Optional[Dict[str, Any]] = None) -> OpNode:
        return self._add(OpNode(op, [x], x.shape, x.dtype, attrs or {}, name=name))

    def exp(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("exp", x, name)

    def sqrt(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("sqrt", x, name)

    def rsqrt(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("rsqrt", x, name)

    def erf(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("erf", x, name)

    def tanh(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("tanh", x, name)

    def sigmoid(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("sigmoid", x, name)

    def relu(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("relu", x, name)

    def relu6(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("relu6", x, name)

    def gelu(self, x: OpNode, name: str = "") -> OpNode:
        return self._unary("gelu", x, name)

    def swish(self, x: OpNode, name: str = "") -> OpNode:
        """x * sigmoid(x) — EfficientNet's activation."""
        return self._unary("swish", x, name)

    def scale(self, x: OpNode, factor: float, name: str = "") -> OpNode:
        """Multiply by a compile-time scalar (e.g. 1/sqrt(d_k))."""
        return self._unary("scale", x, name, {"factor": float(factor)})

    def clip(self, x: OpNode, lo: float, hi: float, name: str = "") -> OpNode:
        return self._unary("clip", x, name, {"lo": float(lo), "hi": float(hi)})

    # ---- element-wise memory ops ----------------------------------------

    def reshape(self, x: OpNode, new_shape: Sequence[int], name: str = "") -> OpNode:
        shape = S.reshape_shape(x.shape, new_shape)
        if shape == x.shape:
            return x
        return self._add(
            OpNode("reshape", [x], shape, x.dtype, {"shape": shape}, name=name)
        )

    def transpose(self, x: OpNode, perm: Sequence[int], name: str = "") -> OpNode:
        shape = S.transpose_shape(x.shape, perm)
        return self._add(
            OpNode("transpose", [x], shape, x.dtype, {"perm": tuple(perm)},
                   name=name)
        )

    def slice(self, x: OpNode, begins: Sequence[int], ends: Sequence[int],
              strides: Optional[Sequence[int]] = None, name: str = "") -> OpNode:
        shape = S.slice_shape(x.shape, begins, ends, strides)
        return self._add(
            OpNode("slice", [x], shape, x.dtype,
                   {"begins": tuple(begins), "ends": tuple(ends),
                    "strides": tuple(strides) if strides else (1,) * len(x.shape)},
                   name=name)
        )

    def concat(self, xs: Sequence[OpNode], axis: int, name: str = "") -> OpNode:
        shape = S.concat_shape([x.shape for x in xs], axis)
        axis = axis + len(shape) if axis < 0 else axis
        return self._add(
            OpNode("concat", list(xs), shape, xs[0].dtype, {"axis": axis},
                   name=name)
        )

    def pad(self, x: OpNode, pad_width: Sequence[Tuple[int, int]],
            name: str = "") -> OpNode:
        """Zero padding; ``pad_width`` is per-dimension (before, after)."""
        if len(pad_width) != len(x.shape):
            raise LoweringError("pad_width must cover every dimension")
        shape = tuple(
            extent + before + after
            for extent, (before, after) in zip(x.shape, pad_width)
        )
        return self._add(
            OpNode("pad", [x], shape, x.dtype,
                   {"pad_width": tuple(tuple(p) for p in pad_width)}, name=name)
        )

    # ---- reductions & composites -----------------------------------------

    def reduce_sum(self, x: OpNode, axes: Sequence[int], keepdims: bool = False,
                   name: str = "") -> OpNode:
        shape = S.reduce_shape(x.shape, axes, keepdims)
        return self._add(
            OpNode("reduce_sum", [x], shape, x.dtype,
                   {"axes": tuple(axes), "keepdims": keepdims}, name=name)
        )

    def reduce_mean(self, x: OpNode, axes: Sequence[int], keepdims: bool = False,
                    name: str = "") -> OpNode:
        shape = S.reduce_shape(x.shape, axes, keepdims)
        return self._add(
            OpNode("reduce_mean", [x], shape, x.dtype,
                   {"axes": tuple(axes), "keepdims": keepdims}, name=name)
        )

    def reduce_max(self, x: OpNode, axes: Sequence[int], keepdims: bool = False,
                   name: str = "") -> OpNode:
        shape = S.reduce_shape(x.shape, axes, keepdims)
        return self._add(
            OpNode("reduce_max", [x], shape, x.dtype,
                   {"axes": tuple(axes), "keepdims": keepdims}, name=name)
        )

    def softmax(self, x: OpNode, axis: int = -1, name: str = "") -> OpNode:
        """Numerically-stable softmax; lowers to reduce+elementwise TEs."""
        axis = axis + len(x.shape) if axis < 0 else axis
        return self._add(
            OpNode("softmax", [x], x.shape, x.dtype, {"axis": axis}, name=name)
        )

    def layernorm(self, x: OpNode, gamma: OpNode, beta: OpNode,
                  eps: float = 1e-5, name: str = "") -> OpNode:
        """Layer normalisation over the last dimension."""
        if gamma.shape != (x.shape[-1],) or beta.shape != (x.shape[-1],):
            raise LoweringError("layernorm gamma/beta must match last dim")
        return self._add(
            OpNode("layernorm", [x, gamma, beta], x.shape, x.dtype,
                   {"eps": eps}, name=name)
        )

    def avg_pool2d(self, x: OpNode, kernel: int, stride: int, padding: int = 0,
                   name: str = "") -> OpNode:
        shape = S.pool2d_shape(x.shape, kernel, stride, padding)
        return self._add(
            OpNode("avg_pool2d", [x], shape, x.dtype,
                   {"kernel": kernel, "stride": stride, "padding": padding},
                   name=name)
        )

    def max_pool2d(self, x: OpNode, kernel: int, stride: int, padding: int = 0,
                   name: str = "") -> OpNode:
        shape = S.pool2d_shape(x.shape, kernel, stride, padding)
        return self._add(
            OpNode("max_pool2d", [x], shape, x.dtype,
                   {"kernel": kernel, "stride": stride, "padding": padding},
                   name=name)
        )

    def global_avg_pool(self, x: OpNode, name: str = "") -> OpNode:
        """NCHW global average pooling -> (N, C)."""
        if len(x.shape) != 4:
            raise LoweringError("global_avg_pool expects NCHW input")
        return self._add(
            OpNode("global_avg_pool", [x], x.shape[:2], x.dtype, name=name)
        )

    # ---- assembly ---------------------------------------------------------

    def build(self, outputs: Sequence[OpNode]) -> Graph:
        """Finalize the graph with the given output nodes."""
        return Graph(outputs, name=self.name)
