"""Compiled modules: the artifact every compiler in this repo produces.

A :class:`CompiledModule` bundles the final TE program (functional
semantics), the built kernels (performance semantics) and the device model.
``run`` executes functionally with numpy; ``simulate`` produces the
performance counters the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.device import GPUSpec
from repro.gpu.simulator import GPUSimulator, ModuleMetrics
from repro.graph.te_program import TEProgram
from repro.te.evaluator import Evaluator
from repro.te.tensor import Tensor
from repro.tir.build import BuiltKernel


@dataclass
class CompileStats:
    """Wall-clock breakdown of one compilation (paper Sec. 8.5)."""

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    schedule_trials: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def record(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds


class PhaseTimer:
    """Context manager recording a phase duration into :class:`CompileStats`."""

    def __init__(self, stats: CompileStats, phase: str) -> None:
        self._stats = stats
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stats.record(self._phase, time.perf_counter() - self._start)


@dataclass
class CompiledModule:
    """The executable+measurable result of compiling one model."""

    name: str
    compiler: str
    program: TEProgram
    kernels: List[BuiltKernel]
    device: GPUSpec
    stats: CompileStats = field(default_factory=CompileStats)

    # ---- performance ---------------------------------------------------------

    def simulate(self) -> ModuleMetrics:
        """Run the analytic performance model over all kernels."""
        simulator = GPUSimulator(self.device)
        return simulator.run_module([k.spec for k in self.kernels])

    @property
    def kernel_calls(self) -> int:
        return len(self.kernels)

    # ---- functional execution ---------------------------------------------------

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        """Execute the module functionally; returns outputs in program order."""
        evaluator = Evaluator(feeds)
        return [evaluator.value_of(out) for out in self.program.outputs]

    def run_by_name(self, feeds: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Like :meth:`run` but feeds are keyed by placeholder name."""
        by_name = {t.name: t for t in self.program.inputs}
        resolved: Dict[Tensor, np.ndarray] = {}
        for name, value in feeds.items():
            tensor = by_name.get(name)
            if tensor is None:
                raise ExecutionError(f"no input named {name!r}")
            resolved[tensor] = value
        return self.run(resolved)

    # ---- inspection -----------------------------------------------------------

    def render_kernels(self, limit: Optional[int] = None) -> str:
        """Pseudo-CUDA of the generated kernels."""
        chunks = []
        for built in self.kernels[: limit or len(self.kernels)]:
            chunks.append(built.function.render())
        return "\n\n".join(chunks)

    def __repr__(self) -> str:
        return (
            f"<CompiledModule {self.name} by {self.compiler}: "
            f"{len(self.kernels)} kernels>"
        )
