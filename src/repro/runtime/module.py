"""Compiled modules: the artifact every compiler in this repo produces.

A :class:`CompiledModule` bundles the final TE program (functional
semantics), the built kernels (performance semantics) and the device model.
``run`` executes functionally with numpy; ``simulate`` produces the
performance counters the paper reports.

Modules restored from the persistent compile cache carry a *program loader*
instead of an eager program: performance queries never re-run the pipeline,
while the first functional ``run()`` transparently materialises the TE
program by replaying the deterministic front half of the compile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.gpu.device import GPUSpec
from repro.gpu.simulator import GPUSimulator, ModuleMetrics
from repro.graph.te_program import TEProgram
from repro.te.evaluator import Evaluator
from repro.te.tensor import Tensor
from repro.tir.build import BuiltKernel


@dataclass
class CompileStats:
    """Wall-clock breakdown of one compilation (paper Sec. 8.5).

    Beyond the per-phase split the paper reports, this records the compile
    observability the cache/parallel subsystem exposes: per-subprogram build
    times, schedule-cache hit rates, worker-pool usage and whether the whole
    module came from the artifact cache.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    schedule_trials: int = 0
    subprogram_seconds: Dict[str, float] = field(default_factory=dict)
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    parallel_workers: int = 1
    parallel_fallback: bool = False
    module_cache_hit: bool = False

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def schedule_cache_lookups(self) -> int:
        return self.schedule_cache_hits + self.schedule_cache_misses

    @property
    def schedule_cache_hit_rate(self) -> float:
        lookups = self.schedule_cache_lookups
        return self.schedule_cache_hits / lookups if lookups else 0.0

    def record(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def record_subprogram(self, name: str, seconds: float) -> None:
        """Per-subprogram wall time; overwrite (a retry replaces the first
        attempt's measurement rather than accumulating it)."""
        self.subprogram_seconds[name] = seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view, consumed by the ``compile-stats`` CLI command."""
        return {
            "total_seconds": self.total_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "subprogram_seconds": dict(self.subprogram_seconds),
            "schedule_trials": self.schedule_trials,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "schedule_cache_hit_rate": self.schedule_cache_hit_rate,
            "parallel_workers": self.parallel_workers,
            "parallel_fallback": self.parallel_fallback,
            "module_cache_hit": self.module_cache_hit,
        }


class PhaseTimer:
    """Context manager recording a phase duration into :class:`CompileStats`.

    With ``subprogram`` set, the duration is additionally recorded as that
    subprogram's build time.
    """

    def __init__(
        self, stats: CompileStats, phase: str, subprogram: Optional[str] = None
    ) -> None:
        self._stats = stats
        self._phase = phase
        self._subprogram = subprogram
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.record(self._phase, elapsed)
        if self._subprogram is not None:
            self._stats.record_subprogram(self._subprogram, elapsed)


class CompiledModule:
    """The executable+measurable result of compiling one model."""

    def __init__(
        self,
        name: str,
        compiler: str,
        program: Optional[TEProgram],
        kernels: Sequence[BuiltKernel],
        device: GPUSpec,
        stats: Optional[CompileStats] = None,
        program_loader: Optional[Callable[[], TEProgram]] = None,
        optimize_plans: bool = True,
        graph_executor: bool = False,
        tile_reductions: bool = True,
        certificates: Sequence = (),
    ) -> None:
        self.name = name
        self.compiler = compiler
        self.kernels: List[BuiltKernel] = list(kernels)
        self.device = device
        self.stats = stats if stats is not None else CompileStats()
        self._program = program
        self._program_loader = program_loader
        # Equivalence certificates from the compile's certification gates
        # (SouffleOptions.certify; empty when certification was off). On a
        # warm compile these are replayed from the certificate tier of the
        # compile cache rather than re-proved.
        self.certificates: List = list(certificates)
        # Whether sessions built from this module serve plan-optimized
        # execution plans (SouffleOptions.optimize_plans), whether they
        # replay through the task-graph scheduler instead of the wave
        # scheduler (SouffleOptions.graph_executor), and whether the plan
        # optimizer may tile reduction chains (SouffleOptions.
        # tile_reductions, see runtime.tiling).
        self.optimize_plans = optimize_plans
        self.graph_executor = graph_executor
        self.tile_reductions = tile_reductions
        self._session: Optional["InferenceSession"] = None

    # ---- program materialisation ---------------------------------------------

    @property
    def program(self) -> TEProgram:
        if self._program is None:
            if self._program_loader is None:
                raise ExecutionError(
                    f"module {self.name} has no TE program and no loader"
                )
            self._program = self._program_loader()
        return self._program

    @program.setter
    def program(self, value: TEProgram) -> None:
        self._program = value
        self._session = None  # plans are specialized to one program

    @property
    def has_program(self) -> bool:
        """Whether the TE program is already materialised."""
        return self._program is not None

    # ---- performance ---------------------------------------------------------

    def simulate(self) -> ModuleMetrics:
        """Run the analytic performance model over all kernels."""
        simulator = GPUSimulator(self.device)
        return simulator.run_module([k.spec for k in self.kernels])

    @property
    def kernel_calls(self) -> int:
        return len(self.kernels)

    # ---- functional execution ---------------------------------------------------

    @property
    def session(self) -> "InferenceSession":
        """The module's serving session (plan built lazily, then reused).

        Every :meth:`run` call replays this session's execution plan against
        its pooled arena — the per-request cost is a flat step loop, not an
        expression-tree walk.
        """
        if self._session is None:
            # Imported here: the session module is runtime-internal and this
            # keeps module import light for performance-only consumers.
            from repro.runtime.session import InferenceSession

            self._session = InferenceSession(
                self.program, name=self.name,
                optimize=self.optimize_plans,
                executor="graph" if self.graph_executor else "wave",
                tile=self.tile_reductions,
            )
        return self._session

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        """Execute the module functionally; returns outputs in program order.

        Uses the plan-based execution engine. :meth:`run_interpreted` is the
        slow interpretive path kept as the differential-testing oracle.
        """
        return self.session.run(feeds)

    def run_interpreted(
        self, feeds: Mapping[Tensor, np.ndarray]
    ) -> List[np.ndarray]:
        """Reference execution via a fresh tree-walking :class:`Evaluator`."""
        evaluator = Evaluator(feeds)
        return [evaluator.value_of(out) for out in self.program.outputs]

    def run_by_name(self, feeds: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Like :meth:`run` but feeds are keyed by placeholder name."""
        return self.session.run_by_name(feeds)

    def run_batch(
        self, feeds_list: Sequence[Mapping[Tensor, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Execute several requests through one batched plan replay.

        Outputs per request are bit-identical to :meth:`run` on the same
        feeds; see :class:`~repro.runtime.executor.BatchedExecutionPlan`.
        """
        return self.session.run_batch(feeds_list)

    def run_batch_by_name(
        self, feeds_list: Sequence[Mapping[str, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Like :meth:`run_batch` with name-keyed feeds."""
        return self.session.run_batch_by_name(feeds_list)

    def serve(
        self,
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        start: bool = True,
    ):
        """A :class:`~repro.runtime.batching.BatchingServer` over this
        module's session (started unless ``start=False``)."""
        return self.session.serve(
            max_batch_size=max_batch_size,
            max_queue_delay_ms=max_queue_delay_ms,
            start=start,
        )

    # ---- inspection -----------------------------------------------------------

    def render_kernels(self, limit: Optional[int] = None) -> str:
        """Pseudo-CUDA of the generated kernels."""
        chunks = []
        for built in self.kernels[: limit or len(self.kernels)]:
            chunks.append(built.function.render())
        return "\n\n".join(chunks)

    def __repr__(self) -> str:
        return (
            f"<CompiledModule {self.name} by {self.compiler}: "
            f"{len(self.kernels)} kernels>"
        )
