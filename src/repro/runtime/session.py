"""Serving sessions: one execution plan, pooled arenas, request metrics.

An :class:`InferenceSession` owns exactly one :class:`~repro.runtime.
executor.ExecutionPlan` for a TE program and replays it per request. Arenas
(the preallocated intermediate workspaces) are checked out of a small pool
under a lock, so the session is safe for repeated *and* concurrent calls:
serial traffic reuses a single arena for its whole lifetime, while N
overlapping requests grow the pool to at most N workspaces, once.

The session also feeds the profiler: per-request wall latency is always
recorded (two clock reads), and ``profile=True`` additionally accumulates
per-step wall time, surfaced as an :class:`~repro.runtime.profiler.
ExecutionProfile` via :meth:`InferenceSession.profile_report`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.graph.te_program import TEProgram
from repro.runtime.executor import Arena, ExecutionPlan
from repro.te.tensor import Tensor


class InferenceSession:
    """Compile-once, replay-many serving wrapper around one TE program."""

    def __init__(
        self,
        program: TEProgram,
        name: Optional[str] = None,
        profile: bool = False,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        self.name = name if name is not None else program.name
        self.plan = plan if plan is not None else ExecutionPlan(program)
        self.profile = profile
        self._lock = threading.Lock()
        self._free_arenas: List[Arena] = []
        self.arenas_allocated = 0
        self.request_count = 0
        self.request_seconds = 0.0
        self.last_latency_s = 0.0
        self._step_seconds = [0.0] * self.plan.num_steps
        self._step_calls = 0

    # ---- arena pool ------------------------------------------------------

    def _acquire_arena(self) -> Arena:
        with self._lock:
            if self._free_arenas:
                return self._free_arenas.pop()
            self.arenas_allocated += 1
        return self.plan.new_arena()

    def _release_arena(self, arena: Arena) -> None:
        with self._lock:
            self._free_arenas.append(arena)

    @property
    def workspace_bytes(self) -> int:
        """Bytes of one arena (total resident: ``* arenas_allocated``)."""
        return self.plan.workspace_bytes

    # ---- execution -------------------------------------------------------

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        """Execute one request; returns outputs in program order."""
        bound = self.plan.bind_feeds(feeds)
        arena = self._acquire_arena()
        local_steps = [0.0] * self.plan.num_steps if self.profile else None
        start = time.perf_counter()
        try:
            outputs = self.plan.execute(bound, arena, local_steps)
        finally:
            self._release_arena(arena)
        elapsed = time.perf_counter() - start

        with self._lock:
            self.request_count += 1
            self.request_seconds += elapsed
            self.last_latency_s = elapsed
            if local_steps is not None:
                self._step_calls += 1
                for i, seconds in enumerate(local_steps):
                    self._step_seconds[i] += seconds
        return outputs

    def run_by_name(self, feeds: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Like :meth:`run` but feeds are keyed by placeholder name."""
        by_name = {t.name: t for t in self.plan.program.inputs}
        resolved: Dict[Tensor, np.ndarray] = {}
        for name, value in feeds.items():
            tensor = by_name.get(name)
            if tensor is None:
                raise ExecutionError(
                    f"no input named {name!r}; available inputs: "
                    f"{sorted(by_name)}"
                )
            resolved[tensor] = value
        return self.run(resolved)

    # ---- metrics ---------------------------------------------------------

    @property
    def requests_per_second(self) -> float:
        """Mean sustained throughput over every request so far."""
        if self.request_seconds <= 0.0:
            return 0.0
        return self.request_count / self.request_seconds

    def profile_report(self):
        """Per-step/per-request timing as an ``ExecutionProfile``."""
        from repro.runtime.profiler import ExecutionProfile, StepTiming

        with self._lock:
            steps = [
                StepTiming(
                    index=step.index,
                    name=step.name,
                    kind=step.kind,
                    calls=self._step_calls,
                    total_seconds=self._step_seconds[step.index],
                )
                for step in self.plan.steps
            ]
            return ExecutionProfile(
                session_name=self.name,
                requests=self.request_count,
                total_seconds=self.request_seconds,
                workspace_bytes=self.workspace_bytes,
                arenas_allocated=self.arenas_allocated,
                steps=steps,
            )

    def __repr__(self) -> str:
        return (
            f"<InferenceSession {self.name}: {self.plan.num_steps} steps, "
            f"{self.request_count} requests served>"
        )
