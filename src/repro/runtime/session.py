"""Serving sessions: one execution plan, pooled arenas, request metrics.

An :class:`InferenceSession` owns exactly one :class:`~repro.runtime.
executor.ExecutionPlan` for a TE program and replays it per request. Arenas
(the preallocated intermediate workspaces) are checked out of a small pool
under a lock, so the session is safe for repeated *and* concurrent calls:
serial traffic reuses a single arena for its whole lifetime, while N
overlapping requests grow the pool to at most N workspaces. The pool is
bounded by ``max_pool`` — arenas released beyond the cap are dropped so a
traffic burst cannot pin peak-concurrency memory forever.

The session is split into two halves with distinct sharing stories:

* :class:`PlanState` — the immutable, shareable half: the program, the
  compiled :class:`ExecutionPlan`, lazily-built per-bucket
  :class:`BatchedExecutionPlan` replicas, and a bound weight table
  (server-owned feeds merged into every request). One ``PlanState`` can
  back many sessions — across threads in one process, and (rebuilt over
  shared-memory weight views) across the worker processes of a
  :class:`~repro.runtime.sharding.ShardedServer`.
* :class:`ArenaState` — the per-replica mutable half: arena pools, pool
  accounting (allocated / in-use / trimmed / high-water), latency ring and
  per-step timings, all guarded by a single lock so ``max_pool``
  enforcement is race-free under concurrent ``run``/``run_batch``.

The session is also the batched execution entry point: :meth:`run_batch`
routes a list of concurrent requests through per-bucket
:class:`~repro.runtime.executor.BatchedExecutionPlan` replays (power-of-two
``batch_buckets``, padded with duplicate feeds when a bucket is not full),
falling back to the unbatched plan for batch-1 traffic. Cross-request
dynamic batching — queueing, dispatch policy, futures — lives one layer up
in :class:`~repro.runtime.batching.BatchingServer`; :meth:`serve` builds
one over this session. Cross-process sharding lives in
:class:`~repro.runtime.sharding.ShardedServer`.

The session also feeds the profiler: per-request wall latency is always
recorded (two clock reads plus a bounded ring buffer for p50/p95/p99),
batch occupancy is tracked per replay, and ``profile=True`` additionally
accumulates per-step wall time, surfaced as an :class:`~repro.runtime.
profiler.ExecutionProfile` via :meth:`InferenceSession.profile_report`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError, PlanningError
from repro.graph.te_program import TEProgram
from repro.runtime.executor import Arena, BatchedExecutionPlan, ExecutionPlan
from repro.te.tensor import Tensor

# Per-bucket batched plans compiled on demand; bucket 1 is the unbatched
# plan itself (batch-1 traffic never pays batched-plan overhead).
DEFAULT_BATCH_BUCKETS = (2, 4, 8)

# Arenas kept per pool once traffic subsides (see max_pool).
DEFAULT_MAX_POOL = 8

# Per-request latencies kept for percentile reporting.
DEFAULT_LATENCY_WINDOW = 2048

# With collect_profiles on, accumulated step timings are flushed to the
# profile store after this many profiled replays (and on flush_profiles()),
# bounding both store write traffic and how much timing data one crash can
# lose.
PROFILE_FLUSH_REQUESTS = 64


def resolve_feeds_by_name(
    program: TEProgram, feeds: Mapping[str, np.ndarray]
) -> Dict[Tensor, np.ndarray]:
    """Map name-keyed feeds onto the program's placeholder tensors."""
    by_name = {t.name: t for t in program.inputs}
    resolved: Dict[Tensor, np.ndarray] = {}
    for name, value in feeds.items():
        tensor = by_name.get(name)
        if tensor is None:
            raise ExecutionError(
                f"no input named {name!r}; available inputs: "
                f"{sorted(by_name)}"
            )
        resolved[tensor] = value
    return resolved


class PlanState:
    """The immutable, shareable half of a session.

    Holds everything that is compiled once and read-only afterwards: the
    program, the unbatched :class:`ExecutionPlan`, the per-bucket batched
    plans (built lazily under a lock, then never mutated), and an optional
    bound weight table. Many sessions — threads or processes — can serve
    from one ``PlanState``; each brings its own :class:`ArenaState`.
    """

    def __init__(
        self,
        program: TEProgram,
        plan: Optional[ExecutionPlan] = None,
        batch_buckets: Sequence[int] = DEFAULT_BATCH_BUCKETS,
        optimize: bool = True,
        executor: str = "wave",
        tile: bool = True,
        cost_model: Optional[object] = None,
    ) -> None:
        self.program = program
        self.optimize = optimize
        self.tile = tile
        # Measured cost model steering the optimizer's plan decisions
        # (None, or an empty model, keeps static planning bit-for-bit).
        self.cost_model = cost_model
        self.plan = (
            plan if plan is not None
            else ExecutionPlan(program, optimize=optimize, executor=executor,
                               tile=tile, cost_model=cost_model)
        )
        self._program_hash: Optional[str] = None
        # An explicit plan wins: batched buckets follow its engine choice.
        self.executor = self.plan.executor_kind
        buckets = sorted(set(int(b) for b in batch_buckets))
        if not buckets or buckets[0] < 2:
            raise ExecutionError(
                f"batch_buckets must be sizes >= 2, got {batch_buckets!r} "
                "(batch-1 traffic uses the unbatched plan)"
            )
        self.batch_buckets: Tuple[int, ...] = tuple(buckets)
        self._lock = threading.Lock()
        self._batched_plans: Dict[int, BatchedExecutionPlan] = {}
        self.unbatchable_buckets: set = set()
        # Server-owned feeds (weights), merged under every request's feeds.
        # Bound once through the plan's converter — shared-memory float64
        # views pass through zero-copy — and used as stable identity keys
        # for the hoist cache.
        self.weight_feeds: Dict[Tensor, np.ndarray] = {}
        self.hoisted_by_name: Dict[str, np.ndarray] = {}

    @property
    def program_hash(self) -> str:
        """Name-free profile bucket identity of the program (cached)."""
        if self._program_hash is None:
            from repro.cache.keys import program_profile_key

            self._program_hash = program_profile_key(self.program)
        return self._program_hash

    # ---- weights ---------------------------------------------------------

    def bind_weights(
        self,
        weights_by_name: Mapping[str, np.ndarray],
        hoisted_by_name: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Install server-owned weight feeds and pre-warm the hoist cache.

        ``weights_by_name`` maps placeholder names to arrays; each is
        converted once through the plan's binder (zero-copy for contiguous
        float64, e.g. shared-memory views) and merged under every request.
        ``hoisted_by_name`` optionally supplies precomputed hoist-boundary
        values (a warm weight store) so the hoisted subgraph never runs in
        this process. Returns the hoist-boundary values by name — computing
        them now if they were not supplied — for persisting to a store.
        """
        resolved = resolve_feeds_by_name(self.program, weights_by_name)
        bound: Dict[Tensor, np.ndarray] = {
            t: self.plan._bind_one(t, v) for t, v in resolved.items()
        }
        with self._lock:
            self.weight_feeds = bound
        boundary = self.plan.seed_hoist_values(
            bound, values_by_name=hoisted_by_name
        )
        self.hoisted_by_name = dict(boundary)
        # Seed any batched plans that already exist; later builds are
        # seeded in batch_plan().
        with self._lock:
            built = list(self._batched_plans.values())
        for bp in built:
            bp.seed_hoist_values(bound, values_by_name=self.hoisted_by_name)
        return dict(boundary)

    def with_weights(
        self, feeds: Mapping[Tensor, np.ndarray]
    ) -> Mapping[Tensor, np.ndarray]:
        """Merge the weight table under one request's feeds (request wins)."""
        if not self.weight_feeds:
            return feeds
        merged: Dict[Tensor, np.ndarray] = dict(self.weight_feeds)
        merged.update(feeds)
        return merged

    @property
    def weight_bytes(self) -> int:
        """Total bytes of the bound weight table (one copy)."""
        return sum(v.nbytes for v in self.weight_feeds.values())

    # ---- batched plans ---------------------------------------------------

    def select_batch_bucket(self, n: int) -> int:
        """Smallest configured bucket >= n; the largest for oversize n
        (``run_batch`` splits oversize batches into bucket-sized chunks)."""
        if n < 1:
            raise ExecutionError(f"batch size must be >= 1, got {n}")
        for bucket in self.batch_buckets:
            if bucket >= n:
                return bucket
        return self.batch_buckets[-1]

    def batch_plan(self, bucket: int) -> BatchedExecutionPlan:
        """The batched plan for one bucket (compiled lazily, cached)."""
        if bucket not in self.batch_buckets:
            raise ExecutionError(
                f"{bucket} is not a configured batch bucket "
                f"{self.batch_buckets}"
            )
        with self._lock:
            plan = self._batched_plans.get(bucket)
        if plan is None:
            built = BatchedExecutionPlan(
                self.plan.program, bucket, optimize=self.optimize,
                executor=self.executor, tile=self.tile,
                cost_model=self.cost_model,
            )
            with self._lock:
                plan = self._batched_plans.setdefault(bucket, built)
            if plan is built and self.weight_feeds:
                plan.seed_hoist_values(
                    self.weight_feeds,
                    values_by_name=self.hoisted_by_name or None,
                )
        return plan

    def batch_plan_or_none(
        self, bucket: int
    ) -> Optional[BatchedExecutionPlan]:
        """Like :meth:`batch_plan` but a build failure disables the bucket.

        Batching is an optimisation: a program whose broadcast grids are
        too large for ``bucket`` lanes (or that indexes data-dependently)
        must degrade to smaller buckets or unbatched replay, not error.
        """
        with self._lock:
            if bucket in self.unbatchable_buckets:
                return None
        try:
            return self.batch_plan(bucket)
        except (ExecutionError, PlanningError):
            with self._lock:
                self.unbatchable_buckets.add(bucket)
            return None


class ArenaState:
    """The per-replica mutable half of a session.

    Owns the arena pools (unbatched + one per batched bucket) and every
    request-level counter. All mutation happens under one lock, which makes
    the ``max_pool`` bound race-free when ``run`` and ``run_batch`` overlap
    from many threads: an arena is counted in-use from the moment it leaves
    a pool until the release decision (keep vs. trim) is taken, and both
    transitions happen inside the lock.
    """

    def __init__(
        self,
        max_pool: int = DEFAULT_MAX_POOL,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        num_steps: int = 0,
    ) -> None:
        if max_pool < 1:
            raise ExecutionError(f"max_pool must be >= 1, got {max_pool}")
        self.max_pool = max_pool
        self.lock = threading.Lock()
        self._free_arenas: List[Arena] = []
        self._free_batched: Dict[int, List[Arena]] = {}
        self.arenas_allocated = 0
        self.arenas_trimmed = 0
        self.arenas_in_use = 0
        self.pool_high_water = 0
        self.request_count = 0
        self.request_seconds = 0.0
        self.last_latency_s = 0.0
        self.batches_executed = 0
        self.batched_requests = 0
        self.occupancy_sum = 0.0
        self.latencies: deque = deque(maxlen=latency_window)
        self.step_seconds = [0.0] * num_steps
        self.step_calls = 0
        # collect_profiles accumulators, kept per batch bucket (None =
        # unbatched) because each bucket's plan has its own step list.
        self.profile_seconds: Dict[Optional[int], List[float]] = {}
        self.profile_calls: Dict[Optional[int], int] = {}
        self.profile_pending = 0

    def _pool(self, bucket: Optional[int]) -> List[Arena]:
        if bucket is None:
            return self._free_arenas
        return self._free_batched.setdefault(bucket, [])

    def pooled(self) -> int:
        """Arenas currently idle in the pools (unbatched + every bucket)."""
        with self.lock:
            return len(self._free_arenas) + sum(
                len(pool) for pool in self._free_batched.values()
            )

    def note_high_water(self) -> None:
        """Update the high-water mark (lock held by caller)."""
        live = (
            self.arenas_in_use
            + len(self._free_arenas)
            + sum(len(p) for p in self._free_batched.values())
        )
        if live > self.pool_high_water:
            self.pool_high_water = live


class InferenceSession:
    """Compile-once, replay-many serving wrapper around one TE program."""

    def __init__(
        self,
        program: TEProgram,
        name: Optional[str] = None,
        profile: bool = False,
        plan: Optional[ExecutionPlan] = None,
        max_pool: int = DEFAULT_MAX_POOL,
        batch_buckets: Sequence[int] = DEFAULT_BATCH_BUCKETS,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        optimize: bool = True,
        executor: str = "wave",
        tile: bool = True,
        plan_state: Optional[PlanState] = None,
        collect_profiles: bool = False,
        profile_store: Optional[object] = None,
        cost_model: Optional[object] = None,
    ) -> None:
        self.name = name if name is not None else program.name
        # Serving defaults to optimized plans (the pass pipeline is proven
        # bit-identical at plan time); ``optimize=False`` serves the plain
        # lowering, and an explicit ``plan`` is used as-is either way.
        # ``executor`` picks the replay engine for the session's plan *and*
        # its per-bucket batched plans: "wave" (default), "serial", or
        # "graph" (the task-graph scheduler, see runtime.task_graph).
        # ``tile`` gates the optimizer's block-level tiling of reduction
        # chains (runtime.tiling) for the plan and its batched buckets.
        # ``collect_profiles`` measures per-step wall time on every request
        # and flushes it to ``profile_store`` (resolved through
        # resolve_profile_store: None honours $REPRO_CACHE_DIR) so later
        # compiles can plan against measured costs. ``cost_model`` is the
        # consuming side: a measured CostModel steering this session's plan.
        if plan_state is None:
            plan_state = PlanState(
                program, plan=plan, batch_buckets=batch_buckets,
                optimize=optimize, executor=executor, tile=tile,
                cost_model=cost_model,
            )
        self.plan_state = plan_state
        self.profile = profile
        self.collect_profiles = collect_profiles
        self._profile_store = None
        if collect_profiles:
            from repro.runtime.profile_store import resolve_profile_store

            self._profile_store = resolve_profile_store(profile_store)
        self.arena_state = ArenaState(
            max_pool=max_pool,
            latency_window=latency_window,
            num_steps=plan_state.plan.num_steps,
        )

    @classmethod
    def from_plan_state(
        cls,
        plan_state: PlanState,
        name: Optional[str] = None,
        profile: bool = False,
        max_pool: int = DEFAULT_MAX_POOL,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        collect_profiles: bool = False,
        profile_store: Optional[object] = None,
    ) -> "InferenceSession":
        """A fresh replica over a shared :class:`PlanState` — its own arena
        pools and metrics, the same compiled plans and weight table."""
        return cls(
            plan_state.program,
            name=name,
            profile=profile,
            max_pool=max_pool,
            latency_window=latency_window,
            plan_state=plan_state,
            collect_profiles=collect_profiles,
            profile_store=profile_store,
        )

    # ---- shared-state delegation (back-compat surface) -------------------

    @property
    def plan(self) -> ExecutionPlan:
        return self.plan_state.plan

    @property
    def optimize(self) -> bool:
        return self.plan_state.optimize

    @property
    def tile(self) -> bool:
        return self.plan_state.tile

    @property
    def executor(self) -> str:
        return self.plan_state.executor

    @property
    def batch_buckets(self) -> Tuple[int, ...]:
        return self.plan_state.batch_buckets

    @property
    def _batched_plans(self) -> Dict[int, BatchedExecutionPlan]:
        return self.plan_state._batched_plans

    @property
    def unbatchable_buckets(self) -> set:
        return self.plan_state.unbatchable_buckets

    @property
    def max_pool(self) -> int:
        return self.arena_state.max_pool

    @property
    def _free_arenas(self) -> List[Arena]:
        return self.arena_state._free_arenas

    @property
    def _lock(self) -> threading.Lock:
        return self.arena_state.lock

    @property
    def arenas_allocated(self) -> int:
        return self.arena_state.arenas_allocated

    @property
    def arenas_trimmed(self) -> int:
        return self.arena_state.arenas_trimmed

    @property
    def arenas_in_use(self) -> int:
        return self.arena_state.arenas_in_use

    @property
    def pool_high_water(self) -> int:
        return self.arena_state.pool_high_water

    @property
    def request_count(self) -> int:
        return self.arena_state.request_count

    @property
    def request_seconds(self) -> float:
        return self.arena_state.request_seconds

    @property
    def last_latency_s(self) -> float:
        return self.arena_state.last_latency_s

    @property
    def batches_executed(self) -> int:
        return self.arena_state.batches_executed

    @property
    def batched_requests(self) -> int:
        return self.arena_state.batched_requests

    # ---- arena pool ------------------------------------------------------

    def _acquire_arena(self, bucket: Optional[int] = None) -> Arena:
        """Check an arena out of the (per-bucket) pool, allocating on miss."""
        state = self.arena_state
        with state.lock:
            pool = state._pool(bucket)
            state.arenas_in_use += 1
            if pool:
                return pool.pop()
            state.arenas_allocated += 1
            plan = (
                self.plan if bucket is None
                else self.plan_state._batched_plans[bucket]
            )
        arena = plan.new_arena()
        with state.lock:
            state.note_high_water()
        return arena

    def _release_arena(self, arena: Arena, bucket: Optional[int] = None) -> None:
        """Return an arena to its pool, dropping it beyond ``max_pool``."""
        state = self.arena_state
        with state.lock:
            state.arenas_in_use -= 1
            pool = state._pool(bucket)
            if len(pool) < state.max_pool:
                pool.append(arena)
            else:
                state.arenas_trimmed += 1
            state.note_high_water()

    @property
    def arenas_pooled(self) -> int:
        """Arenas currently idle in the pools (unbatched + every bucket)."""
        return self.arena_state.pooled()

    @property
    def workspace_bytes(self) -> int:
        """Bytes of one unbatched arena (batched buckets scale with B)."""
        return self.plan.workspace_bytes

    # ---- batched plans ---------------------------------------------------

    def select_batch_bucket(self, n: int) -> int:
        return self.plan_state.select_batch_bucket(n)

    def batch_plan(self, bucket: int) -> BatchedExecutionPlan:
        """The batched plan for one bucket (compiled lazily, cached)."""
        return self.plan_state.batch_plan(bucket)

    def _batch_plan_or_none(
        self, bucket: int
    ) -> Optional[BatchedExecutionPlan]:
        # Routed through self.batch_plan (not PlanState directly) so a
        # session-level override sees the build attempt; the unbatchable
        # set itself is shared state on the PlanState.
        state = self.plan_state
        with state._lock:
            if bucket in state.unbatchable_buckets:
                return None
        try:
            return self.batch_plan(bucket)
        except (ExecutionError, PlanningError):
            with state._lock:
                state.unbatchable_buckets.add(bucket)
            return None

    # ---- execution -------------------------------------------------------

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        """Execute one request; returns outputs in program order."""
        feeds = self.plan_state.with_weights(feeds)
        bound = self.plan.bind_feeds(feeds)
        arena = self._acquire_arena()
        timing = self.profile or self.collect_profiles
        local_steps = [0.0] * self.plan.num_steps if timing else None
        start = time.perf_counter()
        try:
            outputs = self.plan.execute(bound, arena, local_steps)
        finally:
            self._release_arena(arena)
        elapsed = time.perf_counter() - start
        self._record(1, elapsed, local_steps)
        return outputs

    def run_by_name(self, feeds: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Like :meth:`run` but feeds are keyed by placeholder name."""
        return self.run(resolve_feeds_by_name(self.plan.program, feeds))

    def run_batch(
        self, feeds_list: Sequence[Mapping[Tensor, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Execute concurrent requests together; one output list each.

        Requests are chunked to the largest configured bucket, each chunk
        replayed through the bucket's batched plan (padded by replaying the
        chunk's last request in the spare lanes — safe because batch lanes
        are independent — with the padding outputs discarded). A chunk of
        one falls back to the unbatched plan. Outputs are bit-identical to
        running every request through :meth:`run`.
        """
        feeds_list = list(feeds_list)
        if not feeds_list:
            return []
        results: List[List[np.ndarray]] = []
        max_bucket = self.batch_buckets[-1]
        for i in range(0, len(feeds_list), max_bucket):
            results.extend(self._run_chunk(feeds_list[i:i + max_bucket]))
        return results

    def run_batch_by_name(
        self, feeds_list: Sequence[Mapping[str, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Like :meth:`run_batch` but feeds are keyed by placeholder name."""
        program = self.plan.program
        return self.run_batch(
            [resolve_feeds_by_name(program, feeds) for feeds in feeds_list]
        )

    def _run_chunk(
        self, chunk: List[Mapping[Tensor, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        n = len(chunk)
        if n == 1:
            return [self.run(chunk[0])]
        bucket = self.select_batch_bucket(n)
        plan = self._batch_plan_or_none(bucket)
        while plan is None:
            # Degrade: largest bucket below the failed one, else unbatched.
            smaller = [b for b in self.batch_buckets if b < bucket]
            if not smaller:
                return [self.run(feeds) for feeds in chunk]
            bucket = smaller[-1]
            plan = self._batch_plan_or_none(bucket)
        if n > bucket:
            # Happens when the selected bucket was unbatchable: re-chunk to
            # the bucket that did build.
            results: List[List[np.ndarray]] = []
            for i in range(0, n, bucket):
                results.extend(self._run_chunk(chunk[i:i + bucket]))
            return results
        chunk = [self.plan_state.with_weights(feeds) for feeds in chunk]
        padded = chunk + [chunk[-1]] * (bucket - n)
        bound = plan.bind_batch(padded)
        arena = self._acquire_arena(bucket)
        timing = self.profile or self.collect_profiles
        local_steps = [0.0] * plan.num_steps if timing else None
        start = time.perf_counter()
        try:
            outputs = plan.execute(bound, arena, local_steps)
        finally:
            self._release_arena(arena, bucket)
        elapsed = time.perf_counter() - start
        self._record(n, elapsed, local_steps, bucket=bucket)
        return [
            [np.array(out[lane]) for out in outputs] for lane in range(n)
        ]

    def _record(
        self,
        requests: int,
        elapsed: float,
        local_steps: Optional[List[float]],
        bucket: Optional[int] = None,
    ) -> None:
        state = self.arena_state
        flush = False
        with state.lock:
            state.request_count += requests
            state.request_seconds += elapsed
            state.last_latency_s = elapsed
            # Every request in a batch waited for the whole replay.
            state.latencies.extend([elapsed] * requests)
            if bucket is not None:
                state.batches_executed += 1
                state.batched_requests += requests
                state.occupancy_sum += requests / bucket
            if local_steps is not None and self.profile:
                state.step_calls += 1
                for i, seconds in enumerate(local_steps):
                    state.step_seconds[i] += seconds
            if local_steps is not None and self._profile_store is not None:
                acc = state.profile_seconds.setdefault(
                    bucket, [0.0] * len(local_steps)
                )
                for i, seconds in enumerate(local_steps):
                    acc[i] += seconds
                state.profile_calls[bucket] = (
                    state.profile_calls.get(bucket, 0) + 1
                )
                state.profile_pending += 1
                flush = state.profile_pending >= PROFILE_FLUSH_REQUESTS
        if flush:
            self.flush_profiles()

    # ---- profile collection ----------------------------------------------

    @property
    def profile_store(self):
        """The resolved store receiving this session's measurements."""
        return self._profile_store

    def flush_profiles(self) -> int:
        """Flush accumulated step timings to the profile store.

        Returns the number of samples recorded. Safe to call at any time
        (including with nothing accumulated); drained accumulators reset so
        every measurement is flushed exactly once.
        """
        store = self._profile_store
        if store is None:
            return 0
        state = self.arena_state
        with state.lock:
            drained = [
                (bucket, seconds, state.profile_calls.get(bucket, 0))
                for bucket, seconds in state.profile_seconds.items()
            ]
            state.profile_seconds = {}
            state.profile_calls = {}
            state.profile_pending = 0
        from repro.runtime.profile_store import samples_from_steps

        flushed = 0
        program_hash = self.plan_state.program_hash
        for bucket, seconds, calls in drained:
            if calls <= 0:
                continue
            lanes = 1 if bucket is None else bucket
            plan = (
                self.plan if bucket is None
                else self.plan_state._batched_plans.get(bucket)
            )
            if plan is None:
                continue
            samples = samples_from_steps(
                plan.steps, seconds, calls, lanes=lanes
            )
            if samples:
                store.record(program_hash, lanes, samples)
                flushed += len(samples)
        return flushed

    # ---- serving ---------------------------------------------------------

    def serve(
        self,
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        start: bool = True,
    ):
        """A :class:`~repro.runtime.batching.BatchingServer` over this
        session (started unless ``start=False``)."""
        from repro.runtime.batching import BatchingServer

        server = BatchingServer(
            self,
            max_batch_size=max_batch_size,
            max_queue_delay_ms=max_queue_delay_ms,
        )
        if start:
            server.start()
        return server

    # ---- metrics ---------------------------------------------------------

    @property
    def requests_per_second(self) -> float:
        """Mean sustained throughput over every request so far."""
        if self.request_seconds <= 0.0:
            return 0.0
        return self.request_count / self.request_seconds

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean fraction of batch lanes carrying real requests."""
        state = self.arena_state
        if state.batches_executed == 0:
            return 0.0
        return state.occupancy_sum / state.batches_executed

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 request latency (seconds) over the bounded window."""
        state = self.arena_state
        with state.lock:
            window = list(state.latencies)
        if not window:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        arr = np.asarray(window)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
        }

    def profile_report(self):
        """Per-step/per-request timing as an ``ExecutionProfile``."""
        from repro.runtime.profiler import (
            BatchStats,
            ExecutionProfile,
            SchedulerStats,
            StepTiming,
        )

        percentiles = self.latency_percentiles()
        graph_exec = self.plan.graph_executor
        pooled = self.arenas_pooled
        state = self.arena_state
        with state.lock:
            steps = [
                StepTiming(
                    index=step.index,
                    name=step.name,
                    kind=step.kind,
                    step_key=getattr(step, "step_key", ""),
                    calls=state.step_calls,
                    total_seconds=state.step_seconds[step.index],
                    queue_seconds=(
                        graph_exec.step_queue_seconds[step.index]
                        if graph_exec is not None else 0.0
                    ),
                )
                for step in self.plan.steps
            ]
            scheduler = None
            if graph_exec is not None:
                stats = self.plan.task_graph.stats
                scheduler = SchedulerStats(
                    tasks=stats.tasks,
                    data_edges=stats.data_edges,
                    conflict_edges=stats.conflict_edges,
                    critical_path=stats.critical_path,
                    max_ready_width=stats.max_ready_width,
                    requests=graph_exec.requests,
                    workers=graph_exec.workers_used,
                    occupancy=graph_exec.occupancy,
                )
            batching = None
            if state.batches_executed:
                batching = BatchStats(
                    batches=state.batches_executed,
                    batched_requests=state.batched_requests,
                    mean_occupancy=(
                        state.occupancy_sum / state.batches_executed
                    ),
                )
            optimization = self.plan.optimization
            return ExecutionProfile(
                session_name=self.name,
                requests=state.request_count,
                total_seconds=state.request_seconds,
                workspace_bytes=self.workspace_bytes,
                arenas_allocated=state.arenas_allocated,
                arenas_trimmed=state.arenas_trimmed,
                arenas_pooled=pooled,
                pool_high_water=state.pool_high_water,
                steps=steps,
                p50_us=percentiles["p50"] * 1e6,
                p95_us=percentiles["p95"] * 1e6,
                p99_us=percentiles["p99"] * 1e6,
                batching=batching,
                optimizer_summary=(
                    optimization.stats.summary()
                    if optimization is not None else None
                ),
                scheduler=scheduler,
            )

    def __repr__(self) -> str:
        return (
            f"<InferenceSession {self.name}: {self.plan.num_steps} steps, "
            f"{self.request_count} requests served>"
        )
