"""Plan-optimizer pass pipeline: rewrite a built execution plan's step list
and arena layout before its first replay.

The compiler-side global analysis (Sec. 5-6 of the paper) fuses TEs and
plans reuse *inside* kernels; this module is its runtime mirror over the
:class:`~repro.runtime.executor.ExecutionPlan` step DAG. Four passes, each
optional and each required to keep replay bit-identical to the unoptimized
plan:

1. **Weight-subgraph hoisting** (Sec. 5.1 temporal reuse) — steps whose
   transitive inputs are all session-bound constants (``role="weight"``
   placeholders) are evaluated once per weight-set at bind time and cached
   on the plan, so pre-packed weights survive across requests.
2. **Vertical step fusion** (Sec. 6.2, Eq. 2) — chains of one-relies-on-one
   ``map`` steps whose producer has a single consumer are composed into one
   closure; the intermediate is never materialised and leaves the arena.
3. **In-place elision** (Sec. 6.5 buffer reuse) — a fused or lone
   elementwise step whose input buffer dies at that step writes into its
   input's bytes, shrinking ``workspace_bytes``. Safe because ``map`` steps
   fully evaluate their value into temporaries before the final ``copyto``.
4. **Wave scheduling** (Sec. 6.1 horizontal packing) — steps are levelised
   into dependency waves; byte-conflicting same-level steps are split into
   sequential sub-waves, and big independent steps dispatch onto a shared
   :class:`~repro.core.parallel.WorkerPool` (numpy releases the GIL inside
   ufunc/einsum/BLAS loops), with a serial fallback.

On top of the mandated passes, einsum-shaped steps are *specialized* to
direct ``np.matmul(..., out=view)`` calls — but only when a plan-time
differential check proves the replacement bit-identical on the step's exact
operand shapes (including zero-stride batched-weight layouts); otherwise
the einsum closure is kept. This is where most of the measured single-
request speedup comes from: the models' hot steps are small GEMMs whose
``np.einsum`` dispatch overhead dwarfs the BLAS call.

The optimized layout is re-verified by the verifier's arena-hazard pass
(with an explicit allowlist for the deliberate in-place pairs) and the
rewritten plan raises :class:`~repro.errors.PlanningError` on any unsafe
layout, exactly like the unoptimized path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.liveness import LiveRange
from repro.core.parallel import WorkerPool
from repro.errors import PlanningError
from repro.graph.te_program import TENode, TEProgram
from repro.runtime.memory_planner import (
    BufferAssignment,
    MemoryPlan,
    _align,
    pack_intervals,
    plan_memory,
)
from repro.te.expr import Reduce, Var
from repro.te.patterns import match_matmul
from repro.te.tensor import Tensor
from repro.te.traversal import collect_reads, input_tensors
from repro.verify.view import ProgramView

# Parallel wave dispatch pays thread handoff (~tens of us per wave); only
# waves where every step moves at least this many elements are eligible,
# so small models stay serial. Tests monkeypatch this to force dispatch.
PARALLEL_MIN_WAVE_ELEMENTS = 1 << 16

# One process-wide persistent pool shared by every optimized plan: wave
# work is GIL-releasing numpy, so a single bounded thread set serves all
# concurrent sessions without per-request executor churn.
WAVE_POOL = WorkerPool(persistent=True)


def _identity_reads_only(consumer: TENode, producer: Tensor) -> bool:
    """Whether every read of ``producer`` in ``consumer`` is the identity.

    Mirrors the executor's identity-view fast path (``T[i, j, ...]`` over
    the consumer's own axes sweeping the full tensor). Fusion is restricted
    to such reads: the fused interior value is a lazy broadcast view, which
    an identity-reading ufunc consumes at contiguous speed, while a gather
    (fancy indexing) over a non-contiguous view is *slower* than gathering
    the materialised array the unfused step would have produced.
    """
    op = consumer.tensor.op
    axis_names = [ax.name for ax in op.axes]
    extents = tuple(ax.extent for ax in op.axes)
    for read in collect_reads(op.body):
        if read.tensor is not producer:
            continue
        names = [i.name for i in read.indices if isinstance(i, Var)]
        if (len(names) != len(read.indices)
                or names != axis_names
                or tuple(producer.shape) != extents):
            return False
    return True


def _identity_reads_with_reduce(consumer: TENode, producer: Tensor) -> bool:
    """Identity-reads check extended to ``reduce`` consumers.

    A reduce step's evaluation grid spans its spatial axes *followed by*
    its reduction axes (the executor compiles reads against exactly that
    axis list), so a read of ``producer`` is the identity view when its
    index list is that full sequence and the producer's shape matches the
    combined extents — e.g. layernorm's ``sum_j sq[i, j]`` or softmax's
    ``sum_j exp[i, j]``.
    """
    op = consumer.tensor.op
    body = op.body
    if not isinstance(body, Reduce):
        return _identity_reads_only(consumer, producer)
    axes = list(op.axes) + list(body.axes)
    axis_names = [ax.name for ax in axes]
    extents = tuple(ax.extent for ax in axes)
    for read in collect_reads(op.body):
        if read.tensor is not producer:
            continue
        names = [i.name for i in read.indices if isinstance(i, Var)]
        if (len(names) != len(read.indices)
                or names != axis_names
                or tuple(producer.shape) != extents):
            return False
    return True


def step_kind(tensor: Tensor) -> str:
    """Static mirror of ``ExecutionPlan._build_step`` dispatch.

    ``einsum`` for matmul-shaped contractions, ``const`` for fully
    data-independent bodies (no tensor reads anywhere), otherwise
    ``reduce``/``map`` by the presence of a top-level reduction.
    """
    if match_matmul(tensor) is not None:
        return "einsum"
    body = tensor.op.body
    if not input_tensors(body):
        return "const"
    return "reduce" if isinstance(body, Reduce) else "map"


@dataclass
class StepGroup:
    """One optimized step: a terminal node plus fused-in producers."""

    position: int               # index in optimized execution order
    members: List[TENode]       # original nodes, program order, terminal last
    terminal: TENode
    reads: List[Tensor]         # tensors read from outside the group

    @property
    def name(self) -> str:
        return "+".join(m.name for m in self.members)


class _StepNode:
    """Duck-typed view node over a :class:`StepGroup` for the verifier.

    The arena-hazard pass only touches ``index``/``tensor``/``name``/
    ``inputs``; a real :class:`~repro.graph.te_program.TENode` would
    recompute ``inputs`` from the TE body and miss the fusion rewiring.
    """

    __slots__ = ("index", "tensor", "name", "inputs")

    def __init__(self, index: int, tensor: Tensor, name: str,
                 inputs: List[Tensor]) -> None:
        self.index = index
        self.tensor = tensor
        self.name = name
        self.inputs = inputs

    def __repr__(self) -> str:
        return f"<StepNode#{self.index} {self.name}>"


@dataclass
class OptimizeStats:
    """What the pass pipeline did to one plan (``repro plan-stats``)."""

    steps_before: int = 0
    steps_after: int = 0
    hoisted_steps: int = 0
    fused_steps: int = 0             # producers folded into their consumer
    elided_buffers: int = 0
    elided_bytes: int = 0            # arena bytes merged away by elision
    specialized_contractions: int = 0
    einsum_steps: int = 0
    wave_count: int = 0
    parallel_waves: int = 0          # waves eligible for pool dispatch
    workspace_before: int = 0
    workspace_after: int = 0
    # Block-level tiling (runtime.tiling): reduction chains split into
    # cache-blocked sub-steps with per-worker scratch.
    tiled_chains: int = 0
    tiled_steps: int = 0             # step groups folded into tiled chains
    tiled_blocks: int = 0            # block sub-steps those chains became
    tile_block_rows: List[int] = field(default_factory=list)
    scratch_bytes: int = 0           # per-worker scratch buffer size
    # Measured-cost-model decisions (zero without profiles — the static
    # pipeline alone never sets these).
    tuned: bool = False              # a cost model with measurements drove us
    tuned_fusions: int = 0           # map->reduce inlines chosen by measurement
    duplicated_maps: int = 0         # multi-consumer maps recomputed per use
    demoted_waves: int = 0           # waves the measurements kept serial
    flattened_schedule: bool = False  # wave machinery dropped: serial replay

    @property
    def arena_bytes_saved(self) -> int:
        return max(0, self.workspace_before - self.workspace_after)

    def summary(self) -> str:
        """One line for profile reports."""
        tiled = ""
        if self.tiled_chains:
            tiled = (
                f", {self.tiled_chains} chains tiled into "
                f"{self.tiled_blocks} blocks"
            )
        tuned = ""
        if self.tuned:
            tuned = (
                f", tuned ({self.tuned_fusions} measured fusions, "
                f"{self.duplicated_maps} duplicated maps)"
            )
        return (
            f"plan optimizer: {self.steps_before}->{self.steps_after} steps "
            f"({self.hoisted_steps} hoisted, {self.fused_steps} fused), "
            f"{self.specialized_contractions}/{self.einsum_steps} matmul-"
            f"specialized, {self.elided_buffers} elided, "
            f"{self.wave_count} waves, "
            f"{self.arena_bytes_saved} arena bytes saved"
            f"{tiled}{tuned}"
        )

    def render(self) -> str:
        """Multi-line report for the ``plan-stats`` CLI."""
        blocks = (
            "x".join(str(b) for b in self.tile_block_rows)
            if self.tile_block_rows else "-"
        )
        lines = [
            f"steps:            {self.steps_before} -> {self.steps_after}",
            f"  hoisted (run once per weight-set): {self.hoisted_steps}",
            f"  fused into consumers:              {self.fused_steps}",
            f"contractions specialized to matmul:  "
            f"{self.specialized_contractions}/{self.einsum_steps}",
            f"in-place elisions: {self.elided_buffers} buffers "
            f"({self.elided_bytes} bytes merged)",
            f"tiled chains:      {self.tiled_chains} "
            f"({self.tiled_steps} steps -> {self.tiled_blocks} blocks, "
            f"block rows {blocks}, "
            f"{self.scratch_bytes} scratch bytes/worker)",
            f"waves:             {self.wave_count} "
            f"({self.parallel_waves} parallel-eligible)",
            f"arena workspace:   {self.workspace_before} -> "
            f"{self.workspace_after} bytes "
            f"({self.arena_bytes_saved} saved)",
        ]
        if self.tuned:
            flat = (
                ", wave machinery dropped (serial replay)"
                if self.flattened_schedule else ""
            )
            lines.append(
                f"measured tuning:   {self.tuned_fusions} map->reduce "
                f"fusions, {self.duplicated_maps} duplicated maps, "
                f"{self.demoted_waves} waves kept serial{flat}"
            )
        return "\n".join(lines)


@dataclass
class PlanOptimization:
    """The static result of the pass pipeline over one program.

    Everything here is computed without materialising any evaluation grid,
    so it also serves ``repro lint`` at paper scale; the runtime closures
    are built from it by :func:`optimize_plan`.
    """

    program: TEProgram
    hoisted_nodes: List[TENode]
    hoist_roots: List[Tensor]        # weight placeholders feeding the hoist
    hoist_boundary: List[Tensor]     # hoisted tensors read by live steps
    groups: List[StepGroup]          # optimized steps, execution order
    elided: Dict[int, Tensor]        # group position -> operand reused
    waves: Optional[List[List[int]]]  # group positions per sub-wave
    memory_plan: MemoryPlan
    inplace_pairs: Set[Tuple[int, int]]  # (writer tensor id, operand id)
    step_view: ProgramView
    stats: OptimizeStats = field(default_factory=OptimizeStats)
    tiled_chains: List = field(default_factory=list)  # tiling.TiledChain


# ---- static pass pipeline ---------------------------------------------------


def plan_optimization(
    program: TEProgram,
    sizer: Optional[Callable[[Tensor], int]] = None,
    batch_size: Optional[int] = None,
    hoist: bool = True,
    fuse: bool = True,
    elide: bool = True,
    waves: bool = True,
    tile: bool = True,
    tile_budget: Optional[int] = None,
    tile_block_rows: Optional[int] = None,
    cost_model=None,
) -> PlanOptimization:
    """Run the static passes over one TE program.

    ``sizer`` must match the executor that will consume the layout (the
    default is the executor's float64 sizing with ``batch_size`` lanes).
    The per-pass flags exist for targeted tests and ablation; production
    callers leave them on. ``tile`` enables block-level tiling of
    map→reduce→map chains (on by default, fires only when the footprint
    model judges a chain profitable against ``tile_budget`` — default
    :data:`repro.analysis.characterize.CACHE_BUDGET_BYTES`);
    ``tile_block_rows`` forces a block size on every eligible chain.

    ``cost_model`` (a :class:`repro.runtime.cost_model.CostModel` with
    measurements) unlocks the *measured* decisions: map→reduce fusion and
    multi-consumer map duplication where dispatch dominates, measured
    wave-dispatch gating, and measured tile block-row selection. With no
    model — or a model over an empty profile store — every decision below
    is taken by the static rules alone, bit-for-bit as before.
    """
    if sizer is None:
        from repro.runtime.executor import EXEC_ITEMSIZE

        lanes = 1 if batch_size is None else batch_size
        sizer = lambda t: lanes * t.num_elements * EXEC_ITEMSIZE  # noqa: E731

    nodes = program.nodes
    kinds = {n.index: step_kind(n.tensor) for n in nodes}
    stats = OptimizeStats(steps_before=len(nodes))
    stats.einsum_steps = sum(1 for k in kinds.values() if k == "einsum")
    stats.workspace_before = plan_memory(
        program, sizer=sizer, exclusive_writes=True
    ).workspace_bytes

    # ---- pass 1: weight-subgraph hoisting -------------------------------
    hoisted_ids: Set[int] = set()
    hoisted_nodes: List[TENode] = []
    if hoist:
        const_ids = {
            id(t) for t in program.inputs
            if getattr(t, "role", "input") == "weight"
        }
        for node in nodes:
            if program.is_output(node.tensor):
                continue
            if all(
                id(d) in const_ids or id(d) in hoisted_ids
                for d in node.inputs
            ):
                hoisted_ids.add(id(node.tensor))
                hoisted_nodes.append(node)
    read_by_hoisted = {
        id(d) for n in hoisted_nodes for d in n.inputs
    }
    hoist_roots = [t for t in program.inputs if id(t) in read_by_hoisted]
    hoist_boundary = [
        n.tensor for n in hoisted_nodes
        if any(
            id(c.tensor) not in hoisted_ids
            for c in program.consumers(n.tensor)
        )
    ]
    stats.hoisted_steps = len(hoisted_nodes)

    # ---- pass 2: vertical step fusion -----------------------------------
    surviving = [n for n in nodes if id(n.tensor) not in hoisted_ids]
    inline_into: Dict[int, int] = {}  # node index -> consumer node index
    if fuse:
        for node in surviving:
            if kinds[node.index] != "map":
                continue
            if program.is_output(node.tensor):
                continue
            consumers = program.consumers(node.tensor)
            if len(consumers) != 1:
                continue
            consumer = consumers[0]
            if id(consumer.tensor) in hoisted_ids:
                continue
            if kinds[consumer.index] != "map":
                continue
            if not _identity_reads_only(consumer, node.tensor):
                continue
            inline_into[node.index] = consumer.index
    stats.fused_steps = len(inline_into)

    # ---- measured fusion decisions (cost model required) ----------------
    # Two inlining moves the static pass never takes, because their payoff
    # depends on the machine: (a) a single-consumer map feeding a *reduce*
    # — strictly saves one dispatch and one materialisation (the reduce's
    # grid broadcast consumes the composed value), profitable whenever the
    # producer measures dispatch-bound; (b) a *multi-consumer* map inlined
    # into every consumer — recomputes the map per consumer, profitable
    # only when measured dispatch + traffic outweigh the recompute. Both
    # stay behind ``has_measurements()`` so an empty store changes nothing.
    duplicated: Dict[int, List[TENode]] = {}
    node_by_index = {n.index: n for n in nodes}
    if fuse and cost_model is not None and cost_model.has_measurements():
        from repro.cache.keys import step_content_key

        stats.tuned = True
        for node in surviving:
            if kinds[node.index] != "map" or node.index in inline_into:
                continue
            if program.is_output(node.tensor):
                continue
            consumers = program.consumers(node.tensor)
            if len(consumers) != 1:
                continue
            consumer = consumers[0]
            if id(consumer.tensor) in hoisted_ids:
                continue
            if kinds[consumer.index] != "reduce":
                continue
            if not _identity_reads_with_reduce(consumer, node.tensor):
                continue
            if not cost_model.fusion_profitable(
                step_content_key([node]), step_content_key([consumer])
            ):
                continue
            inline_into[node.index] = consumer.index
            stats.tuned_fusions += 1

        inline_targets = set(inline_into.values())
        for node in surviving:
            if kinds[node.index] != "map" or node.index in inline_into:
                continue
            if node.index in inline_targets:
                continue  # already a fusion terminal; keep groups simple
            if program.is_output(node.tensor):
                continue
            consumers = program.consumers(node.tensor)
            if len(consumers) < 2:
                continue
            if any(
                id(c.tensor) in hoisted_ids
                or kinds[c.index] not in ("map", "reduce")
                or not _identity_reads_with_reduce(c, node.tensor)
                for c in consumers
            ):
                continue
            out_bytes = node.tensor.num_elements * 8  # EXEC_ITEMSIZE
            if not cost_model.duplication_profitable(
                step_content_key([node]), out_bytes, len(consumers)
            ):
                continue
            duplicated[node.index] = consumers
            stats.duplicated_maps += 1
        # No chained duplication: a duplicated map's consumers must be
        # ordinary group members, else its insertion targets are ambiguous.
        for idx in [
            i for i, cs in duplicated.items()
            if any(c.index in duplicated for c in cs)
        ]:
            del duplicated[idx]
            stats.duplicated_maps -= 1

    root_memo: Dict[int, int] = {}

    def find_terminal(index: int) -> int:
        seen = []
        while index in inline_into and index not in root_memo:
            seen.append(index)
            index = inline_into[index]
        root = root_memo.get(index, index)
        for s in seen:
            root_memo[s] = root
        return root

    members_of: Dict[int, List[TENode]] = {}
    for node in surviving:
        if node.index in duplicated:
            continue  # recomputed inside every consumer's group instead
        members_of.setdefault(find_terminal(node.index), []).append(node)
    for idx, consumers in duplicated.items():
        node = node_by_index[idx]
        for terminal in sorted({find_terminal(c.index) for c in consumers}):
            members_of[terminal].append(node)
    if duplicated:
        # Re-sort members into program order (== dependency order, and the
        # terminal — the highest index — stays last): the fused runtime
        # executes interiors in list order.
        for members in members_of.values():
            members.sort(key=lambda n: n.index)

    groups: List[StepGroup] = []
    for terminal_index in sorted(members_of):
        members = members_of[terminal_index]  # program order by insertion
        member_ids = {id(m.tensor) for m in members}
        reads: List[Tensor] = []
        seen_reads: Set[int] = set()
        for member in members:
            for t in member.inputs:
                if id(t) in member_ids or id(t) in seen_reads:
                    continue
                seen_reads.add(id(t))
                reads.append(t)
        groups.append(StepGroup(
            position=len(groups),
            members=members,
            terminal=node_by_index[terminal_index],
            reads=reads,
        ))

    # ---- tiling pass: cache-block map→reduce→map chains -----------------
    # Runs between group formation and levelisation: a chain's internal
    # groups disappear (their tensors live in per-worker scratch) and its
    # terminal group becomes one TiledStepGroup per block, all writing
    # disjoint row slices of the chain terminal's arena buffer.
    tiled_chains: List = []
    if tile and len(groups) > 1:
        from repro.analysis.characterize import CACHE_BUDGET_BYTES
        from repro.runtime.tiling import apply_tiling, detect_chains

        budget = tile_budget if tile_budget is not None else CACHE_BUDGET_BYTES
        lanes = 1 if batch_size is None else batch_size
        tiled_chains = detect_chains(
            program, groups, kinds, lanes, budget, tile_block_rows,
            cost_model=cost_model,
        )
        if tiled_chains:
            groups = apply_tiling(groups, tiled_chains)
    stats.steps_after = len(groups)
    stats.tiled_chains = len(tiled_chains)
    stats.tiled_steps = sum(len(c.groups) for c in tiled_chains)
    stats.tiled_blocks = sum(c.num_blocks for c in tiled_chains)
    stats.tile_block_rows = [c.block_rows for c in tiled_chains]
    stats.scratch_bytes = max(
        (c.scratch_bytes for c in tiled_chains), default=0
    )

    # ---- pass 4 (ordering half): levelise into dependency waves ---------
    # Waves fix the *execution order* the repacker must model, so the
    # levelisation runs before elision/packing; the byte-conflict sub-wave
    # split below needs the final layout and runs after.
    # A tiled chain's blocks all "produce" the chain terminal tensor, so
    # the producer map is multi-valued: a reader depends on every block.
    producer_groups: Dict[int, List[int]] = {}
    for g in groups:
        producer_groups.setdefault(id(g.terminal.tensor), []).append(
            g.position
        )
    deps: List[List[int]] = []
    for g in groups:
        deps.append(sorted({
            pos
            for t in g.reads
            for pos in producer_groups.get(id(t), ())
        }))
    if waves:
        level: List[int] = [0] * len(groups)
        for g in groups:
            level[g.position] = 1 + max(
                (level[d] for d in deps[g.position]), default=-1
            )
        by_level: Dict[int, List[int]] = {}
        for g in groups:
            by_level.setdefault(level[g.position], []).append(g.position)
        execution_order = [
            pos for lvl in sorted(by_level) for pos in by_level[lvl]
        ]
        level_waves: List[List[int]] = [
            by_level[lvl] for lvl in sorted(by_level)
        ]
    else:
        execution_order = list(range(len(groups)))
        level_waves = []

    # Renumber positions to execution order: packing liveness, the step
    # view and the executor's step list all use these positions, so the
    # replayed order and the modelled order can never drift apart.
    reordered: List[StepGroup] = []
    for new_pos, old_pos in enumerate(execution_order):
        group = groups[old_pos]
        group.position = new_pos
        reordered.append(group)
    groups = reordered
    if waves:
        # Positions were renumbered to execution order, under which each
        # wave occupies a contiguous, increasing run.
        old_to_new = {old: new for new, old in enumerate(execution_order)}
        level_waves = [
            sorted(old_to_new[old] for old in wave) for wave in level_waves
        ]

    # ---- pass 3: in-place elision ---------------------------------------
    # With map duplication one tensor can be read by several groups even
    # though all its program-level consumers sit inside each of them; track
    # reader groups so elision never overwrites bytes a sibling still needs
    # (without duplication this set is always {g.position} for candidates).
    reader_positions: Dict[int, Set[int]] = {}
    for g in groups:
        for t in g.reads:
            reader_positions.setdefault(id(t), set()).add(g.position)
    elided: Dict[int, Tensor] = {}
    if elide:
        for g in groups:
            if getattr(g, "chain", None) is not None:
                continue  # tiled blocks write row slices, never whole bytes
            if kinds[g.terminal.index] != "map":
                continue
            out = g.terminal.tensor
            if program.is_output(out):
                continue
            out_bytes = _align(sizer(out))
            member_nodes = set(g.members)
            for t in g.reads:
                if program.producer(t) is None:
                    continue
                if id(t) in hoisted_ids:
                    continue  # cached across requests; never overwrite
                if program.is_output(t):
                    continue
                if any(c not in member_nodes
                       for c in program.consumers(t)):
                    continue  # still read by another step
                if reader_positions.get(id(t), set()) - {g.position}:
                    continue  # a duplicated consumer reads it elsewhere
                if _align(sizer(t)) != out_bytes:
                    continue
                elided[g.position] = t
                break

    # ---- repack the arena over optimized positions ----------------------
    # A tiled chain's blocks share one terminal tensor: pack it once, with
    # its definition at the *first* block (the earliest write) and liveness
    # through the last reader as usual.
    packable: List[StepGroup] = []
    packed_ids: Set[int] = set()
    for g in groups:
        t = g.terminal.tensor
        if program.is_output(t) or id(t) in packed_ids:
            continue
        packed_ids.add(id(t))
        packable.append(g)
    def_pos: Dict[int, int] = {}
    for g in groups:
        def_pos.setdefault(id(g.terminal.tensor), g.position)
    last_pos: Dict[int, int] = {}
    for g in groups:
        for t in g.reads:
            key = id(t)
            last_pos[key] = max(last_pos.get(key, g.position), g.position)
    lives: Dict[int, LiveRange] = {}
    for g in packable:
        t = g.terminal.tensor
        d = def_pos[id(t)]
        lives[id(t)] = LiveRange(t, d, max(last_pos.get(id(t), d), d))

    def pack(merge: Dict[int, Tensor]) -> Tuple[Dict[int, int], int]:
        """Pack, with elision pairs sharing one offset; offsets by id."""
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        for pos, operand in merge.items():
            a = find(id(groups[pos].terminal.tensor))
            b = find(id(operand))
            if a != b:
                parent[a] = b
        clusters: Dict[int, List[Tensor]] = {}
        for g in packable:
            t = g.terminal.tensor
            clusters.setdefault(find(id(t)), []).append(t)
        keys = list(clusters)
        items: List[Tuple[int, LiveRange]] = []
        for key in keys:
            tensors = clusters[key]
            nbytes = max(_align(sizer(t)) for t in tensors)
            lo = min(lives[id(t)].def_index for t in tensors)
            hi = max(lives[id(t)].last_use for t in tensors)
            items.append((nbytes, LiveRange(tensors[0], lo, hi)))
        offsets, workspace = pack_intervals(items, exclusive_writes=True)
        by_id: Dict[int, int] = {}
        for key, offset in zip(keys, offsets):
            for t in clusters[key]:
                by_id[id(t)] = offset
        return by_id, workspace

    offsets_plain, workspace_plain = pack({})
    if elided:
        offsets_merged, workspace_merged = pack(elided)
        if workspace_merged < workspace_plain:
            offsets, workspace = offsets_merged, workspace_merged
        else:
            # Elision that fails to shrink the arena is dropped, making
            # "workspace strictly decreases when any elision fires" an
            # invariant rather than a hope.
            elided = {}
            offsets, workspace = offsets_plain, workspace_plain
    else:
        offsets, workspace = offsets_plain, workspace_plain
    if elided:
        assert workspace < workspace_plain, (
            "elision fired without strictly shrinking the workspace"
        )

    memory_plan = MemoryPlan(exclusive_writes=False)
    for g in packable:
        t = g.terminal.tensor
        memory_plan.assignments[t] = BufferAssignment(
            t, offsets[id(t)], _align(sizer(t)), lives[id(t)]
        )
    memory_plan.workspace_bytes = workspace
    memory_plan.unshared_bytes = sum(
        _align(sizer(g.terminal.tensor)) for g in packable
    )
    # Scratch-block layout for the verifier (check_arena validates the
    # per-chain blocks never alias) and the plan-stats report.
    memory_plan.scratch_bytes = stats.scratch_bytes
    memory_plan.scratch_chains = {
        c.index: [
            (m.name,) + c.scratch_offsets[id(m.tensor)]
            for m in c.member_nodes
            if id(m.tensor) in c.scratch_offsets
        ]
        for c in tiled_chains
    }
    stats.elided_buffers = len(elided)
    stats.elided_bytes = sum(_align(sizer(t)) for t in elided.values())
    stats.workspace_after = workspace

    # ---- pass 4 (conflict half): split waves on byte overlap ------------
    byte_range = {
        id(t): (a.offset, a.offset + a.nbytes)
        for t, a in memory_plan.assignments.items()
    }

    def ranges_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    def conflicts(p: StepGroup, q: StepGroup) -> bool:
        p_chain = getattr(p, "chain", None)
        if p_chain is not None and p_chain is getattr(q, "chain", None):
            # Sibling blocks of one chain write disjoint row slices of the
            # same buffer and read disjoint slices of the same externals:
            # safe to run concurrently within a wave by construction.
            return False
        wp = byte_range.get(id(p.terminal.tensor))
        wq = byte_range.get(id(q.terminal.tensor))
        for write, other in ((wp, q), (wq, p)):
            if write is None:
                continue
            for t in other.reads:
                r = byte_range.get(id(t))
                if r is not None and ranges_overlap(write, r):
                    return True
        return wp is not None and wq is not None and ranges_overlap(wp, wq)

    final_waves: Optional[List[List[int]]] = None
    if waves:
        final_waves = []
        for wave in level_waves:
            current = [wave[0]]
            for pos in wave[1:]:
                if any(conflicts(groups[pos], groups[prev])
                       for prev in current):
                    # A new sub-wave preserves position order between
                    # byte-conflicting steps (positions only ever grow
                    # within a wave), so packing stays sound.
                    final_waves.append(current)
                    current = [pos]
                else:
                    current.append(pos)
            final_waves.append(current)
    stats.wave_count = (
        len(final_waves) if final_waves is not None else len(groups)
    )

    # ---- verifier view ---------------------------------------------------
    view_nodes = [
        _StepNode(g.position, g.terminal.tensor, g.name, list(g.reads))
        for g in groups
    ]
    step_view = ProgramView(
        name=f"{program.name}+opt",
        inputs=list(program.inputs) + list(hoist_boundary),
        nodes=view_nodes,
        outputs=list(program.outputs),
    )
    inplace_pairs = {
        (id(groups[pos].terminal.tensor), id(t))
        for pos, t in elided.items()
    }

    return PlanOptimization(
        program=program,
        hoisted_nodes=hoisted_nodes,
        hoist_roots=hoist_roots,
        hoist_boundary=hoist_boundary,
        groups=groups,
        elided=elided,
        waves=final_waves,
        memory_plan=memory_plan,
        inplace_pairs=inplace_pairs,
        step_view=step_view,
        stats=stats,
        tiled_chains=tiled_chains,
    )


# ---- runtime application ----------------------------------------------------


class _OverlayValues(dict):
    """Per-call value namespace layered over the shared values dict.

    Fused groups that recompute a *duplicated* interior write its value
    here instead of into the shared dict, so sibling groups dispatched
    concurrently in one wave never publish overlapping keys; reads of
    everything else fall through to the underlying request values.
    """

    __slots__ = ("_base",)

    def __init__(self, base) -> None:
        super().__init__()
        self._base = base

    def __missing__(self, key):
        return self._base[key]


def _make_fused_run(
    interiors: Tuple[Tuple[int, Callable, Tuple[int, ...]], ...],
    terminal_run: Callable,
    materialize: bool = False,
    overlay: bool = False,
) -> Callable:
    """Compose interior value closures with the terminal's arena write.

    Interior values are broadcast *views* of the producer's compiled value
    function — never copied into the arena. A ``map`` consumer (elementwise
    ufuncs, gathers, selects) reads broadcast views bit-identically to
    contiguous arrays. A ``reduce`` terminal accumulates over its grid,
    where numpy's pairwise blocking *can* depend on strides — so
    ``materialize`` forces each interior contiguous first (a no-op copy
    unless the producer's value really broadcast), reproducing exactly the
    bytes the unfused step would have put in the arena.
    """

    def run_fused(
        v, interiors=interiors, terminal_run=terminal_run,
        materialize=materialize, overlay=overlay,
    ):
        ns = _OverlayValues(v) if overlay else v
        for key, fn, shape in interiors:
            value = np.broadcast_to(fn(ns), shape)
            if materialize:
                value = np.ascontiguousarray(value)
            ns[key] = value
        terminal_run(ns)

    return run_fused


def _specialize_contraction(plan, tensor: Tensor, step) -> Optional[Callable]:
    """A ``np.matmul(..., out=view)`` replacement for one einsum step.

    Only natural GEMM shapes qualify (single contracted letter, disjoint
    free letters, output = lhs-free then rhs-free); the candidate is then
    differentially checked against the original einsum closure on random
    operands at the step's exact shapes — contiguous and, for batched
    plans, zero-stride broadcast variants (the weight-feed layout). Any bit
    mismatch keeps the einsum closure, so adoption can only preserve
    results.
    """
    pattern = match_matmul(tensor)
    if pattern is None:
        return None
    ls, rs, os = pattern.lhs_spec, pattern.rhs_spec, pattern.out_spec
    if any(len(set(s)) != len(s) for s in (ls, rs, os)):
        return None  # diagonal reads: not a matmul shape
    contracted = [c for c in ls if c in rs and c not in os]
    if len(contracted) != 1:
        return None
    k = contracted[0]
    # Letters shared by both operands *and* the output are stacked batch
    # dims (np.matmul broadcasts leading axes); output-order prefix only.
    batch = [c for c in os if c in ls and c in rs]
    free_l = [c for c in ls if c != k and c not in batch]
    free_r = [c for c in rs if c != k and c not in batch]
    if set(free_l) & set(free_r):
        return None
    if os != "".join(batch + free_l + free_r):
        return None
    if set(ls) != set(batch) | set(free_l) | {k}:
        return None  # a letter summed outside the contraction
    if set(rs) != set(batch) | set(free_r) | {k}:
        return None
    plan_batched = plan.batch_size is not None
    if batch or plan_batched:
        # Leading batch axes must broadcast 1:1, so the cores are 2-D.
        if len(free_l) > 1 or len(free_r) > 1:
            return None
    elif len(free_r) > 1:
        return None  # multi-dim lhs is fine against a 2-D rhs, not this
    lperm = tuple(ls.index(c) for c in batch + free_l + [k])
    rperm = tuple(rs.index(c) for c in batch + [k] + free_r)
    if plan_batched:
        lperm = (0,) + tuple(1 + i for i in lperm)
        rperm = (0,) + tuple(1 + i for i in rperm)
    identity_l = lperm == tuple(range(len(lperm)))
    identity_r = rperm == tuple(range(len(rperm)))
    # Empty free sides (e.g. row-wise dot products "ij,ij->i") pad a unit
    # core dim; the output view is then reshaped (contiguous, no copy) to
    # the matmul result shape.
    pad_l = not free_l
    pad_r = not free_r

    def extent(spec: str, shape, c: str) -> int:
        return shape[spec.index(c)]

    lhs_shape = tuple(pattern.lhs.shape)
    rhs_shape = tuple(pattern.rhs.shape)
    mm_shape = (
        tuple(extent(ls, lhs_shape, c) for c in batch)
        + ((1,) if pad_l else
           tuple(extent(ls, lhs_shape, c) for c in free_l))
        + ((1,) if pad_r else
           tuple(extent(rs, rhs_shape, c) for c in free_r))
    )
    mm_shape = plan._batched_shape(mm_shape)
    reshape_out = mm_shape if (pad_l or pad_r) else None
    lk, rk, key = id(pattern.lhs), id(pattern.rhs), id(tensor)

    def run_matmul(
        v, lk=lk, rk=rk, key=key, lperm=lperm, rperm=rperm,
        il=identity_l, ir=identity_r, pl=pad_l, pr=pad_r,
        reshape_out=reshape_out,
    ):
        a = v[lk]
        b = v[rk]
        if not il:
            a = a.transpose(lperm)
        if not ir:
            b = b.transpose(rperm)
        if pl:
            a = a[..., None, :]
        if pr:
            b = b[..., None]
        out = v[key]
        if reshape_out is not None:
            out = out.reshape(reshape_out)
        np.matmul(a, b, out=out)

    from repro.runtime.executor import EXEC_DTYPE

    lhs_full = plan._batched_shape(lhs_shape)
    rhs_full = plan._batched_shape(rhs_shape)
    out_shape = plan._batched_shape(tuple(tensor.shape))
    rng = np.random.default_rng(0x50FF1E)
    lhs_c = np.ascontiguousarray(
        rng.standard_normal(lhs_full), dtype=EXEC_DTYPE
    )
    rhs_c = np.ascontiguousarray(
        rng.standard_normal(rhs_full), dtype=EXEC_DTYPE
    )
    variants = [(lhs_c, rhs_c)]
    if plan_batched:
        # Weights bound once per batch arrive as zero-stride broadcast
        # views; the check must cover those stride patterns too.
        lhs_b = np.broadcast_to(lhs_c[0], lhs_full)
        rhs_b = np.broadcast_to(rhs_c[0], rhs_full)
        variants += [(lhs_b, rhs_c), (lhs_c, rhs_b), (lhs_b, rhs_b)]
    for a, b in variants:
        want = np.empty(out_shape, dtype=EXEC_DTYPE)
        got = np.empty(out_shape, dtype=EXEC_DTYPE)
        step.run({lk: a, rk: b, key: want})
        run_matmul({lk: a, rk: b, key: got})
        if want.tobytes() != got.tobytes():
            return None
    return run_matmul


def optimize_plan(plan, opt: Optional[PlanOptimization] = None):
    """Apply the pass pipeline to a built :class:`ExecutionPlan` in place.

    Rewrites ``plan.steps`` and ``plan.memory_plan``, installs the hoist
    cache and wave schedule, and re-validates the rewritten layout through
    the verifier's arena-hazard pass (in-place pairs allowlisted). Raises
    :class:`~repro.errors.PlanningError` on an unsafe optimized layout.
    """
    from repro.analysis.characterize import step_cost_features
    from repro.cache.keys import step_content_key
    from repro.runtime.executor import PlanStep
    from repro.verify import Severity, verify_plan

    cost_model = getattr(plan, "cost_model", None)
    if cost_model is not None and not cost_model.has_measurements():
        cost_model = None  # empty store: static behaviour, bit-for-bit
    if opt is None:
        opt = plan_optimization(
            plan.program, sizer=plan._sizer, batch_size=plan.batch_size,
            tile=getattr(plan, "tile", True),
            tile_budget=getattr(plan, "tile_budget", None),
            tile_block_rows=getattr(plan, "tile_block_rows", None),
            cost_model=cost_model,
        )

    base_steps = plan.steps  # indexed by original node index

    hoist_steps = [
        (base_steps[n.index], plan._batched_shape(tuple(n.tensor.shape)))
        for n in opt.hoisted_nodes
    ]

    # Tiled chains compile once per chain (shared across its blocks): the
    # block plans rewrite every member at block extent and borrow scratch
    # from one pool sized for the plan's largest chain.
    scratch_pool = None
    chain_runtimes: Dict[int, object] = {}
    if opt.tiled_chains:
        from repro.runtime.tiling import ChainRuntime, ScratchPool

        scratch_pool = ScratchPool(
            max(c.scratch_bytes for c in opt.tiled_chains)
        )
        for c in opt.tiled_chains:
            chain_runtimes[c.index] = ChainRuntime(
                c, plan.batch_size, scratch_pool
            )
    plan._scratch_pool = scratch_pool

    # Interiors recomputed by more than one group (measured duplication)
    # must keep their values in a per-call overlay, not the shared dict.
    interior_counts: Dict[int, int] = {}
    for g in opt.groups:
        if getattr(g, "chain", None) is not None:
            continue
        for m in g.members[:-1]:
            key = id(m.tensor)
            interior_counts[key] = interior_counts.get(key, 0) + 1

    new_steps: List[PlanStep] = []
    for g in opt.groups:
        chain = getattr(g, "chain", None)
        if chain is not None:
            runtime = chain_runtimes[chain.index]
            new_steps.append(PlanStep(
                g.position, g.name, "tiled", id(g.terminal.tensor),
                runtime.block_run(g.block_index),
                step_key=step_content_key(chain.member_nodes),
                cost_features=step_cost_features(chain.member_nodes),
                block_rows=chain.block_rows,
            ))
            continue
        terminal_step = base_steps[g.terminal.index]
        if len(g.members) == 1:
            step = PlanStep(
                g.position, terminal_step.name, terminal_step.kind,
                terminal_step.key, terminal_step.run,
                value_fn=terminal_step.value_fn,
                step_key=terminal_step.step_key,
                cost_features=terminal_step.cost_features,
            )
        else:
            interiors = tuple(
                (
                    base_steps[m.index].key,
                    base_steps[m.index].value_fn,
                    plan._batched_shape(tuple(m.tensor.shape)),
                )
                for m in g.members[:-1]
            )
            if any(fn is None for _, fn, _ in interiors):
                raise PlanningError(
                    f"fused group {g.name} has a member without a value "
                    "closure (only map steps are fuseable)"
                )
            step = PlanStep(
                g.position, g.name, "fused", terminal_step.key,
                _make_fused_run(
                    interiors, terminal_step.run,
                    materialize=terminal_step.kind == "reduce",
                    overlay=any(
                        interior_counts.get(id(m.tensor), 0) > 1
                        for m in g.members[:-1]
                    ),
                ),
                step_key=step_content_key(g.members),
                cost_features=step_cost_features(g.members),
            )
        new_steps.append(step)

    specialized = 0
    for g in opt.groups:
        step = new_steps[g.position]
        if step.kind != "einsum":
            continue
        if cost_model is not None:
            # Measured einsum-vs-matmul verdict for this step identity:
            # skip specialization when BLAS measured slower here. (None —
            # no measured pair — keeps the static always-try behaviour.)
            if cost_model.prefer_matmul(step.step_key) is False:
                continue
        matmul_run = _specialize_contraction(plan, g.terminal.tensor, step)
        if matmul_run is not None:
            step.run = matmul_run
            step.kind = "matmul"
            specialized += 1
    opt.stats.specialized_contractions = specialized

    wave_schedule = None
    if opt.waves is not None and len(opt.waves) < len(opt.groups):
        lanes = 1 if plan.batch_size is None else plan.batch_size

        def group_work(g) -> int:
            if hasattr(g, "work_elements"):
                return g.work_elements(lanes)  # tiled: per-block share
            return sum(lanes * m.tensor.num_elements for m in g.members)

        wave_schedule = []
        for wave in opt.waves:
            work = min(group_work(opt.groups[pos]) for pos in wave)
            parallel = (
                len(wave) >= 2 and work >= PARALLEL_MIN_WAVE_ELEMENTS
            )
            if cost_model is not None and parallel:
                # Measured gate, demote-only: a statically-parallel wave
                # stays on the pool only when its smallest measured step
                # still amortises a thread handoff. Never promotes — the
                # evaluator holds the GIL through most of a step, so
                # measured-large steps do not imply parallel pays.
                verdict = cost_model.wave_parallel_profitable([
                    cost_model.measured_seconds(
                        new_steps[pos].step_key, new_steps[pos].kind
                    )
                    for pos in wave
                ])
                if verdict is False:
                    opt.stats.demoted_waves += 1
                    parallel = False
            wave_schedule.append((tuple(wave), parallel))
        opt.stats.parallel_waves = sum(
            1 for _, parallel in wave_schedule if parallel
        )
        if cost_model is not None and opt.stats.parallel_waves == 0:
            # Measured flatten: when no wave survives as parallel, the
            # wave machinery is pure per-wave overhead — the flat serial
            # step loop replays the identical step order (waves are built
            # in position order), so dropping the schedule is
            # order-preserving and bit-identical.
            wave_schedule = None
            opt.stats.flattened_schedule = True

    opt.memory_plan.validate()
    report = verify_plan(
        opt.step_view,
        opt.memory_plan,
        sizer=plan._sizer,
        require_exclusive_writes=True,
        inplace=opt.inplace_pairs,
    )
    if report.has_errors:
        raise PlanningError(
            "unsafe optimized arena layout:\n"
            + report.render(min_severity=Severity.ERROR)
        )

    plan.steps = new_steps
    plan.memory_plan = opt.memory_plan
    plan.waves = wave_schedule
    plan._wave_pool = WAVE_POOL if wave_schedule is not None else None
    plan._hoist_steps = hoist_steps
    plan._hoist_roots = list(opt.hoist_roots)
    plan._hoist_boundary_ids = [id(t) for t in opt.hoist_boundary]
    plan._hoist_input_ids = [id(t) for t in opt.hoist_roots]
    plan.optimization = opt
    return opt
