"""Sharded multi-process serving with zero-copy shared-memory weights.

A :class:`ShardedServer` scales the single-process serving stack
(:class:`~repro.runtime.batching.BatchingServer`) across K worker
*processes*. Each worker rebuilds the same deterministic
:class:`~repro.runtime.executor.ExecutionPlan` from the serialized source
graph, then maps the model's weights — and the optimizer's precomputed
hoist-boundary values — out of one shared
:class:`~repro.runtime.weight_store.WeightStore` segment, zero-copy. K
replicas therefore hold K arena pools but exactly *one* copy of the
weights, and a cold worker never re-runs the hoisted weight prologue: the
values are already in the segment (persisted to disk across server runs,
keyed like the compile cache).

The front end mirrors ``BatchingServer``'s contract:

* :meth:`submit` validates feeds at the door and returns a future;
* a dispatcher thread gathers dynamic batches under the same
  size/delay policy, then ships each batch to a replica chosen by the
  configured policy (``round-robin`` or ``least-outstanding``, both
  capacity-capped so one slow replica cannot absorb the whole queue);
* every accepted request resolves — :meth:`stop` drains the queue, and a
  crashed or hung replica's in-flight requests are re-dispatched (a hang
  is converted into a crash by the watchdog's ``request_timeout_s``) while
  the worker is respawned. If no replica is available the parent executes
  the batch itself over the same shared :class:`PlanState`, so the
  guarantee holds even with every worker down.

Outputs are bit-identical to a serial replay of the same requests through
one :class:`~repro.runtime.session.InferenceSession`: workers replay the
same plans on the same weight bytes, and batch lanes are bit-identical to
unbatched replays by the batched-plan guarantee.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import multiprocessing as mp

import numpy as np

from repro.errors import ExecutionError
from repro.frontends.serialize import graph_from_dict, graph_to_dict
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.runtime.session import (
    DEFAULT_BATCH_BUCKETS,
    DEFAULT_MAX_POOL,
    InferenceSession,
    PlanState,
    resolve_feeds_by_name,
)
from repro.runtime.weight_store import WeightManifest, WeightStore
from repro.te.tensor import Tensor

Feeds = Union[Mapping[Tensor, np.ndarray], Mapping[str, np.ndarray]]

# Request latencies (submit -> resolve) kept for percentile reporting.
LATENCY_WINDOW = 4096

# How often the idle dispatcher re-checks for shutdown.
_IDLE_POLL_S = 0.02

# Watchdog sweep interval (hang detection granularity).
_WATCHDOG_POLL_S = 0.05

# How long start() waits for every worker to map weights and report ready.
_READY_TIMEOUT_S = 120.0


# ---- dispatch policies ------------------------------------------------------


def pick_round_robin(last: int, outstanding: Sequence[Optional[int]]) -> int:
    """Next alive replica after ``last`` (``None`` marks a dead replica)."""
    n = len(outstanding)
    for i in range(1, n + 1):
        idx = (last + i) % n
        if outstanding[idx] is not None:
            return idx
    raise ExecutionError("no alive replica to dispatch to")


def pick_least_outstanding(
    last: int, outstanding: Sequence[Optional[int]]
) -> int:
    """Alive replica with the fewest in-flight requests; round-robin ties."""
    alive = [o for o in outstanding if o is not None]
    if not alive:
        raise ExecutionError("no alive replica to dispatch to")
    best = min(alive)
    n = len(outstanding)
    for i in range(1, n + 1):
        idx = (last + i) % n
        if outstanding[idx] == best:
            return idx
    raise ExecutionError("no alive replica to dispatch to")


_POLICIES = {
    "round-robin": pick_round_robin,
    "least-outstanding": pick_least_outstanding,
}


# ---- worker process ---------------------------------------------------------


@dataclass
class WorkerConfig:
    """Plan/session knobs shipped to every worker (picklable)."""

    optimize: bool = True
    executor: str = "wave"
    tile: bool = True
    batch_buckets: Tuple[int, ...] = DEFAULT_BATCH_BUCKETS
    max_pool: int = DEFAULT_MAX_POOL
    # Profile collection: when on, every worker measures per-step wall
    # time and flushes it to the profile store rooted at profile_dir
    # (None honours $REPRO_CACHE_DIR) — the store's file lock makes the
    # concurrent worker flushes merge instead of clobber.
    collect_profiles: bool = False
    profile_dir: Optional[str] = None
    # Fault-injection hook for the hang tests: while the flag file exists,
    # every batch sleeps this long before executing (long enough for the
    # watchdog to declare the worker hung and kill it).
    fault_sleep_s: float = 0.0
    fault_flag_path: Optional[str] = None


def _rss_bytes() -> int:
    """Resident set size of this process (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def _session_stats(session: InferenceSession) -> dict:
    pct = session.latency_percentiles()
    state = session.arena_state
    return {
        "requests": session.request_count,
        "request_seconds": session.request_seconds,
        "p50_us": pct["p50"] * 1e6,
        "p95_us": pct["p95"] * 1e6,
        "p99_us": pct["p99"] * 1e6,
        "batches": state.batches_executed,
        "mean_occupancy": session.mean_batch_occupancy,
        "arenas_allocated": state.arenas_allocated,
        "arenas_trimmed": state.arenas_trimmed,
        "pool_high_water": state.pool_high_water,
        "hoist_evaluations": session.plan.hoist_evaluations,
        "rss_bytes": _rss_bytes(),
    }


def _worker_main(
    index: int,
    graph_doc: dict,
    manifest: WeightManifest,
    config: WorkerConfig,
    conn,
) -> None:
    """Replica body: rebuild the plan, map shared weights, serve batches.

    Protocol (over the duplex pipe): the worker sends ``("ready", index,
    info)`` once serving; the parent sends ``("batch", id, feeds_list)``
    (name-keyed feeds) and receives ``("result", id, outputs)`` or
    ``("error", id, message)``; ``("stats",)`` round-trips session
    metrics; ``None`` asks for a clean exit, acknowledged with ``("bye",
    index, None)``.
    """
    store = None
    try:
        store = WeightStore.attach(manifest)
        graph = graph_from_dict(graph_doc)
        program = lower_graph(graph)
        plan_state = PlanState(
            program,
            batch_buckets=config.batch_buckets,
            optimize=config.optimize,
            executor=config.executor,
            tile=config.tile,
        )
        weights = store.weights_by_name()
        hoisted = store.hoisted_by_name()
        plan_state.bind_weights(weights, hoisted_by_name=hoisted or None)
        session = InferenceSession.from_plan_state(
            plan_state,
            name=f"{program.name}[{index}]",
            max_pool=config.max_pool,
            collect_profiles=config.collect_profiles,
            profile_store=config.profile_dir,
        )
        # Zero-copy accounting: a weight whose bound value is not the shm
        # view itself was copied into this replica (should never happen —
        # the store packs execution-dtype contiguous arrays).
        private = 0
        for t, bound in plan_state.weight_feeds.items():
            if bound is not weights.get(t.name):
                private += bound.nbytes
        conn.send(("ready", index, {
            "pid": os.getpid(),
            "weight_bytes_mapped": store.total_bytes,
            "weight_private_bytes": private,
            "hoist_evaluations": plan_state.plan.hoist_evaluations,
            "rss_bytes": _rss_bytes(),
        }))
    except BaseException as exc:  # noqa: BLE001 — forwarded to parent
        try:
            conn.send(("fatal", index, repr(exc)))
        except OSError:
            pass
        if store is not None:
            store.close()
        return

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone
            if msg is None:
                conn.send(("bye", index, None))
                break
            kind = msg[0]
            if kind == "batch":
                _, batch_id, feeds_list = msg
                if (
                    config.fault_sleep_s > 0.0
                    and config.fault_flag_path
                    and os.path.exists(config.fault_flag_path)
                ):
                    time.sleep(config.fault_sleep_s)
                try:
                    results = session.run_batch_by_name(feeds_list)
                    conn.send(("result", batch_id, results))
                except Exception as exc:  # noqa: BLE001 — forwarded
                    conn.send(("error", batch_id, repr(exc)))
            elif kind == "stats":
                conn.send(("stats", index, _session_stats(session)))
    finally:
        if config.collect_profiles:
            session.flush_profiles()
        store.close()


# ---- parent-side bookkeeping ------------------------------------------------


@dataclass
class _Pending:
    """One queued request: resolved feeds, its future, and arrival time."""

    feeds: Mapping[Tensor, np.ndarray]
    future: "Future[List[np.ndarray]]"
    enqueued: float = field(default_factory=time.perf_counter)
    redispatched: bool = False


@dataclass
class _InFlight:
    """One batch shipped to a replica, until its result (or its funeral)."""

    members: List[_Pending]
    sent_at: float = field(default_factory=time.perf_counter)


class _Replica:
    """Parent-side handle for one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.receiver: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.in_flight: Dict[int, _InFlight] = {}
        self.alive = False
        self.clean_exit = False
        self.ready = threading.Event()
        self.info: dict = {}
        self.stats: dict = {}
        self.stats_event = threading.Event()
        self.fatal: Optional[str] = None
        self.crashes = 0
        self.requests_served = 0

    @property
    def outstanding(self) -> int:
        return sum(len(b.members) for b in self.in_flight.values())


class ShardedServer:
    """K-process sharded serving over one shared weight segment."""

    def __init__(
        self,
        graph: Graph,
        weights: Mapping[str, np.ndarray],
        replicas: int = 2,
        policy: str = "least-outstanding",
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
        optimize: bool = True,
        executor: str = "wave",
        tile: bool = True,
        batch_buckets: Sequence[int] = DEFAULT_BATCH_BUCKETS,
        max_pool: int = DEFAULT_MAX_POOL,
        request_timeout_s: Optional[float] = 30.0,
        max_outstanding_batches: int = 2,
        cache_dir: Optional[str] = None,
        collect_profiles: bool = False,
        profile_dir: Optional[str] = None,
        fault_sleep_s: float = 0.0,
        fault_flag_path: Optional[str] = None,
    ) -> None:
        if replicas < 1:
            raise ExecutionError(f"replicas must be >= 1, got {replicas}")
        if policy not in _POLICIES:
            raise ExecutionError(
                f"unknown dispatch policy {policy!r}; choose one of "
                f"{sorted(_POLICIES)}"
            )
        if max_batch_size < 1:
            raise ExecutionError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.graph = graph
        self.replicas = replicas
        self.policy = policy
        self.max_batch_size = max_batch_size
        self.max_queue_delay_ms = max_queue_delay_ms
        self._delay_s = max_queue_delay_ms / 1e3
        self.request_timeout_s = request_timeout_s
        self.max_outstanding_batches = max_outstanding_batches
        self._graph_doc = graph_to_dict(graph)
        self._config = WorkerConfig(
            optimize=optimize,
            executor=executor,
            tile=tile,
            batch_buckets=tuple(sorted(set(int(b) for b in batch_buckets))),
            max_pool=max_pool,
            collect_profiles=collect_profiles,
            profile_dir=profile_dir,
            fault_sleep_s=fault_sleep_s,
            fault_flag_path=fault_flag_path,
        )

        # The parent holds its own PlanState over the same shared weights:
        # it validates submissions, computes the hoisted prologue exactly
        # once for the store, and serves as the all-replicas-down fallback
        # executor (bit-identical by construction — same plans, same
        # weight bytes).
        program = lower_graph(graph)
        self.plan_state = PlanState(
            program,
            batch_buckets=self._config.batch_buckets,
            optimize=optimize,
            executor=executor,
            tile=tile,
        )
        self.name = program.name
        self.store = WeightStore.create(
            program, self.plan_state.plan, weights, cache_dir=cache_dir
        )
        self.plan_state.bind_weights(
            self.store.weights_by_name(),
            hoisted_by_name=self.store.hoisted_by_name() or None,
        )
        self._local: Optional[InferenceSession] = None
        self._local_lock = threading.Lock()

        self._ctx = mp.get_context("spawn")
        self._replicas: List[_Replica] = [
            _Replica(i) for i in range(replicas)
        ]
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._lock = threading.Lock()
        self._capacity = threading.Condition(self._lock)
        self._stopping = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None
        self._started = False
        self._batch_ids = itertools.count()
        self._last_replica = replicas - 1
        self._serving_since: Optional[float] = None

        self.requests_submitted = 0
        self.requests_completed = 0
        self.batches_dispatched = 0
        self.requests_redispatched = 0
        self.local_fallback_batches = 0
        self.worker_crashes = 0
        self.worker_respawns = 0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)

    # ---- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return (
            self._dispatcher is not None and self._dispatcher.is_alive()
        )

    def alive_replicas(self) -> int:
        with self._lock:
            return sum(1 for r in self._replicas if r.alive)

    def start(self) -> "ShardedServer":
        """Spawn every worker, wait for them to map weights, start serving."""
        if self._started:
            return self
        self._stopping.clear()
        for replica in self._replicas:
            self._spawn(replica)
        deadline = time.perf_counter() + _READY_TIMEOUT_S
        for replica in self._replicas:
            remaining = max(0.0, deadline - time.perf_counter())
            if not replica.ready.wait(timeout=remaining):
                self._abort_start()
                raise ExecutionError(
                    f"replica {replica.index} did not become ready within "
                    f"{_READY_TIMEOUT_S}s"
                )
            if replica.fatal is not None:
                self._abort_start()
                raise ExecutionError(
                    f"replica {replica.index} failed to start: "
                    f"{replica.fatal}"
                )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"sharded-{self.name}-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        if self.request_timeout_s is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name=f"sharded-{self.name}-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        self._started = True
        self._serving_since = time.perf_counter()
        return self

    def _abort_start(self) -> None:
        self._stopping.set()
        for replica in self._replicas:
            proc = replica.process
            if proc is not None and proc.is_alive():
                proc.terminate()
        self.store.unlink()

    def _spawn(self, replica: _Replica) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                replica.index,
                self._graph_doc,
                self.store.manifest,
                self._config,
                child_conn,
            ),
            name=f"sharded-{self.name}-w{replica.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        replica.process = proc
        replica.conn = parent_conn
        replica.clean_exit = False
        replica.fatal = None
        replica.ready.clear()
        with self._lock:
            replica.alive = True
        replica.receiver = threading.Thread(
            target=self._receive_loop,
            args=(replica,),
            name=f"sharded-{self.name}-recv{replica.index}",
            daemon=True,
        )
        replica.receiver.start()

    def stop(self) -> None:
        """Stop accepting requests, resolve everything accepted, shut down.

        Mirrors ``BatchingServer.stop()``: the dispatcher finishes the
        queue, then the parent waits for every in-flight batch (the
        watchdog still converts hangs into crashes, whose requests come
        back to the queue and are served locally). No accepted request is
        dropped.
        """
        self._stopping.set()
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join()
        # Outstanding batches resolve via the receiver threads; anything
        # re-enqueued by a crash (and any submit that raced the shutdown)
        # is served here, in the parent, over the shared PlanState.
        while True:
            self._drain_now()
            with self._capacity:
                if (
                    self._queue.empty()
                    and all(not r.in_flight for r in self._replicas)
                ):
                    break
                self._capacity.wait(timeout=_WATCHDOG_POLL_S)
        for replica in self._replicas:
            with self._lock:
                alive = replica.alive
            if alive and replica.conn is not None:
                try:
                    with replica.send_lock:
                        replica.conn.send(None)
                except (OSError, ValueError):
                    pass
        for replica in self._replicas:
            proc = replica.process
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            if replica.conn is not None:
                replica.conn.close()
            if (
                replica.receiver is not None
                and replica.receiver is not threading.current_thread()
            ):
                replica.receiver.join(timeout=5.0)
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout=5.0)
        self._started = False
        self.store.unlink()

    def __enter__(self) -> "ShardedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ---- request entry ---------------------------------------------------

    def submit(self, feeds: Feeds) -> "Future[List[np.ndarray]]":
        """Queue one request; the future resolves with its output list.

        Feeds may be keyed by placeholder tensor or by name, and cover
        only the model *inputs* — the server merges its shared weights
        under every request. Shape and missing-placeholder errors raise
        here, synchronously.
        """
        if not self._started or self._stopping.is_set():
            raise ExecutionError(
                "ShardedServer is not running; call start() "
                "(or use it as a context manager)"
            )
        resolved = self._resolve(feeds)
        # Validate at the door against the parent's identical plan.
        self.plan_state.plan.bind_feeds(
            self.plan_state.with_weights(resolved)
        )
        pending = _Pending(resolved, Future())
        self._queue.put(pending)
        with self._lock:
            self.requests_submitted += 1
        return pending.future

    def run(self, feeds: Feeds, timeout: Optional[float] = None):
        """Synchronous convenience: submit and wait for the outputs."""
        return self.submit(feeds).result(timeout)

    def _resolve(self, feeds: Feeds) -> Mapping[Tensor, np.ndarray]:
        if feeds and all(isinstance(key, str) for key in feeds):
            return resolve_feeds_by_name(self.plan_state.program, feeds)
        return feeds  # type: ignore[return-value]

    # ---- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=_IDLE_POLL_S)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            self._dispatch(self._gather(first))

    def _gather(self, first: _Pending) -> List[_Pending]:
        """Fill a batch behind ``first`` under the size/delay policy."""
        batch = [first]
        deadline = first.enqueued + self._delay_s
        while len(batch) < self.max_batch_size:
            if self._stopping.is_set():
                remaining = 0.0
            else:
                remaining = deadline - time.perf_counter()
            if remaining <= 0:
                try:
                    while len(batch) < self.max_batch_size:
                        batch.append(self._queue.get_nowait())
                except queue.Empty:
                    pass
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _pick_replica(self) -> Optional[_Replica]:
        """A replica with spare capacity, per policy; None to run locally.

        Blocks (briefly) while every replica is at its outstanding-batch
        cap; falls back to ``None`` — execute in the parent — only when no
        replica is alive and none is coming back.
        """
        pick = _POLICIES[self.policy]
        deadline = time.perf_counter() + 1.0
        while True:
            with self._capacity:
                outstanding: List[Optional[int]] = []
                usable = 0
                for r in self._replicas:
                    # A respawning replica is alive but not yet ready;
                    # dispatching to it would start the request clock while
                    # the worker is still importing, inviting a watchdog
                    # kill before it ever serves.
                    if (
                        r.alive
                        and r.ready.is_set()
                        and len(r.in_flight) < self.max_outstanding_batches
                    ):
                        outstanding.append(r.outstanding)
                        usable += 1
                    else:
                        outstanding.append(None)
                if usable:
                    idx = pick(self._last_replica, outstanding)
                    self._last_replica = idx
                    return self._replicas[idx]
                if not any(r.alive for r in self._replicas):
                    if time.perf_counter() >= deadline:
                        return None  # every worker down: serve locally
                self._capacity.wait(timeout=_WATCHDOG_POLL_S)

    def _dispatch(self, batch: List[_Pending]) -> None:
        replica = self._pick_replica()
        if replica is None:
            self._execute_locally(batch)
            return
        batch_id = next(self._batch_ids)
        feeds_list = [
            {t.name: v for t, v in pending.feeds.items()}
            for pending in batch
        ]
        with self._lock:
            lost = not replica.alive
            if not lost:
                replica.in_flight[batch_id] = _InFlight(list(batch))
                self.batches_dispatched += 1
        if lost:
            # Lost the replica between picking and registering; try again.
            self._dispatch(batch)
            return
        try:
            with replica.send_lock:
                replica.conn.send(("batch", batch_id, feeds_list))
        except (OSError, ValueError):
            # The worker died under us; its receiver thread sees EOF and
            # re-enqueues this batch through the crash path.
            pass

    def _execute_locally(self, batch: List[_Pending]) -> None:
        """Run one batch in the parent over the shared PlanState."""
        with self._local_lock:
            if self._local is None:
                self._local = InferenceSession.from_plan_state(
                    self.plan_state, name=f"{self.name}[local]"
                )
            session = self._local
        with self._lock:
            self.local_fallback_batches += 1
        try:
            results = session.run_batch(
                [pending.feeds for pending in batch]
            )
        except Exception:
            results = None
        if results is not None:
            for pending, outputs in zip(batch, results):
                self._settle(pending, outputs)
        else:
            for pending in batch:
                try:
                    self._settle(pending, session.run(pending.feeds))
                except Exception as exc:  # noqa: BLE001 — forwarded
                    self._settle(pending, None, exc)

    def _settle(self, pending: _Pending, outputs, exc=None) -> None:
        """Resolve one future exactly once (idempotent across re-dispatch)."""
        try:
            if exc is not None:
                pending.future.set_exception(exc)
            else:
                pending.future.set_result(outputs)
        except InvalidStateError:
            return  # already resolved by an earlier dispatch
        with self._lock:
            self.requests_completed += 1
            self._latencies.append(time.perf_counter() - pending.enqueued)

    def _drain_now(self) -> None:
        """Serve whatever is queued right now, in the parent."""
        while True:
            batch: List[_Pending] = []
            try:
                while len(batch) < self.max_batch_size:
                    batch.append(self._queue.get_nowait())
            except queue.Empty:
                pass
            if not batch:
                return
            self._execute_locally(batch)

    # ---- replica receive / crash recovery --------------------------------

    def _receive_loop(self, replica: _Replica) -> None:
        conn = replica.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "result":
                _, batch_id, results = msg
                with self._capacity:
                    entry = replica.in_flight.pop(batch_id, None)
                    if entry is not None:
                        replica.requests_served += len(entry.members)
                    self._capacity.notify_all()
                if entry is not None:
                    for pending, outputs in zip(entry.members, results):
                        self._settle(pending, outputs)
            elif kind == "error":
                _, batch_id, message = msg
                with self._capacity:
                    entry = replica.in_flight.pop(batch_id, None)
                    self._capacity.notify_all()
                if entry is not None:
                    # Isolate the failure exactly like BatchingServer:
                    # replay each member unbatched (in the parent) so only
                    # the faulty request's future carries an exception.
                    for pending in entry.members:
                        try:
                            self._settle(
                                pending, self._run_one_locally(pending)
                            )
                        except Exception as exc:  # noqa: BLE001
                            self._settle(pending, None, exc)
            elif kind == "ready":
                replica.info = msg[2]
                replica.ready.set()
            elif kind == "stats":
                replica.stats = msg[2]
                replica.stats_event.set()
            elif kind == "fatal":
                replica.fatal = msg[2]
                replica.ready.set()
            elif kind == "bye":
                replica.clean_exit = True
        self._on_replica_down(replica)

    def _run_one_locally(self, pending: _Pending) -> List[np.ndarray]:
        with self._local_lock:
            if self._local is None:
                self._local = InferenceSession.from_plan_state(
                    self.plan_state, name=f"{self.name}[local]"
                )
            session = self._local
        return session.run(pending.feeds)

    def _on_replica_down(self, replica: _Replica) -> None:
        """EOF from a worker: reclaim its in-flight work, maybe respawn."""
        with self._capacity:
            was_alive = replica.alive
            replica.alive = False
            stranded = list(replica.in_flight.values())
            replica.in_flight.clear()
            crashed = not replica.clean_exit and was_alive
            if crashed:
                replica.crashes += 1
                self.worker_crashes += 1
            self._capacity.notify_all()
        # Re-dispatch every request the dead worker still owed — before any
        # early return: a respawned replica can die *again* before ready
        # while already holding re-dispatched batches. During shutdown the
        # dispatcher may already be gone — stop()'s drain loop picks these
        # up from the queue.
        redispatched = 0
        for entry in stranded:
            for pending in entry.members:
                if not pending.future.done():
                    pending.redispatched = True
                    redispatched += 1
                    self._queue.put(pending)
        if redispatched:
            with self._lock:
                self.requests_redispatched += redispatched
        if not replica.ready.is_set():
            # Death during startup: fail start() fast, never respawn-loop.
            replica.fatal = replica.fatal or "worker exited before ready"
            replica.ready.set()
            return
        if crashed and self._started and not self._stopping.is_set():
            try:
                self._spawn(replica)
            except Exception:  # noqa: BLE001 — replica stays down
                return
            if replica.ready.wait(timeout=_READY_TIMEOUT_S) and (
                replica.fatal is None
            ):
                with self._lock:
                    self.worker_respawns += 1
                with self._capacity:
                    self._capacity.notify_all()
            else:
                with self._lock:
                    replica.alive = False

    def _watchdog_loop(self) -> None:
        """Convert hangs into crashes: kill workers past the deadline."""
        timeout = self.request_timeout_s
        while not self._stopping.is_set() or any(
            r.in_flight for r in self._replicas
        ):
            now = time.perf_counter()
            for replica in self._replicas:
                with self._lock:
                    if not replica.alive or not replica.in_flight:
                        continue
                    oldest = min(
                        b.sent_at for b in replica.in_flight.values()
                    )
                    proc = replica.process
                if now - oldest > timeout and proc is not None:
                    proc.kill()
            if self._stopping.is_set() and not any(
                r.in_flight for r in self._replicas
            ):
                return
            time.sleep(_WATCHDOG_POLL_S)

    # ---- metrics ---------------------------------------------------------

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 submit->resolve latency (seconds, bounded window)."""
        with self._lock:
            window = list(self._latencies)
        if not window:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        arr = np.asarray(window)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
        }

    def refresh_replica_stats(self, timeout_s: float = 2.0) -> None:
        """Round-trip a stats request to every alive replica."""
        pinged = []
        for replica in self._replicas:
            with self._lock:
                alive = replica.alive
            if not alive or replica.conn is None:
                continue
            replica.stats_event.clear()
            try:
                with replica.send_lock:
                    replica.conn.send(("stats",))
            except (OSError, ValueError):
                continue
            pinged.append(replica)
        deadline = time.perf_counter() + timeout_s
        for replica in pinged:
            replica.stats_event.wait(
                timeout=max(0.0, deadline - time.perf_counter())
            )

    def metrics(self, refresh: bool = True) -> dict:
        """Per-replica and aggregate serving metrics.

        ``weight_bytes_saved`` counts the copies sharding avoided: with K
        replicas each mapping the same segment, K-1 per-process weight
        copies never exist.
        """
        if refresh and self._started and not self._stopping.is_set():
            self.refresh_replica_stats()
        percentiles = self.latency_percentiles()
        per_replica = []
        for replica in self._replicas:
            with self._lock:
                row = {
                    "index": replica.index,
                    "alive": replica.alive,
                    "pid": replica.info.get("pid"),
                    "crashes": replica.crashes,
                    "outstanding": replica.outstanding,
                    "requests": replica.requests_served,
                    "weight_bytes_mapped": replica.info.get(
                        "weight_bytes_mapped", 0
                    ),
                    "weight_private_bytes": replica.info.get(
                        "weight_private_bytes", 0
                    ),
                    "hoist_evaluations": replica.info.get(
                        "hoist_evaluations", 0
                    ),
                }
            row.update({
                f"worker_{k}": v for k, v in replica.stats.items()
            })
            per_replica.append(row)
        elapsed = (
            time.perf_counter() - self._serving_since
            if self._serving_since is not None else 0.0
        )
        with self._lock:
            aggregate = {
                "model": self.name,
                "replicas": self.replicas,
                "alive": sum(1 for r in self._replicas if r.alive),
                "policy": self.policy,
                "requests_submitted": self.requests_submitted,
                "requests_completed": self.requests_completed,
                "requests_redispatched": self.requests_redispatched,
                "batches_dispatched": self.batches_dispatched,
                "local_fallback_batches": self.local_fallback_batches,
                "worker_crashes": self.worker_crashes,
                "worker_respawns": self.worker_respawns,
                "elapsed_s": elapsed,
                "qps": (
                    self.requests_completed / elapsed
                    if elapsed > 0 else 0.0
                ),
                "p50_us": percentiles["p50"] * 1e6,
                "p95_us": percentiles["p95"] * 1e6,
                "p99_us": percentiles["p99"] * 1e6,
                "weight_bytes_total": self.store.total_bytes,
                "weight_bytes_saved": (
                    (self.replicas - 1) * self.store.total_bytes
                ),
                "weight_store_from_disk": self.store.loaded_from_disk,
            }
        return {"per_replica": per_replica, "aggregate": aggregate}

    def render_metrics(self, refresh: bool = True) -> str:
        """Text report of the per-replica and aggregate metrics."""
        m = self.metrics(refresh=refresh)
        agg = m["aggregate"]
        lines = [
            f"sharded serving: {agg['model']} x{agg['replicas']} "
            f"({agg['policy']}), {agg['alive']} alive — "
            f"{agg['requests_completed']} served, "
            f"{agg['qps']:.1f} req/s, p50/p95/p99 = "
            f"{agg['p50_us']:.0f}/{agg['p95_us']:.0f}/"
            f"{agg['p99_us']:.0f} us",
            f"weights: {agg['weight_bytes_total'] / 1e6:.2f} MB shared "
            f"once ({agg['weight_bytes_saved'] / 1e6:.2f} MB of per-replica "
            f"copies avoided"
            + (", restored from disk)" if agg["weight_store_from_disk"]
               else ")"),
            f"faults: {agg['worker_crashes']} crashes, "
            f"{agg['worker_respawns']} respawns, "
            f"{agg['requests_redispatched']} re-dispatched, "
            f"{agg['local_fallback_batches']} local-fallback batches",
        ]
        header = (
            f"{'replica':>7s} {'pid':>8s} {'alive':>5s} {'reqs':>8s} "
            f"{'occup':>6s} {'p50 us':>9s} {'p99 us':>9s} "
            f"{'private W':>10s} {'rss MB':>8s}"
        )
        lines.append(header)
        for row in m["per_replica"]:
            occup = row.get("worker_mean_occupancy", 0.0)
            lines.append(
                f"{row['index']:7d} {str(row.get('pid')):>8s} "
                f"{str(row['alive']):>5s} {row['requests']:8d} "
                f"{occup * 100:5.1f}% "
                f"{row.get('worker_p50_us', 0.0):9.0f} "
                f"{row.get('worker_p99_us', 0.0):9.0f} "
                f"{row['weight_private_bytes']:10d} "
                f"{row.get('worker_rss_bytes', 0) / 1e6:8.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ShardedServer {self.name} x{self.replicas} ({self.policy}): "
            f"{self.requests_completed} served, "
            f"{self.worker_crashes} crashes>"
        )
