"""Cross-request dynamic batching: queue, dispatcher thread, futures.

Souffle's premise is amortizing per-op overhead by globalizing work — one
kernel per subprogram, one arena per plan. The serving-path analogue is
amortizing per-*request* overhead: N concurrent requests replay the
execution plan once through a :class:`~repro.runtime.executor.
BatchedExecutionPlan` instead of N times through the scalar plan.

:class:`BatchingServer` implements the standard dynamic-batching policy on
top of an :class:`~repro.runtime.session.InferenceSession`:

* :meth:`submit` validates a request's feeds immediately (a malformed
  request fails fast at the door and can never poison a batch) and parks a
  future on an unbounded queue;
* a dispatcher thread drains the queue — the first waiting request opens a
  batch window that closes after ``max_queue_delay_ms`` or as soon as
  ``max_batch_size`` requests are aboard, whichever comes first — and
  replays the whole group through :meth:`InferenceSession.run_batch`
  (bucketed, padded, batch-1 falls back to the unbatched plan);
* each future resolves with its own sliced outputs, bit-identical to an
  unbatched :meth:`InferenceSession.run` of the same feeds. If a batch
  replay fails, every member request is retried unbatched so one request's
  failure surfaces only on its own future.

:meth:`stop` drains the queue before returning: every accepted request is
served (or fails on its own future); none are dropped.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from concurrent.futures import Future

from repro.errors import ExecutionError
from repro.runtime.session import InferenceSession, resolve_feeds_by_name
from repro.te.tensor import Tensor

Feeds = Union[Mapping[Tensor, np.ndarray], Mapping[str, np.ndarray]]

# Queue-wait samples kept for percentile reporting.
QUEUE_WAIT_WINDOW = 2048

# How often the idle dispatcher re-checks for shutdown.
_IDLE_POLL_S = 0.02


@dataclass
class _Pending:
    """One queued request: resolved feeds, its future, and arrival time."""

    feeds: Mapping[Tensor, np.ndarray]
    future: "Future[List[np.ndarray]]"
    enqueued: float = field(default_factory=time.perf_counter)


class BatchingServer:
    """Queue-and-dispatch dynamic batching over one inference session."""

    def __init__(
        self,
        session: InferenceSession,
        max_batch_size: int = 8,
        max_queue_delay_ms: float = 2.0,
    ) -> None:
        if max_batch_size < 1:
            raise ExecutionError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_queue_delay_ms < 0:
            raise ExecutionError(
                f"max_queue_delay_ms must be >= 0, got {max_queue_delay_ms}"
            )
        self.session = session
        self.max_batch_size = max_batch_size
        self.max_queue_delay_ms = max_queue_delay_ms
        self._delay_s = max_queue_delay_ms / 1e3
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._state_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.requests_submitted = 0
        self.requests_completed = 0
        self.batches_dispatched = 0
        self._queue_waits: deque = deque(maxlen=QUEUE_WAIT_WINDOW)

    # ---- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "BatchingServer":
        """Spawn the dispatcher thread (idempotent while running)."""
        with self._state_lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"batching-{self.session.name}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests, serve everything queued, then return."""
        with self._state_lock:
            self._stopping.set()
            thread = self._thread
        if thread is not None:
            thread.join()
        # A submit racing the shutdown may have enqueued after the
        # dispatcher's final empty poll; serve any stragglers here so no
        # accepted request is ever dropped.
        self._drain_now()

    def __enter__(self) -> "BatchingServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ---- request entry ---------------------------------------------------

    def submit(self, feeds: Feeds) -> "Future[List[np.ndarray]]":
        """Queue one request; the future resolves with its output list.

        Feeds may be keyed by placeholder tensor or by name. Shape and
        missing-placeholder errors raise here, synchronously.
        """
        resolved = self._resolve(feeds)
        # Validate now: a bad request must fail at the door, not take a
        # whole batch down with it later.
        self.session.plan.bind_feeds(resolved)
        pending = _Pending(resolved, Future())
        with self._state_lock:
            if self._stopping.is_set() or self._thread is None:
                raise ExecutionError(
                    "BatchingServer is not running; call start() "
                    "(or use it as a context manager)"
                )
            self._queue.put(pending)
        with self._metrics_lock:
            self.requests_submitted += 1
        return pending.future

    def run(self, feeds: Feeds, timeout: Optional[float] = None):
        """Synchronous convenience: submit and wait for the outputs."""
        return self.submit(feeds).result(timeout)

    def _resolve(self, feeds: Feeds) -> Mapping[Tensor, np.ndarray]:
        if feeds and all(isinstance(key, str) for key in feeds):
            return resolve_feeds_by_name(self.session.plan.program, feeds)
        return feeds  # type: ignore[return-value]

    # ---- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=_IDLE_POLL_S)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            self._execute(self._gather(first))

    def _gather(self, first: _Pending) -> List[_Pending]:
        """Fill a batch behind ``first`` under the size/delay policy."""
        batch = [first]
        deadline = first.enqueued + self._delay_s
        while len(batch) < self.max_batch_size:
            if self._stopping.is_set():
                # Shutting down: sweep what is already queued, don't wait.
                remaining = 0.0
            else:
                remaining = deadline - time.perf_counter()
            if remaining <= 0:
                try:
                    while len(batch) < self.max_batch_size:
                        batch.append(self._queue.get_nowait())
                except queue.Empty:
                    pass
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _execute(self, batch: List[_Pending]) -> None:
        dispatched = time.perf_counter()
        waits = [dispatched - pending.enqueued for pending in batch]
        try:
            results = self.session.run_batch(
                [pending.feeds for pending in batch]
            )
        except Exception:
            # Isolate the failure: replay each member unbatched so only
            # the faulty request's future carries the exception.
            results = None
        if results is not None:
            for pending, outputs in zip(batch, results):
                pending.future.set_result(outputs)
        else:
            for pending in batch:
                try:
                    pending.future.set_result(self.session.run(pending.feeds))
                except Exception as exc:  # noqa: BLE001 — forwarded
                    pending.future.set_exception(exc)
        with self._metrics_lock:
            self.batches_dispatched += 1
            self.requests_completed += len(batch)
            self._queue_waits.extend(waits)

    def _drain_now(self) -> None:
        """Serve whatever is still queued, one sweep at a time."""
        while True:
            batch: List[_Pending] = []
            try:
                while len(batch) < self.max_batch_size:
                    batch.append(self._queue.get_nowait())
            except queue.Empty:
                pass
            if not batch:
                return
            self._execute(batch)

    # ---- metrics ---------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        with self._metrics_lock:
            if self.batches_dispatched == 0:
                return 0.0
            return self.requests_completed / self.batches_dispatched

    def queue_wait_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 queue wait (seconds) over the bounded window."""
        with self._metrics_lock:
            window = list(self._queue_waits)
        if not window:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        arr = np.asarray(window)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
        }

    def profile_report(self):
        """The session's profile with server-side batching stats merged."""
        from repro.runtime.profiler import BatchStats

        report = self.session.profile_report()
        stats = report.batching
        if stats is None:
            with self._metrics_lock:
                stats = BatchStats(
                    batches=self.batches_dispatched,
                    batched_requests=self.requests_completed,
                    mean_occupancy=self.session.mean_batch_occupancy,
                )
        waits = self.queue_wait_percentiles()
        stats.queue_wait_p50_us = waits["p50"] * 1e6
        stats.queue_wait_p95_us = waits["p95"] * 1e6
        stats.queue_wait_p99_us = waits["p99"] * 1e6
        report.batching = stats
        return report

    def __repr__(self) -> str:
        return (
            f"<BatchingServer {self.session.name}: "
            f"max_batch={self.max_batch_size}, "
            f"delay={self.max_queue_delay_ms}ms, "
            f"{self.requests_completed} served>"
        )
