"""Runtime: compiled modules, plan-based execution, serving and profiling."""

from repro.runtime.batching import BatchingServer
from repro.runtime.dispatch import DispatchRecord, ShapeDispatcher
from repro.runtime.executor import (
    Arena,
    BatchedExecutionPlan,
    ExecutionPlan,
    PlanStep,
)
from repro.runtime.memory_planner import MemoryPlan, plan_memory
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.runtime.profiler import (
    BatchStats,
    ExecutionProfile,
    KernelProfile,
    ProfileReport,
    StepTiming,
    profile_module,
)
from repro.runtime.session import InferenceSession

__all__ = [
    "Arena",
    "BatchStats",
    "BatchedExecutionPlan",
    "BatchingServer",
    "CompileStats",
    "CompiledModule",
    "DispatchRecord",
    "ExecutionPlan",
    "ExecutionProfile",
    "InferenceSession",
    "KernelProfile",
    "MemoryPlan",
    "PhaseTimer",
    "PlanStep",
    "ProfileReport",
    "ShapeDispatcher",
    "StepTiming",
    "plan_memory",
    "profile_module",
]
