"""Runtime: compiled modules, plan-based execution, serving and profiling."""

from repro.runtime.batching import BatchingServer
from repro.runtime.dispatch import DispatchRecord, ShapeDispatcher
from repro.runtime.executor import (
    Arena,
    BatchedExecutionPlan,
    ExecutionPlan,
    PlanStep,
)
from repro.runtime.memory_planner import MemoryPlan, plan_memory
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.runtime.profiler import (
    BatchStats,
    ExecutionProfile,
    KernelProfile,
    ProfileReport,
    SchedulerStats,
    StepTiming,
    profile_module,
)
from repro.runtime.session import InferenceSession
from repro.runtime.task_graph import (
    AdversarialScheduler,
    FifoScheduler,
    GraphExecutor,
    ScriptedScheduler,
    Task,
    TaskGraph,
    TaskGraphStats,
    ThreadedScheduler,
    build_task_graph,
    random_topological_order,
    task_graph_stats,
)

__all__ = [
    "AdversarialScheduler",
    "Arena",
    "BatchStats",
    "BatchedExecutionPlan",
    "BatchingServer",
    "CompileStats",
    "CompiledModule",
    "DispatchRecord",
    "ExecutionPlan",
    "ExecutionProfile",
    "FifoScheduler",
    "GraphExecutor",
    "InferenceSession",
    "KernelProfile",
    "MemoryPlan",
    "PhaseTimer",
    "PlanStep",
    "ProfileReport",
    "SchedulerStats",
    "ScriptedScheduler",
    "StepTiming",
    "ShapeDispatcher",
    "Task",
    "TaskGraph",
    "TaskGraphStats",
    "ThreadedScheduler",
    "build_task_graph",
    "plan_memory",
    "profile_module",
    "random_topological_order",
    "task_graph_stats",
]
