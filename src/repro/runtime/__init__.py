"""Runtime: compiled modules, functional execution and profiling."""

from repro.runtime.dispatch import DispatchRecord, ShapeDispatcher
from repro.runtime.memory_planner import MemoryPlan, plan_memory
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.runtime.profiler import KernelProfile, ProfileReport, profile_module

__all__ = [
    "CompileStats",
    "DispatchRecord",
    "MemoryPlan",
    "ShapeDispatcher",
    "plan_memory",
    "CompiledModule",
    "KernelProfile",
    "PhaseTimer",
    "ProfileReport",
    "profile_module",
]
