"""Persistent per-step execution profiles: the feedback half of the loop.

Every profiled request measures ground truth — per-step wall seconds the
profiler previously threw away after one ``profile_report``. This module
persists those measurements into the compile-cache directory so later
compiles can plan against them:

* rows are keyed by ``(program structural hash, shape bucket)`` — one JSON
  document per bucket, mirroring the other cache tiers' layout
  (``<dir>/profiles/rows/<k0k1>/<key>.json``);
* inside a bucket, rows join on the durable ``step_key``
  (:func:`repro.cache.keys.step_content_key`) plus a *variant* label — the
  step kind, or ``tiled@<block_rows>`` for tiled blocks — so one step's
  einsum and matmul incarnations (or two block sizes of one chain) keep
  separate measurements;
* per-call mean seconds are EMA-merged across runs (fresh measurements
  dominate, old machines age out);
* writes are read-merge-write under an ``fcntl`` file lock, so two
  sessions recording the same bucket concurrently never lose rows;
* every document carries the same versioned envelope as
  :class:`repro.cache.store.JsonStore` — corrupted or stale-format files
  are counted, deleted, and treated as empty, never raised.

Tune verdicts (the A/B harness's adopt/reject decisions) persist next to
the rows under ``<dir>/verdicts/`` with the same envelope.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.cache.keys import _digest
from repro.cache.store import CacheStats

try:  # POSIX only; the store degrades to lock-free merges elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

PROFILE_FORMAT = "profile-rows"
VERDICT_FORMAT = "tune-verdict"

# Bump to invalidate every persisted profile row (schema or semantics of a
# measurement changed).
PROFILE_FORMAT_VERSION = 1

# EMA weight of the *incoming* measurement when merging with a persisted
# row. High enough that a machine change re-converges within a few runs,
# low enough that one noisy run cannot flip a planning decision.
EMA_ALPHA = 0.4


def tiled_variant(block_rows: int) -> str:
    """Variant label of a tiled block step at one block size."""
    return f"tiled@{int(block_rows)}"


@dataclass
class VariantStats:
    """EMA-merged measurement of one (step_key, variant)."""

    kind: str            # einsum | matmul | map | reduce | const | fused | tiled
    seconds: float       # EMA of mean wall seconds per call of one step
    calls: int           # total calls folded into the EMA
    bytes: int = 0       # static footprint feature (lane-scaled)
    flops: int = 0       # static arithmetic feature (lane-scaled)
    block_rows: int = 0  # tiled variants only

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "calls": self.calls,
            "bytes": self.bytes,
            "flops": self.flops,
            "block_rows": self.block_rows,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "VariantStats":
        return cls(
            kind=str(payload["kind"]),
            seconds=float(payload["seconds"]),
            calls=int(payload["calls"]),
            bytes=int(payload.get("bytes", 0)),
            flops=int(payload.get("flops", 0)),
            block_rows=int(payload.get("block_rows", 0)),
        )


@dataclass
class ProfileRow:
    """All measured variants of one durable step identity."""

    step_key: str
    variants: Dict[str, VariantStats] = field(default_factory=dict)


@dataclass
class ProfileSample:
    """One flushed measurement: mean seconds per call of one plan step."""

    step_key: str
    kind: str
    seconds: float
    calls: int
    bytes: int = 0
    flops: int = 0
    block_rows: int = 0

    @property
    def variant(self) -> str:
        if self.block_rows:
            return tiled_variant(self.block_rows)
        return self.kind


class ProfileStore:
    """Bucketed, EMA-merged, crash-safe store of per-step measurements.

    ``directory=None`` keeps rows purely in memory — useful for tests and
    for one-shot tuning runs that do not want to touch the global cache.
    """

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        self.stats = CacheStats()
        # In-memory buckets (the only storage when directory is None).
        self._memory: Dict[str, Dict[str, ProfileRow]] = {}

    # ---- keys ---------------------------------------------------------------

    @staticmethod
    def bucket_key(program_hash: str, lanes: int) -> str:
        """Content address of one (program, shape bucket) document."""
        return _digest({"program": program_hash, "lanes": int(lanes)})

    # ---- rows ---------------------------------------------------------------

    def load(self, program_hash: str, lanes: int = 1) -> Dict[str, ProfileRow]:
        """All persisted rows for one bucket (empty dict when none)."""
        key = self.bucket_key(program_hash, lanes)
        if self.directory is None:
            rows = self._memory.get(key, {})
        else:
            rows = self._read_rows(self._rows_path(key), key)
        if rows:
            self.stats.hits += 1
            self.stats.disk_hits += 1
        else:
            self.stats.misses += 1
        return rows

    def record(
        self,
        program_hash: str,
        lanes: int,
        samples: Iterable[ProfileSample],
    ) -> None:
        """Merge ``samples`` into the bucket (read-merge-write under a lock).

        Samples for the same (step_key, variant) — structurally identical
        layers, sibling tiled blocks — pool before the EMA so one flush
        counts as one observation per variant.
        """
        pooled = self._pool(samples)
        if not pooled:
            return
        key = self.bucket_key(program_hash, lanes)
        if self.directory is None:
            rows = self._memory.setdefault(key, {})
            self._merge(rows, pooled)
            self.stats.stores += 1
            return
        path = self._rows_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with self._locked(path):
                rows = self._read_rows(path, key)
                self._merge(rows, pooled)
                self._write_envelope(
                    path,
                    PROFILE_FORMAT,
                    key,
                    {
                        "program": program_hash,
                        "lanes": int(lanes),
                        "rows": {
                            sk: {
                                label: vs.to_json()
                                for label, vs in row.variants.items()
                            }
                            for sk, row in rows.items()
                        },
                    },
                )
        except OSError:
            # An unwritable store must never break serving.
            self.stats.store_errors += 1
            return
        self.stats.stores += 1

    # ---- verdicts -----------------------------------------------------------

    def save_verdict(
        self, program_hash: str, lanes: int, verdict: Dict[str, Any]
    ) -> Optional[str]:
        """Persist one tune verdict next to the rows; returns its path."""
        key = self.bucket_key(program_hash, lanes)
        if self.directory is None:
            self._memory[f"verdict:{key}"] = verdict  # type: ignore[assignment]
            return None
        path = self._verdict_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            self._write_envelope(path, VERDICT_FORMAT, key, dict(verdict))
        except OSError:
            self.stats.store_errors += 1
            return None
        return path

    def load_verdict(
        self, program_hash: str, lanes: int = 1
    ) -> Optional[Dict[str, Any]]:
        key = self.bucket_key(program_hash, lanes)
        if self.directory is None:
            return self._memory.get(f"verdict:{key}")  # type: ignore[return-value]
        return self._read_envelope(self._verdict_path(key), VERDICT_FORMAT, key)

    # ---- internals ----------------------------------------------------------

    def _rows_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "rows", key[:2], f"{key}.json")

    def _verdict_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, "verdicts", key[:2], f"{key}.json")

    @staticmethod
    def _pool(samples: Iterable[ProfileSample]) -> Dict[str, ProfileSample]:
        pooled: Dict[str, ProfileSample] = {}
        counts: Dict[str, int] = {}
        for s in samples:
            if s.calls <= 0 or not s.step_key:
                continue
            rid = f"{s.step_key}|{s.variant}"
            have = pooled.get(rid)
            if have is None:
                pooled[rid] = ProfileSample(
                    s.step_key, s.kind, s.seconds, s.calls,
                    s.bytes, s.flops, s.block_rows,
                )
                counts[rid] = 1
            else:
                # Mean-of-means across pooled instances; calls accumulate.
                n = counts[rid]
                have.seconds = (have.seconds * n + s.seconds) / (n + 1)
                have.calls += s.calls
                counts[rid] = n + 1
        return pooled

    @staticmethod
    def _merge(
        rows: Dict[str, ProfileRow], pooled: Dict[str, ProfileSample]
    ) -> None:
        for sample in pooled.values():
            row = rows.get(sample.step_key)
            if row is None:
                row = rows[sample.step_key] = ProfileRow(sample.step_key)
            label = sample.variant
            have = row.variants.get(label)
            if have is None:
                row.variants[label] = VariantStats(
                    kind=sample.kind,
                    seconds=sample.seconds,
                    calls=sample.calls,
                    bytes=sample.bytes,
                    flops=sample.flops,
                    block_rows=sample.block_rows,
                )
            else:
                have.seconds = (
                    (1.0 - EMA_ALPHA) * have.seconds
                    + EMA_ALPHA * sample.seconds
                )
                have.calls += sample.calls
                have.bytes = sample.bytes
                have.flops = sample.flops

    @staticmethod
    @contextmanager
    def _locked(path: str):
        """Advisory exclusive lock guarding one bucket's read-merge-write."""
        handle = open(f"{path}.lock", "a+")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    def _read_rows(self, path: str, key: str) -> Dict[str, ProfileRow]:
        payload = self._read_envelope(path, PROFILE_FORMAT, key)
        if payload is None:
            return {}
        rows: Dict[str, ProfileRow] = {}
        raw = payload.get("rows")
        if not isinstance(raw, dict):
            self._recover(path)
            return {}
        try:
            for sk, variants in raw.items():
                row = ProfileRow(str(sk))
                for label, vs in variants.items():
                    row.variants[str(label)] = VariantStats.from_json(vs)
                rows[str(sk)] = row
        except (KeyError, TypeError, ValueError):
            self._recover(path)
            return {}
        return rows

    def _read_envelope(
        self, path: str, format_name: str, key: str
    ) -> Optional[Dict[str, Any]]:
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._recover(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != format_name
            or envelope.get("version") != PROFILE_FORMAT_VERSION
            or envelope.get("key") != key
            or not isinstance(envelope.get("payload"), dict)
        ):
            self._recover(path)
            return None
        return envelope["payload"]

    def _write_envelope(
        self, path: str, format_name: str, key: str, payload: Dict[str, Any]
    ) -> None:
        envelope = {
            "format": format_name,
            "version": PROFILE_FORMAT_VERSION,
            "key": key,
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)

    def _recover(self, path: str) -> None:
        self.stats.load_errors += 1
        try:
            os.remove(path)
        except OSError:
            pass

    def __repr__(self) -> str:
        where = self.directory or "memory"
        return f"<ProfileStore {where}>"


def default_profile_dir() -> Optional[str]:
    """``$REPRO_CACHE_DIR/profiles``, if the cache directory is set."""
    from repro.cache.compile_cache import default_cache_dir

    directory = default_cache_dir()
    return os.path.join(directory, "profiles") if directory else None


def resolve_profile_store(
    store: Union[None, bool, str, os.PathLike, ProfileStore] = None,
) -> ProfileStore:
    """Normalise a profile-store argument (mirrors resolve_compile_cache).

    ``None`` uses ``$REPRO_CACHE_DIR/profiles`` when the cache directory is
    set and an in-memory store otherwise; ``False`` forces in-memory; a
    path string roots the store there; a :class:`ProfileStore` is used as
    given.
    """
    if isinstance(store, ProfileStore):
        return store
    if store is None:
        return ProfileStore(default_profile_dir())
    if store is False:
        return ProfileStore(None)
    if store is True:
        return ProfileStore(default_profile_dir())
    return ProfileStore(os.path.expanduser(os.fspath(store)))


def samples_from_steps(
    steps: List[object],
    seconds: List[float],
    calls: int,
    lanes: int = 1,
) -> List[ProfileSample]:
    """Build flushable samples from a plan's steps + accumulated seconds.

    ``seconds[i]`` is the total wall time accumulated by step ``i`` over
    ``calls`` profiled requests; features are scaled by the bucket's lane
    count so the fitted model sees the bytes the step actually moved.
    """
    out: List[ProfileSample] = []
    if calls <= 0:
        return out
    for step, total in zip(steps, seconds):
        step_key = getattr(step, "step_key", "")
        if not step_key or total <= 0.0:
            continue
        bytes_, flops = getattr(step, "cost_features", (0, 0))
        block_rows = int(getattr(step, "block_rows", 0))
        out.append(
            ProfileSample(
                step_key=step_key,
                kind=str(getattr(step, "kind", "")),
                seconds=total / calls,
                calls=calls,
                bytes=int(bytes_) * max(1, lanes),
                flops=int(flops) * max(1, lanes),
                block_rows=block_rows,
            )
        )
    return out
