"""Profiling reports: the Nsight Compute stand-in (paper Sec. 7.3).

Produces the counters the paper's tables use: per-kernel latency, bytes
moved through global memory, kernel-call counts, pipeline utilisation, and
the compute- vs memory-intensive latency split of Sec. 8.3.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.gpu.kernel import KernelMetrics
from repro.gpu.simulator import ModuleMetrics
from repro.runtime.module import CompiledModule


@dataclass
class KernelProfile:
    """One profiled kernel row."""

    name: str
    time_us: float
    load_bytes: float
    store_bytes: float
    flops: float
    lsu_utilization: float
    fma_utilization: float
    grid_blocks: int
    is_compute_intensive: bool

    @classmethod
    def from_metrics(cls, metrics: KernelMetrics) -> "KernelProfile":
        kernel = metrics.kernel
        return cls(
            name=kernel.name,
            time_us=metrics.time_us,
            load_bytes=kernel.load_bytes + kernel.atomic_bytes,
            store_bytes=kernel.store_bytes + kernel.atomic_bytes,
            flops=kernel.total_flops,
            lsu_utilization=metrics.lsu_utilization,
            fma_utilization=metrics.fma_utilization,
            grid_blocks=kernel.grid_blocks,
            is_compute_intensive=(
                metrics.compute_time_us > metrics.memory_time_us
            ),
        )


@dataclass
class ProfileReport:
    """All counters for one compiled module."""

    module_name: str
    compiler: str
    kernels: List[KernelProfile] = field(default_factory=list)

    @property
    def total_time_us(self) -> float:
        return sum(k.time_us for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_us / 1e3

    @property
    def kernel_calls(self) -> int:
        return len(self.kernels)

    @property
    def load_bytes(self) -> float:
        return sum(k.load_bytes for k in self.kernels)

    @property
    def transfer_bytes(self) -> float:
        return sum(k.load_bytes + k.store_bytes for k in self.kernels)

    def latency_split_us(self) -> Tuple[float, float]:
        """(compute-intensive, memory-intensive) kernel latency (Sec. 8.3)."""
        compute = sum(k.time_us for k in self.kernels if k.is_compute_intensive)
        memory = sum(k.time_us for k in self.kernels if not k.is_compute_intensive)
        return compute, memory

    def utilization(self) -> Dict[str, float]:
        """Time-weighted LSU/FMA utilisation (Table 6 counters)."""
        total = max(self.total_time_us, 1e-9)
        return {
            "lsu": sum(k.lsu_utilization * k.time_us for k in self.kernels) / total,
            "fma": sum(k.fma_utilization * k.time_us for k in self.kernels) / total,
        }

    def render(self, top: int = 20) -> str:
        """Text table of the slowest kernels."""
        rows = sorted(self.kernels, key=lambda k: -k.time_us)[:top]
        lines = [
            f"profile: {self.module_name} [{self.compiler}] — "
            f"{self.total_time_ms:.3f} ms, {self.kernel_calls} kernels, "
            f"{self.transfer_bytes / 1e6:.1f} MB moved",
            f"{'kernel':40s} {'us':>9s} {'MB':>8s} {'GFLOP':>8s} "
            f"{'LSU%':>6s} {'FMA%':>6s}",
        ]
        for row in rows:
            lines.append(
                f"{row.name[:40]:40s} {row.time_us:9.2f} "
                f"{(row.load_bytes + row.store_bytes) / 1e6:8.2f} "
                f"{row.flops / 1e9:8.2f} {row.lsu_utilization * 100:6.1f} "
                f"{row.fma_utilization * 100:6.1f}"
            )
        return "\n".join(lines)


def profile_module(module: CompiledModule) -> ProfileReport:
    """Simulate and collect the full counter set for a module."""
    metrics: ModuleMetrics = module.simulate()
    report = ProfileReport(module_name=module.name, compiler=module.compiler)
    report.kernels = [KernelProfile.from_metrics(m) for m in metrics.kernels]
    return report


# ---- execution-engine (wall-clock) profiles ---------------------------------
#
# The counters above come from the analytic GPU model; the plan-based numpy
# execution engine reports *measured* wall time instead. Both surface through
# this module so serving and simulation share one profiling namespace.


@dataclass
class StepTiming:
    """Accumulated wall time of one execution-plan step."""

    index: int
    name: str           # fused steps: "+"-joined constituent TE names
    kind: str           # einsum | matmul | map | reduce | const | fused
    calls: int
    total_seconds: float
    # Task-graph executor only: time between a step becoming ready and a
    # worker starting it, accumulated across profiled requests.
    queue_seconds: float = 0.0
    # Durable content identity (cache.keys.step_content_key): joins this
    # row with persisted profile-store rows across recompiles. Display
    # names are not durable — fusion regrouping and re-tiling rename steps.
    step_key: str = ""

    @property
    def mean_us(self) -> float:
        if self.calls == 0:
            return 0.0
        return self.total_seconds / self.calls * 1e6

    @property
    def mean_queue_us(self) -> float:
        if self.calls == 0:
            return 0.0
        return self.queue_seconds / self.calls * 1e6


# A tiled chain's sub-steps are named "<chain>[blk i/n]" (runtime.tiling);
# the chain name itself is "+"-joined like any fused step, so the block
# suffix must be recognised — not split on — when aggregating rows.
_TILED_STEP = re.compile(r"^(?P<base>.+)\[blk (?P<i>\d+)/(?P<n>\d+)\]$")


def aggregate_tiled_steps(steps: List[StepTiming]) -> List[StepTiming]:
    """Collapse per-block rows of one tiled chain into a single row.

    Eight ``softmax[blk i/8]`` rows each carrying 1/8th of the chain's time
    would individually sort below unrelated steps and flood the table;
    reporting one ``softmax[blk x8]`` row with the summed time keeps
    attribution whole. Non-tiled rows pass through untouched, in order.
    """
    out: List[StepTiming] = []
    merged: Dict[str, StepTiming] = {}
    for s in steps:
        m = _TILED_STEP.match(s.name)
        if m is None:
            out.append(s)
            continue
        base, n = m.group("base"), m.group("n")
        agg = merged.get(base)
        if agg is None:
            agg = replace(s, name=f"{base}[blk x{n}]")
            merged[base] = agg
            out.append(agg)
        else:
            agg.total_seconds += s.total_seconds
            agg.queue_seconds += s.queue_seconds
    return out


@dataclass
class SchedulerStats:
    """Task-graph scheduler counters for one session's plan.

    ``occupancy`` is busy-time over scheduled worker-time: the fraction of
    the workers' wall clock spent inside step closures rather than waiting
    on the ready deques (1.0 means dispatch overhead was invisible).
    """

    tasks: int
    data_edges: int
    conflict_edges: int
    critical_path: int
    max_ready_width: int
    requests: int
    workers: int
    occupancy: float

    def render(self) -> str:
        return (
            f"scheduler: {self.tasks} tasks "
            f"({self.data_edges}+{self.conflict_edges} edges), "
            f"critical path {self.critical_path}, "
            f"ready-width {self.max_ready_width}, "
            f"{self.workers} workers, "
            f"occupancy {self.occupancy * 100:.1f}%"
        )


@dataclass
class BatchStats:
    """Dynamic-batching counters for one session or server.

    ``mean_occupancy`` is the mean fraction of batch lanes that carried a
    real request (padding lanes excluded); queue-wait percentiles are
    filled in by the :class:`~repro.runtime.batching.BatchingServer`,
    which is the layer that queues (a bare session never waits).
    """

    batches: int
    batched_requests: int
    mean_occupancy: float
    queue_wait_p50_us: float = 0.0
    queue_wait_p95_us: float = 0.0
    queue_wait_p99_us: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    def render(self) -> str:
        text = (
            f"batching: {self.batches} batches, "
            f"{self.batched_requests} batched requests, "
            f"mean batch {self.mean_batch_size:.2f}, "
            f"occupancy {self.mean_occupancy * 100:.1f}%"
        )
        if self.queue_wait_p50_us or self.queue_wait_p99_us:
            text += (
                f"; queue wait p50/p95/p99 = "
                f"{self.queue_wait_p50_us:.0f}/"
                f"{self.queue_wait_p95_us:.0f}/"
                f"{self.queue_wait_p99_us:.0f} us"
            )
        return text


@dataclass
class ExecutionProfile:
    """Measured per-request and per-step latency of an inference session."""

    session_name: str
    requests: int
    total_seconds: float
    workspace_bytes: int
    arenas_allocated: int
    # Arena-pool accounting: arenas dropped past the max_pool bound, arenas
    # idle in the pools at report time, and the most arenas ever live at
    # once (in-use + pooled) — what a sharded dispatcher reads to size
    # replicas.
    arenas_trimmed: int = 0
    arenas_pooled: int = 0
    pool_high_water: int = 0
    steps: List[StepTiming] = field(default_factory=list)
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    batching: Optional[BatchStats] = None
    # One-line plan-optimizer summary (None for unoptimized plans).
    optimizer_summary: Optional[str] = None
    # Task-graph scheduler counters (None for wave/serial plans).
    scheduler: Optional[SchedulerStats] = None

    @property
    def requests_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.requests / self.total_seconds

    @property
    def mean_latency_us(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_seconds / self.requests * 1e6

    def render(self, top: int = 20) -> str:
        """Text table of the slowest steps plus session-level throughput."""
        lines = [
            f"serving profile: {self.session_name} — "
            f"{self.requests} requests, "
            f"{self.requests_per_second:.1f} req/s, "
            f"{self.mean_latency_us:.1f} us mean latency "
            f"(p50/p95/p99 = {self.p50_us:.0f}/{self.p95_us:.0f}/"
            f"{self.p99_us:.0f} us), "
            f"{self.workspace_bytes / 1e6:.2f} MB arena "
            f"x{self.arenas_allocated}",
        ]
        if self.arenas_trimmed or self.pool_high_water:
            lines.append(
                f"arena pool: high water {self.pool_high_water}, "
                f"{self.arenas_pooled} pooled, "
                f"{self.arenas_trimmed} trimmed"
            )
        if self.batching is not None:
            lines.append(self.batching.render())
        if self.optimizer_summary is not None:
            lines.append(self.optimizer_summary)
        if self.scheduler is not None:
            lines.append(self.scheduler.render())
        timed = aggregate_tiled_steps(
            [s for s in self.steps if s.calls > 0]
        )
        if not timed:
            lines.append("(per-step timing disabled; profile=True to enable)")
            return "\n".join(lines)
        step_total = sum(s.total_seconds for s in timed) or 1e-12
        shown = sorted(timed, key=lambda s: -s.total_seconds)[:top]
        queue_col = any(s.queue_seconds > 0.0 for s in shown)
        # Fused step names concatenate their constituent TEs and routinely
        # exceed any fixed column; size the column to what is shown instead
        # of truncating attribution away.
        width = max(36, *(len(s.name) for s in shown))
        header = (
            f"{'step':{width}s} {'kind':>7s} {'calls':>7s} {'mean us':>9s} "
            f"{'%':>6s}"
        )
        if queue_col:
            header += f" {'wait us':>9s}"
        lines.append(header)
        for s in shown:
            row = (
                f"{s.name:{width}s} {s.kind:>7s} {s.calls:7d} "
                f"{s.mean_us:9.2f} {s.total_seconds / step_total * 100:6.1f}"
            )
            if queue_col:
                row += f" {s.mean_queue_us:9.2f}"
            lines.append(row)
        return "\n".join(lines)
