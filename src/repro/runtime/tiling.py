"""Block-level tiling of map→reduce→map chains (PowerFusion-style).

Operator-level fusion (``plan_opt`` pass 2) only collapses single-consumer
``map`` chains; softmax, layernorm and attention-score chains — everywhere
in BERT/Swin/MMoE — are map→reduce→map and still materialise their
intermediates (the exp grid, the per-row sums) at full tensor size through
the arena on every request. This module tiles such chains along a leading
*non-reduced* row axis into cache-blocked sub-steps: each block computes
the whole chain — elementwise pre-map, reduction, post-map — inside a
per-worker scratch block sized by a footprint model against a configurable
cache budget, writing only the chain's final output rows to the arena.

Bit-identity is preserved by construction (the swin lesson): blocks
partition the row axis only, never a reduction axis, so every output row's
floating-point accumulation involves exactly the same elements in exactly
the same numpy reduction order as the untiled plan; slicing rows changes
*which* rows a step computes, not *how* any one row is computed.

Detection runs over the optimizer's :class:`~repro.runtime.plan_opt.
StepGroup` list (post-fusion, pre-levelisation). A chain is grown backward
from a terminal group; a producer group is internalised only when every
read of its output is *row-aligned* (first index is the reader's own row
variable, untouched elsewhere) and every consumer lives inside the chain.
Einsum- and const-kind steps never join a chain (layernorm's sum-of-squares
lowers matmul-shaped and stays an external aligned read).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cache.keys import step_content_key
from repro.errors import PlanningError
from repro.graph.te_program import TENode, TEProgram
from repro.runtime.plan_opt import StepGroup
from repro.te.expr import IterVar, Range, TensorRead, Var
from repro.te.tensor import ComputeOp, Tensor
from repro.te.traversal import collect_reads, free_vars, replace_tensor_reads

# Read classes relative to a member's leading row axis.
ALIGNED = "aligned"      # T[row, ...] with row absent from trailing indices
INVARIANT = "invariant"  # row variable absent from every index
POISON = "poison"        # row variable used any other way: not tileable

# Scratch blocks are carved from one flat per-worker buffer; 64-byte slots
# keep every block cache-line aligned (and trivially float64 aligned).
SCRATCH_ALIGN = 64

# Auto-chosen block counts are capped: past this, per-block python dispatch
# overhead outweighs any further footprint shrink. Explicit block sizes
# (tests) are exempt.
MAX_AUTO_BLOCKS = 32


def _align_scratch(nbytes: int) -> int:
    return -(-nbytes // SCRATCH_ALIGN) * SCRATCH_ALIGN


def _row_elements(shape: Sequence[int]) -> int:
    """Elements per row (product of trailing dims)."""
    return math.prod(shape[1:]) if len(shape) > 1 else 1


# ---- read classification ----------------------------------------------------


def _classify_read(read: TensorRead, row: str, rows: int) -> str:
    """Classify one read relative to the reader's row variable."""
    indices = read.indices
    if indices:
        first = indices[0]
        rest: Set[str] = set()
        for i in indices[1:]:
            rest |= free_vars(i)
        if isinstance(first, Var) and first.name == row:
            shape = tuple(getattr(read.tensor, "shape", ()))
            if row not in rest and shape and shape[0] == rows:
                return ALIGNED
            return POISON
    used: Set[str] = set()
    for i in indices:
        used |= free_vars(i)
    return POISON if row in used else INVARIANT


def member_read_classes(node: TENode, rows: int) -> Optional[Dict[int, str]]:
    """Per-tensor read classes for one member, or ``None`` if untileable.

    A member is untileable when any read is :data:`POISON` or when two
    reads of the same tensor disagree (the block rewrite substitutes per
    tensor, not per read site).
    """
    op = node.tensor.op
    if op is None or not op.axes:
        return None
    row = op.axes[0].name
    classes: Dict[int, str] = {}
    for read in collect_reads(op.body):
        cls = _classify_read(read, row, rows)
        if cls == POISON:
            return None
        prev = classes.setdefault(id(read.tensor), cls)
        if prev != cls:
            return None
    return classes


# ---- chain detection --------------------------------------------------------


@dataclass
class TiledChain:
    """One detected chain plus its chosen blocking.

    ``member_nodes`` is every original TE node the chain computes, in
    dependency order (group order, each group's terminal last); every one
    except ``terminal`` lives in per-worker scratch, never the arena.
    """

    index: int
    groups: List                      # StepGroups, chain order
    terminal: TENode
    rows: int
    block_rows: int
    block_ranges: List[Tuple[int, int]]
    member_nodes: List[TENode]
    internal_ids: Set[int]            # member tensors kept in scratch
    aligned_reads: List[Tensor]       # externals sliced per block
    invariant_reads: List[Tensor]     # externals passed through whole
    read_classes: Dict[int, Dict[int, str]]  # node index -> tensor id -> class
    scratch_offsets: Dict[int, Tuple[int, int]]  # tensor id -> (offset, nbytes)
    scratch_bytes: int
    per_row_bytes: int

    @property
    def name(self) -> str:
        return "+".join(g.name for g in self.groups)

    @property
    def num_blocks(self) -> int:
        return len(self.block_ranges)


class _GroupInfo:
    """Detection-time facts about one step group."""

    __slots__ = ("group", "eligible", "rows", "has_reduce", "node_classes",
                 "tensor_classes")

    def __init__(self, group, kinds) -> None:
        self.group = group
        self.rows = 0
        self.has_reduce = any(
            kinds[m.index] == "reduce" for m in group.members
        )
        self.node_classes: Dict[int, Dict[int, str]] = {}
        self.tensor_classes: Dict[int, str] = {}
        self.eligible = self._analyze(group, kinds)

    def _analyze(self, group, kinds) -> bool:
        shape = tuple(group.terminal.tensor.shape)
        if not shape or shape[0] < 2:
            return False
        self.rows = shape[0]
        for m in group.members:
            if kinds[m.index] not in ("map", "reduce"):
                return False
            if tuple(m.tensor.shape[:1]) != (self.rows,):
                return False
            classes = member_read_classes(m, self.rows)
            if classes is None:
                return False
            self.node_classes[m.index] = classes
            for tid, cls in classes.items():
                prev = self.tensor_classes.setdefault(tid, cls)
                if prev != cls:
                    # Mixed across members is representable at runtime but
                    # the internalisation rules below want one answer.
                    self.tensor_classes[tid] = POISON
        return True


def _block_ranges(rows: int, block_rows: int) -> List[Tuple[int, int]]:
    """Partition ``[0, rows)`` into consecutive blocks (last may be short).

    A module-level seam so mutation tests can seed a wrong boundary and
    assert :func:`validate_partition` (or the bit-identity oracle) catches
    it.
    """
    return [
        (lo, min(rows, lo + block_rows))
        for lo in range(0, rows, block_rows)
    ]


def validate_partition(rows: int, ranges: Sequence[Tuple[int, int]]) -> None:
    """Blocks must tile ``[0, rows)`` exactly: no gap, overlap or reorder.

    Anything else silently recomputes or skips rows, so this raises
    :class:`~repro.errors.PlanningError` rather than diagnose-and-continue.
    """
    expect = 0
    for lo, hi in ranges:
        if lo != expect or hi <= lo:
            raise PlanningError(
                f"tiled blocks do not partition [0, {rows}): "
                f"block [{lo}, {hi}) follows row {expect}"
            )
        expect = hi
    if expect != rows:
        raise PlanningError(
            f"tiled blocks cover [0, {expect}) but the chain has "
            f"{rows} rows"
        )


def detect_chains(
    program: TEProgram,
    groups: Sequence,
    kinds: Dict[int, str],
    lanes: int,
    budget: int,
    block_rows: Optional[int] = None,
    cost_model: Optional[object] = None,
) -> List[TiledChain]:
    """Find tileable chains and choose their blocking.

    With ``block_rows`` every eligible chain is tiled at that size (the
    test hook); otherwise a chain is tiled only when its working set
    exceeds ``budget`` bytes — the footprint model's profitability gate —
    with the block size chosen so one block's rows fit the budget. A
    ``cost_model`` carrying measured ``tiled@<blk>`` rows for a chain
    overrides the static block size with the measured-best one.
    """
    infos = {g.position: _GroupInfo(g, kinds) for g in groups}
    # A node duplicated into several consumer groups (tuned multi-consumer
    # inlining) is recomputed per group and owns no arena slot of its own;
    # internalising any of those groups would hand the chain a member whose
    # identity the tiling certificate cannot track. Such groups stay untiled.
    owner_count: Dict[int, int] = {}
    for g in groups:
        for m in g.members:
            owner_count[m.index] = owner_count.get(m.index, 0) + 1
    for g in groups:
        if any(owner_count[m.index] > 1 for m in g.members):
            infos[g.position].eligible = False
    by_pos = {g.position: g for g in groups}
    by_terminal = {id(g.terminal.tensor): g.position for g in groups}
    readers: Dict[int, List[int]] = {}
    for g in groups:
        for t in g.reads:
            readers.setdefault(id(t), []).append(g.position)

    claimed: Set[int] = set()
    chains: List[TiledChain] = []
    for seed in sorted(groups, key=lambda g: -g.position):
        if seed.position in claimed or not infos[seed.position].eligible:
            continue
        members = {seed.position}
        changed = True
        while changed:
            changed = False
            for pos in list(members):
                info = infos[pos]
                for tid, cls in info.tensor_classes.items():
                    if cls != ALIGNED:
                        continue
                    ppos = by_terminal.get(tid)
                    if ppos is None or ppos in members or ppos in claimed:
                        continue
                    pinfo = infos[ppos]
                    if not pinfo.eligible or pinfo.rows != info.rows:
                        continue
                    if program.is_output(by_pos[ppos].terminal.tensor):
                        continue
                    # Internalising removes the tensor from the arena, so
                    # *every* consumer must sit inside the chain and read
                    # it row-aligned (a single whole-tensor reader would
                    # need the arena copy the blocks no longer write).
                    rdrs = readers.get(tid, [])
                    if not rdrs or any(r not in members for r in rdrs):
                        continue
                    if any(
                        infos[r].tensor_classes.get(tid) != ALIGNED
                        for r in rdrs
                    ):
                        continue
                    members.add(ppos)
                    changed = True
        if len(members) < 2:
            continue
        chain_groups = [by_pos[p] for p in sorted(members)]
        if not any(infos[p].has_reduce for p in members):
            continue
        chain = _build_chain(
            program, chain_groups, infos, len(chains), lanes, budget,
            block_rows, cost_model,
        )
        if chain is None:
            continue
        claimed.update(members)
        chains.append(chain)
    chains.sort(key=lambda c: c.groups[-1].position)
    for i, c in enumerate(chains):
        c.index = i
    return chains


def _measured_block_totals(
    member_nodes: Sequence[TENode],
    rows: int,
    cost_model: Optional[object],
) -> Dict[int, float]:
    """Measured whole-chain seconds by candidate block size (may be empty).

    Profiled tiled runs record one ``tiled@<blk>`` variant per block size
    under the chain's content key; each total is measured per-block seconds
    times the block count that size implies at this row extent.
    """
    if cost_model is None or not getattr(
        cost_model, "has_measurements", lambda: False
    )():
        return {}
    variants = cost_model.tiled_variants(step_content_key(member_nodes))
    return {
        blk: seconds * math.ceil(rows / blk)
        for blk, seconds in variants.items()
        if 0 < blk < rows
    }


def _measured_untiled_seconds(
    chain_groups: Sequence, cost_model: Optional[object]
) -> Optional[float]:
    """Measured seconds of replaying the chain's groups untiled.

    Untiled, each group becomes one plan step keyed over its members (a
    tile-off profiling run records these), so the comparison point for
    tiling is just the sum of the group rows. ``None`` when any group is
    unmeasured — a partial sum would bias the verdict toward tiling.
    """
    if cost_model is None:
        return None
    total = 0.0
    for g in chain_groups:
        measured = cost_model.measured_seconds(
            step_content_key(list(g.members))
        )
        if measured is None:
            return None
        total += measured
    return total


def _build_chain(
    program: TEProgram,
    chain_groups: List,
    infos: Dict[int, "_GroupInfo"],
    index: int,
    lanes: int,
    budget: int,
    block_rows: Optional[int],
    cost_model: Optional[object] = None,
) -> Optional[TiledChain]:
    """Assemble one chain, deciding its block size (or rejecting it)."""
    terminal = chain_groups[-1].terminal
    rows = infos[chain_groups[-1].position].rows
    member_nodes: List[TENode] = [
        m for g in chain_groups for m in g.members
    ]
    internal_ids = {
        id(m.tensor) for m in member_nodes if m is not terminal
    }
    read_classes = {}
    for g in chain_groups:
        read_classes.update(infos[g.position].node_classes)

    # One external tensor may be row-aligned for one member and invariant
    # for another (e.g. a bias both broadcast and gathered); it then needs
    # both a sliced block clone and a whole-tensor passthrough.
    aligned_ids: Set[int] = set()
    invariant_ids: Set[int] = set()
    for classes in read_classes.values():
        for tid, cls in classes.items():
            if tid in internal_ids:
                continue
            (aligned_ids if cls == ALIGNED else invariant_ids).add(tid)
    aligned_reads: List[Tensor] = []
    invariant_reads: List[Tensor] = []
    seen: Set[int] = set()
    for g in chain_groups:
        for t in g.reads:
            tid = id(t)
            if tid in internal_ids or tid in seen:
                continue
            seen.add(tid)
            if tid in aligned_ids:
                aligned_reads.append(t)
            if tid in invariant_ids:
                invariant_reads.append(t)

    # Footprint model: bytes one row drags through cache across the whole
    # chain — every scratch intermediate, every sliced external and the
    # terminal's output row, times the plan's batch lanes.
    per_row = lanes * 8 * (
        sum(_row_elements(m.tensor.shape) for m in member_nodes)
        + sum(_row_elements(t.shape) for t in aligned_reads)
    )
    if block_rows is not None:
        blk = max(1, min(int(block_rows), rows))
    else:
        totals = _measured_block_totals(member_nodes, rows, cost_model)
        untiled = _measured_untiled_seconds(chain_groups, cost_model)
        if totals and untiled is not None and untiled <= min(totals.values()):
            return None  # measured: untiled replay beats every blocking
        if totals:
            blk = min(totals, key=lambda b: (totals[b], b))
        elif per_row * rows <= budget:
            return None  # fits in cache already: tiling is pure overhead
        else:
            blk = max(1, min(budget // per_row, rows))
            min_blk = -(-rows // MAX_AUTO_BLOCKS)
            blk = max(blk, min_blk)
    ranges = _block_ranges(rows, blk)
    if len(ranges) < 2:
        return None
    validate_partition(rows, ranges)

    offsets: Dict[int, Tuple[int, int]] = {}
    off = 0
    for m in member_nodes:
        if m is terminal:
            continue
        nbytes = lanes * blk * _row_elements(m.tensor.shape) * 8
        offsets[id(m.tensor)] = (off, nbytes)
        off += _align_scratch(nbytes)

    return TiledChain(
        index=index,
        groups=chain_groups,
        terminal=terminal,
        rows=rows,
        block_rows=blk,
        block_ranges=ranges,
        member_nodes=member_nodes,
        internal_ids=internal_ids,
        aligned_reads=aligned_reads,
        invariant_reads=invariant_reads,
        read_classes=read_classes,
        scratch_offsets=offsets,
        scratch_bytes=off,
        per_row_bytes=per_row,
    )


# ---- tiled step groups ------------------------------------------------------


class TiledStepGroup(StepGroup):
    """One cache-block of a tiled chain, as an optimizer step group.

    Downstream layers treat it like any :class:`StepGroup` — its members
    are every original node the chain computes (so characterisation and
    work estimates see the real computation) and its terminal/reads drive
    dependency edges: every block "writes" the chain terminal (disjoint
    row slices) and reads only the chain's external tensors.
    """

    def __init__(self, chain: TiledChain, block_index: int) -> None:
        reads: List[Tensor] = []
        seen: Set[int] = set()
        for t in list(chain.aligned_reads) + list(chain.invariant_reads):
            if id(t) not in seen:
                seen.add(id(t))
                reads.append(t)
        super().__init__(
            position=0,
            members=list(chain.member_nodes),
            terminal=chain.terminal,
            reads=reads,
        )
        self.chain = chain
        self.block_index = block_index

    @property
    def name(self) -> str:  # type: ignore[override]
        return (
            f"{self.chain.name}"
            f"[blk {self.block_index + 1}/{self.chain.num_blocks}]"
        )

    @property
    def row_range(self) -> Tuple[int, int]:
        return self.chain.block_ranges[self.block_index]

    def work_elements(self, lanes: int) -> int:
        """Elements this block actually moves (full-chain work, scaled)."""
        lo, hi = self.row_range
        total = sum(lanes * m.tensor.num_elements for m in self.members)
        return total * (hi - lo) // max(1, self.chain.rows)


def make_tiled_groups(chain: TiledChain) -> List["TiledStepGroup"]:
    """One :class:`TiledStepGroup` per block, in row order."""
    return [TiledStepGroup(chain, b) for b in range(chain.num_blocks)]


def apply_tiling(groups: List, chains: List[TiledChain]) -> List:
    """Replace each chain's groups with its per-block tiled groups."""
    dropped: Set[int] = set()
    replaced: Dict[int, TiledChain] = {}
    for c in chains:
        validate_partition(c.rows, c.block_ranges)
        for g in c.groups[:-1]:
            dropped.add(g.position)
        replaced[c.groups[-1].position] = c
    out: List = []
    for g in groups:
        if g.position in dropped:
            continue
        c = replaced.get(g.position)
        if c is None:
            out.append(g)
        else:
            out.extend(make_tiled_groups(c))
    for pos, g in enumerate(out):
        g.position = pos
    return out


# ---- runtime: scratch pool + block closures ---------------------------------


class ScratchPool:
    """Thread-safe free list of flat per-worker scratch buffers.

    Wave dispatch and the graph executor run blocks concurrently; each
    block run borrows one buffer (sized for the plan's largest chain) and
    returns it, so steady-state serving allocates nothing.
    """

    def __init__(self, nbytes: int, max_keep: int = 32) -> None:
        self.nbytes = nbytes
        self.allocated = 0
        self._free: List[np.ndarray] = []
        self._lock = threading.Lock()
        self._max_keep = max_keep

    def acquire(self) -> np.ndarray:
        with self._lock:
            if self._free:
                return self._free.pop()
            self.allocated += 1
        return np.empty(self.nbytes, dtype=np.uint8)

    def release(self, buf: np.ndarray) -> None:
        with self._lock:
            if len(self._free) < self._max_keep:
                self._free.append(buf)


class _BlockPlan:
    """Compiled steps + binding recipe for one block extent."""

    __slots__ = ("runs", "aliases", "passthrough", "scratch", "term_key",
                 "block_tensors")

    def __init__(self) -> None:
        self.runs = []         # compiled step closures, chain order
        self.aliases = []      # (block tensor key, source tensor key)
        self.passthrough = []  # keys copied whole from the outer table
        self.scratch = []      # (key, byte offset, nbytes, view shape)
        self.term_key = 0
        # Keep the rewritten tensors alive: closures key the values table
        # by id(), which must not be recycled underneath them.
        self.block_tensors = []


def _compile_block_plan(
    chain: TiledChain, extent: int, batch_size: Optional[int]
) -> _BlockPlan:
    """Rewrite and compile every chain member at one block extent.

    Each member gets a clone whose leading axis spans ``extent`` rows;
    reads of in-chain tensors and row-aligned externals are redirected to
    block clones (indices unchanged — the row variable now sweeps the
    block), invariant reads keep their original tensors. Compilation goes
    through the executor's own step compiler, so block steps run the same
    numpy kernels per row as the untiled plan.
    """
    from repro.runtime.executor import EXEC_ITEMSIZE, compile_plan_step

    bp = _BlockPlan()
    lanes_shape = () if batch_size is None else (int(batch_size),)
    clone: Dict[int, Tensor] = {}
    for t in chain.aligned_reads:
        bt = Tensor(
            (extent,) + tuple(t.shape[1:]), dtype=t.dtype, name=t.name
        )
        clone[id(t)] = bt
        bp.aliases.append((id(bt), id(t)))
        bp.block_tensors.append(bt)
    bp.passthrough = [id(t) for t in chain.invariant_reads]

    for node in chain.member_nodes:
        classes = chain.read_classes[node.index]
        op = node.tensor.op

        def sub(read, clone=clone, classes=classes):
            target = clone.get(id(read.tensor))
            if target is None or classes.get(id(read.tensor)) != ALIGNED:
                return None
            return TensorRead(target, read.indices)

        body = replace_tensor_reads(op.body, sub)
        row = op.axes[0]
        bt = Tensor(
            (extent,) + tuple(node.tensor.shape[1:]),
            dtype=node.tensor.dtype,
            name=node.tensor.name,
            op=ComputeOp(
                (IterVar(Var(row.name), Range(0, extent), "spatial"),)
                + tuple(op.axes[1:]),
                body,
            ),
        )
        clone[id(node.tensor)] = bt
        bp.block_tensors.append(bt)
        step = compile_plan_step(
            bt, index=len(bp.runs), key=id(bt), batch_size=batch_size
        )
        bp.runs.append(step.run)
        if node is chain.terminal:
            bp.term_key = id(bt)
        else:
            offset, _full = chain.scratch_offsets[id(node.tensor)]
            shape = lanes_shape + (extent,) + tuple(node.tensor.shape[1:])
            bp.scratch.append(
                (id(bt), offset, math.prod(shape) * EXEC_ITEMSIZE, shape)
            )
    return bp


class ChainRuntime:
    """Executable form of one chain: per-extent compiled block plans."""

    def __init__(
        self,
        chain: TiledChain,
        batch_size: Optional[int],
        pool: ScratchPool,
    ) -> None:
        from repro.runtime.executor import EXEC_DTYPE

        self.chain = chain
        self.pool = pool
        self._batched = batch_size is not None
        self._dtype = EXEC_DTYPE
        self._term_source = id(chain.terminal.tensor)
        self._plans = {
            extent: _compile_block_plan(chain, extent, batch_size)
            for extent in sorted({hi - lo for lo, hi in chain.block_ranges})
        }

    def block_run(self, block_index: int):
        """The run closure for one block: bind views, replay the chain."""
        lo, hi = self.chain.block_ranges[block_index]
        bp = self._plans[hi - lo]
        batched = self._batched
        pool = self.pool
        dtype = self._dtype
        term_source = self._term_source

        def run_block(v):
            buf = pool.acquire()
            try:
                local = {}
                for bk, sk in bp.aliases:
                    src = v[sk]
                    local[bk] = src[:, lo:hi] if batched else src[lo:hi]
                for k in bp.passthrough:
                    local[k] = v[k]
                for bk, offset, nbytes, shape in bp.scratch:
                    local[bk] = (
                        buf[offset:offset + nbytes].view(dtype).reshape(shape)
                    )
                out = v[term_source]
                local[bp.term_key] = out[:, lo:hi] if batched else out[lo:hi]
                for run in bp.runs:
                    run(local)
            finally:
                pool.release(buf)

        return run_block
