"""Mega-step execution: the plan as one persistent task graph.

PR 5's wave scheduler replays the optimized step list wave by wave, with a
worker-pool dispatch *and a barrier* after every wave. For deep models the
barrier is the cost: LSTM replays hundreds of small waves per request, and
each one pays future creation, handoff and a join even though most waves
chain straight into the next. MPK's observation (PAPERS.md) is that this
dispatch overhead disappears once the whole program becomes a single
persistent task graph with an internal scheduler — the per-request path
collapses to "reset counters, bind feeds, kick root tasks, wait on sinks".

This module is that analogue for the numpy execution engine:

* :func:`build_task_graph` compiles an :class:`~repro.runtime.executor.
  ExecutionPlan` (optimized or not, batched or not) into an immutable
  dependency table at plan time: per-task predecessor counts, successor
  lists, and **byte-conflict edges** — WAR/WAW orderings derived from the
  :class:`~repro.runtime.memory_planner.MemoryPlan` wherever two steps
  touch overlapping arena bytes without a data dependency (buffer reuse
  across time, in-place elision). Tasks are tagged compute- vs
  memory-intensive via the paper's Sec. 5.3 characterisation so the
  scheduler can bias worker affinity.
* The table is *certified* before first use: the verifier's extended
  arena-hazard pass (:func:`repro.verify.hazards.check_schedule_cover`)
  statically proves every byte-conflicting step pair is ordered by the
  dependency table, raising :class:`~repro.errors.PlanningError`
  otherwise. A concurrent executor that silently corrupts arenas is
  exactly the bug class this repo's verifier exists for.
* :class:`GraphExecutor` runs one request: copy the predecessor-count
  template, push the roots, and let workers pull ready tasks from shared
  deques with **no per-wave barriers**. A worker finishing a task runs a
  newly-enabled successor inline (chain continuation), so a dependency
  chain stays on one thread with zero handoffs — the LSTM case.

Correctness is testable, not hoped for: the executor takes an injectable
scheduler policy. :class:`ScriptedScheduler` executes any caller-chosen
topological order deterministically and :class:`AdversarialScheduler`
always picks the most-recently-enabled task, which turns "is every legal
interleaving bit-identical?" into an enumerable property (the serial
replay of the same plan stays available as the differential oracle via
:meth:`ExecutionPlan.execute_serial`).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.characterize import characterize_program
from repro.core.parallel import WorkerPool, default_worker_count
from repro.errors import ExecutionError, PlanningError

# Worker-affinity tags (paper Sec. 5.3 characterisation).
TAG_COMPUTE = "compute"
TAG_MEMORY = "memory"

# One process-wide persistent pool shared by every graph executor: task
# work is GIL-releasing numpy, so a single bounded thread set serves all
# concurrent sessions without per-request thread churn.
GRAPH_POOL = WorkerPool(persistent=True)


@dataclass(frozen=True)
class TaskGraphStats:
    """Static shape of one compiled task graph (``repro plan-stats``)."""

    tasks: int
    data_edges: int
    conflict_edges: int
    roots: int
    sinks: int
    critical_path: int      # longest dependency chain, in tasks
    max_ready_width: int    # widest dependency level (peak parallelism)
    compute_tasks: int
    memory_tasks: int

    def render(self) -> str:
        return "\n".join([
            f"tasks:             {self.tasks} "
            f"({self.compute_tasks} compute-intensive, "
            f"{self.memory_tasks} memory-intensive)",
            f"edges:             {self.data_edges} data + "
            f"{self.conflict_edges} byte-conflict",
            f"roots/sinks:       {self.roots} / {self.sinks}",
            f"critical path:     {self.critical_path} tasks",
            f"max ready-width:   {self.max_ready_width}",
        ])


class Task:
    """One schedulable unit: a plan step plus its static scheduling tag."""

    __slots__ = ("position", "name", "kind", "tag", "step")

    def __init__(self, position: int, name: str, kind: str, tag: str,
                 step) -> None:
        self.position = position
        self.name = name
        self.kind = kind
        self.tag = tag
        self.step = step  # PlanStep; None in structure-only (stats) graphs

    def __repr__(self) -> str:
        return f"<Task#{self.position} {self.name} [{self.kind}/{self.tag}]>"


class TaskGraph:
    """Immutable dependency table over one execution plan's steps.

    ``successors[i]`` lists the positions that must wait for task ``i``;
    ``pred_template[i]`` is the number of predecessors of task ``i`` — the
    per-request counters start as a copy of this template ("reset
    counters" is one list copy). ``view``/``memory_plan`` are kept so the
    hazard-cover certification can be re-run (:meth:`verify_cover`).
    """

    def __init__(
        self,
        tasks: List[Task],
        successors: List[Tuple[int, ...]],
        pred_template: List[int],
        stats: TaskGraphStats,
        view,
        memory_plan,
    ) -> None:
        self.tasks = tasks
        self.successors = successors
        self.pred_template = pred_template
        self.stats = stats
        self.view = view
        self.memory_plan = memory_plan
        self.roots: Tuple[int, ...] = tuple(
            i for i, n in enumerate(pred_template) if n == 0
        )
        self.sinks: Tuple[int, ...] = tuple(
            i for i, s in enumerate(successors) if not s
        )

    def __len__(self) -> int:
        return len(self.tasks)

    def verify_cover(self):
        """Re-run the hazard-cover certification; returns diagnostics.

        The static proof that this dependency table orders every WAR/WAW
        byte-conflicting step pair the memory plan knows about. Mutation
        tests drive this directly after seeding scheduler defects.
        """
        from repro.verify.hazards import check_schedule_cover

        return check_schedule_cover(self.view, self.memory_plan,
                                    self.successors)

    def __repr__(self) -> str:
        return (
            f"<TaskGraph {len(self.tasks)} tasks, "
            f"{self.stats.data_edges}+{self.stats.conflict_edges} edges, "
            f"critical path {self.stats.critical_path}>"
        )


# ---- construction -----------------------------------------------------------


def _plan_entries(plan):
    """(name, output tensor, external reads, member nodes) per step, plus
    the verifier view the positions are expressed over."""
    opt = plan.optimization
    if opt is not None:
        entries = [
            (g.name, g.terminal.tensor, list(g.reads), list(g.members))
            for g in opt.groups
        ]
        return entries, opt.step_view
    entries = [
        (n.name, n.tensor, list(n.inputs), [n])
        for n in plan.program.nodes
    ]
    return entries, plan.program


def _build_structure(
    entries, memory_plan
) -> Tuple[List[Tuple[int, ...]], List[int], int, int]:
    """Dependency table construction: data edges + byte-conflict edges.

    Data edges connect a producer position to every position reading its
    tensor. Conflict edges serialize, in serial-replay order, every pair
    of positions that touch overlapping arena byte ranges through
    *different* tensors — the buffer-reuse WAR/WAW pairs that the wave
    scheduler used to order with barriers. Readers of the same bytes never
    conflict with each other.
    """
    n = len(entries)
    # A tensor may have several writers: a tiled chain's blocks (see
    # runtime.tiling) each write one disjoint row slice of the chain
    # terminal. Every reader gets a data edge from *all* of them; sibling
    # blocks never pair with each other (disjoint bytes by construction).
    producer: Dict[int, List[int]] = {}
    for pos, (_, t, _, _) in enumerate(entries):
        producer.setdefault(id(t), []).append(pos)
    readers: Dict[int, List[int]] = {}
    succ: List[Set[int]] = [set() for _ in range(n)]
    data_pairs: Set[Tuple[int, int]] = set()

    for j, (_, _, reads, _) in enumerate(entries):
        for t in reads:
            readers.setdefault(id(t), []).append(j)
            for i in producer.get(id(t), ()):
                if i == j:
                    continue
                if i > j:
                    raise PlanningError(
                        "task graph construction requires steps in "
                        f"topological order (position {j} reads "
                        f"position {i})"
                    )
                succ[i].add(j)
                data_pairs.add((i, j))
    data_edges = len(data_pairs)

    conflict_pairs: Set[Tuple[int, int]] = set()

    def order_pair(a: int, b: int) -> None:
        if a == b:
            return
        pair = (a, b) if a < b else (b, a)
        if pair in data_pairs or pair in conflict_pairs:
            return
        conflict_pairs.add(pair)
        succ[pair[0]].add(pair[1])

    # Sorted interval sweep over arena assignments: only tensors whose
    # byte ranges overlap can race, and packing reuses few offsets, so the
    # candidate pair set stays near-linear in practice.
    intervals = sorted(
        (
            (a.offset, a.offset + a.nbytes, id(t))
            for t, a in memory_plan.assignments.items()
        ),
        key=lambda item: item[:2],
    )
    active: List[Tuple[int, int]] = []  # (end, tensor id)
    for start, end, t_key in intervals:
        active = [item for item in active if item[0] > start]
        wts = producer.get(t_key, ())
        for _, u_key in active:
            wus = producer.get(u_key, ())
            for wt in wts:
                for wu in wus:
                    order_pair(wt, wu)                  # WAW
                for r in readers.get(u_key, ()):        # t's write vs u reads
                    order_pair(wt, r)
            for wu in wus:
                for r in readers.get(t_key, ()):        # u's write vs t reads
                    order_pair(wu, r)
        active.append((end, t_key))

    # Transitive reduction over the conflict edges: arena reuse in serial
    # replay order makes nearly every step pair byte-conflict, but most of
    # those orderings are already implied by paths through other edges.
    # Dropping the implied ones keeps per-task successor lists (and the
    # per-completion counter work) near-linear; reachability — what the
    # hazard-cover certification checks — is unchanged. Data edges stay
    # verbatim: they are sparse and name real value flow.
    desc = [0] * n
    for i in range(n - 1, -1, -1):
        mask = 1 << i
        for j in succ[i]:
            mask |= desc[j]
        desc[i] = mask
    kept_conflicts = 0
    for i, k in sorted(conflict_pairs):
        implied = any(
            j != k and (desc[j] >> k) & 1 for j in succ[i]
        )
        if implied:
            succ[i].discard(k)
        else:
            kept_conflicts += 1

    preds = [0] * n
    for i, out in enumerate(succ):
        for j in out:
            preds[j] += 1
    successors = [tuple(sorted(out)) for out in succ]
    return successors, preds, data_edges, kept_conflicts


def _level_stats(successors: Sequence[Tuple[int, ...]],
                 preds: Sequence[int]) -> Tuple[int, int]:
    """(critical path in tasks, max dependency-level width)."""
    n = len(successors)
    level = [0] * n
    for i in range(n):
        for j in successors[i]:
            if level[i] + 1 > level[j]:
                level[j] = level[i] + 1
    if n == 0:
        return 0, 0
    widths: Dict[int, int] = {}
    for lv in level:
        widths[lv] = widths.get(lv, 0) + 1
    return max(level) + 1, max(widths.values())


def _tag_entries(program, entries) -> List[str]:
    """Compute/memory affinity tag per position (Sec. 5.3)."""
    chars = characterize_program(program)
    tags = []
    for _, _, _, members in entries:
        compute = any(
            chars[m].is_compute_intensive for m in members if m in chars
        )
        tags.append(TAG_COMPUTE if compute else TAG_MEMORY)
    return tags


def _assemble(program, entries, view, memory_plan, steps) -> TaskGraph:
    successors, preds, data_edges, conflict_edges = _build_structure(
        entries, memory_plan
    )
    critical, width = _level_stats(successors, preds)
    tags = _tag_entries(program, entries)
    tasks = []
    for pos, (name, _, _, _) in enumerate(entries):
        step = steps[pos] if steps is not None else None
        kind = step.kind if step is not None else "static"
        tasks.append(Task(pos, name, kind, tags[pos], step))
    stats = TaskGraphStats(
        tasks=len(tasks),
        data_edges=data_edges,
        conflict_edges=conflict_edges,
        roots=sum(1 for p in preds if p == 0),
        sinks=sum(1 for s in successors if not s),
        critical_path=critical,
        max_ready_width=width,
        compute_tasks=sum(1 for t in tags if t == TAG_COMPUTE),
        memory_tasks=sum(1 for t in tags if t == TAG_MEMORY),
    )
    graph = TaskGraph(tasks, successors, preds, stats, view, memory_plan)

    from repro.verify import Severity
    from repro.verify.hazards import check_schedule_cover

    diags = check_schedule_cover(view, memory_plan, graph.successors)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    if errors:
        raise PlanningError(
            "task-graph dependency table fails hazard-cover "
            "certification:\n" + "\n".join(d.render() for d in errors)
        )
    return graph


def build_task_graph(plan) -> TaskGraph:
    """Compile one execution plan's steps into a certified task graph."""
    entries, view = _plan_entries(plan)
    if len(entries) != len(plan.steps):
        raise PlanningError(
            f"plan has {len(plan.steps)} steps but {len(entries)} "
            "task entries; optimizer state is inconsistent"
        )
    return _assemble(plan.program, entries, view, plan.memory_plan,
                     plan.steps)


def task_graph_stats(
    program,
    batch_size: Optional[int] = None,
    optimize: bool = True,
    tile: bool = True,
    tile_budget: Optional[int] = None,
    tile_block_rows: Optional[int] = None,
) -> TaskGraphStats:
    """Static task-graph shape without building an executable plan.

    Paper-scale models exceed the functional executor's grid limits, so
    ``repro plan-stats --executor graph`` derives the structure from the
    static planner output (or the raw lowering) instead. The tiling knobs
    mirror :func:`repro.runtime.plan_opt.plan_optimization`, so ready-width
    is reported over the *post-tiling* step list.
    """
    from repro.runtime.executor import EXEC_ITEMSIZE
    from repro.runtime.memory_planner import plan_memory

    lanes = 1 if batch_size is None else batch_size
    sizer = lambda t: lanes * t.num_elements * EXEC_ITEMSIZE  # noqa: E731
    if optimize:
        from repro.runtime.plan_opt import plan_optimization

        opt = plan_optimization(program, sizer=sizer, batch_size=batch_size,
                                tile=tile, tile_budget=tile_budget,
                                tile_block_rows=tile_block_rows)
        entries = [
            (g.name, g.terminal.tensor, list(g.reads), list(g.members))
            for g in opt.groups
        ]
        view, memory_plan = opt.step_view, opt.memory_plan
    else:
        entries = [
            (n.name, n.tensor, list(n.inputs), [n]) for n in program.nodes
        ]
        view = program
        memory_plan = plan_memory(program, sizer=sizer,
                                  exclusive_writes=True)
    return _assemble(program, entries, view, memory_plan, None).stats


# ---- scheduler policies -----------------------------------------------------


class SchedulerPolicy:
    """How the executor picks the next ready task.

    Serial policies implement :meth:`select` over the executor-maintained
    ready list (tasks append in the order they become ready); the threaded
    production policy is a marker class the executor special-cases.
    """

    threaded = False

    def reset(self) -> None:
        """Called once per request before any task runs."""

    def select(self, ready: List[int]) -> int:
        """Remove and return the position of the next task to run."""
        raise NotImplementedError


class FifoScheduler(SchedulerPolicy):
    """Deterministic serial replay in first-enabled order (Kahn order)."""

    def select(self, ready: List[int]) -> int:
        return ready.pop(0)


class AdversarialScheduler(SchedulerPolicy):
    """Always runs the most-recently-enabled ready task.

    The depth-first adversary: it maximally reorders independent work
    relative to serial replay, so a missing dependency edge shows up as a
    differential mismatch instead of surviving under friendly FIFO orders.
    """

    def select(self, ready: List[int]) -> int:
        return ready.pop()


class ScriptedScheduler(SchedulerPolicy):
    """Executes a caller-chosen topological order, deterministically.

    The testing workhorse: any legal interleaving of the task graph can be
    replayed exactly, which turns scheduler correctness into an enumerable
    property. An order that is not a legal topological order of the graph
    raises :class:`~repro.errors.ExecutionError` at the first violation.
    Single-threaded use only (the cursor is per-instance state).
    """

    def __init__(self, order: Sequence[int]) -> None:
        self.order = list(order)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(self, ready: List[int]) -> int:
        if self._cursor >= len(self.order):
            raise ExecutionError(
                "scripted order exhausted with ready tasks remaining "
                f"({sorted(ready)}); the script must cover every task"
            )
        pos = self.order[self._cursor]
        self._cursor += 1
        try:
            ready.remove(pos)
        except ValueError:
            raise ExecutionError(
                f"scripted order runs task {pos} before its predecessors "
                "completed; not a topological order of this task graph"
            ) from None
        return pos


class ThreadedScheduler(SchedulerPolicy):
    """The production policy: workers pull from shared ready deques.

    Workers alternate compute/memory affinity — each prefers tasks whose
    Sec. 5.3 tag matches its own, falling back to any ready task — and a
    worker finishing a task runs one newly-enabled successor inline, so
    dependency chains never pay a handoff. ``max_workers`` bounds the
    crew; the graph's ``max_ready_width`` bounds it further (threads
    beyond the widest level could never be busy).
    """

    threaded = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExecutionError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    def resolve_workers(self, graph: TaskGraph) -> int:
        workers = self.max_workers
        if workers is None:
            workers = default_worker_count()
        return max(1, min(workers, graph.stats.max_ready_width))


# ---- per-request run state --------------------------------------------------


class _RunState:
    """Mutable scheduler state for one request (threaded mode)."""

    __slots__ = (
        "values", "counters", "cond", "ready_compute", "ready_memory",
        "remaining", "error", "busy_seconds", "run_seconds",
        "queue_seconds", "enabled_at",
    )

    def __init__(self, values, graph: TaskGraph, timing: bool) -> None:
        self.values = values
        self.counters = list(graph.pred_template)
        self.cond = threading.Condition()
        self.ready_compute: deque = deque()
        self.ready_memory: deque = deque()
        self.remaining = len(graph.tasks)
        self.error: Optional[BaseException] = None
        self.busy_seconds = 0.0
        n = len(graph.tasks)
        self.run_seconds = [0.0] * n if timing else None
        self.queue_seconds = [0.0] * n if timing else None
        self.enabled_at = [0.0] * n if timing else None


class GraphExecutor:
    """Executes one task graph per request, under an injectable policy.

    The executor itself is immutable apart from metrics accumulators; all
    per-request state lives in a :class:`_RunState`, so one executor (one
    plan) safely serves concurrent sessions. Metrics: request/task counts,
    busy vs wall seconds (scheduler occupancy), and — when profiling —
    per-task queue-wait and run time.
    """

    def __init__(
        self,
        graph: TaskGraph,
        scheduler: Optional[SchedulerPolicy] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.graph = graph
        self.scheduler = scheduler or ThreadedScheduler()
        self._pool = pool or GRAPH_POOL
        self._metrics_lock = threading.Lock()
        self.requests = 0
        self.tasks_executed = 0
        self.busy_seconds = 0.0
        self.wall_seconds = 0.0
        self.worker_seconds = 0.0
        self.workers_used = 1
        n = len(graph.tasks)
        self.step_run_seconds = [0.0] * n
        self.step_queue_seconds = [0.0] * n

    # ---- entry -----------------------------------------------------------

    def run(
        self,
        values,
        scheduler: Optional[SchedulerPolicy] = None,
        step_seconds: Optional[List[float]] = None,
    ) -> None:
        """One request: reset counters, kick roots, wait on sinks."""
        policy = scheduler if scheduler is not None else self.scheduler
        timing = step_seconds is not None
        start = perf_counter()
        if policy.threaded:
            workers = policy.resolve_workers(self.graph)
            if workers > 1 and len(self.graph.tasks) > 1:
                state = self._run_threaded(values, workers, timing)
            else:
                workers = 1
                state = self._run_serial(values, FifoScheduler(), timing)
        else:
            workers = 1
            state = self._run_serial(values, policy, timing)
        wall = perf_counter() - start
        with self._metrics_lock:
            self.requests += 1
            self.tasks_executed += len(self.graph.tasks)
            self.busy_seconds += state.busy_seconds
            self.wall_seconds += wall
            self.worker_seconds += wall * workers
            self.workers_used = workers
            if timing:
                for i, s in enumerate(state.run_seconds):
                    self.step_run_seconds[i] += s
                    step_seconds[i] += s
                for i, s in enumerate(state.queue_seconds):
                    self.step_queue_seconds[i] += s

    @property
    def occupancy(self) -> float:
        """Fraction of scheduled worker time spent inside task closures."""
        if self.worker_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / self.worker_seconds

    # ---- serial (policy-driven) mode -------------------------------------

    def _run_serial(self, values, policy: SchedulerPolicy,
                    timing: bool) -> _RunState:
        graph = self.graph
        state = _RunState(values, graph, timing)
        policy.reset()
        now = perf_counter()
        if timing:
            for r in graph.roots:
                state.enabled_at[r] = now
        ready = list(graph.roots)
        counters = state.counters
        executed = 0
        while ready:
            pos = policy.select(ready)
            start = perf_counter()
            graph.tasks[pos].step.run(values)
            elapsed = perf_counter() - start
            state.busy_seconds += elapsed
            if timing:
                state.run_seconds[pos] += elapsed
                state.queue_seconds[pos] += start - state.enabled_at[pos]
            executed += 1
            enabled = perf_counter() if timing else 0.0
            for s in graph.successors[pos]:
                counters[s] -= 1
                if counters[s] == 0:
                    ready.append(s)
                    if timing:
                        state.enabled_at[s] = enabled
                elif counters[s] < 0:
                    raise ExecutionError(
                        f"task {graph.tasks[s].name} completed a "
                        "predecessor it never counted: the dependency "
                        "table's counters are corrupt (premature "
                        "decrement)"
                    )
        if executed != len(graph.tasks):
            stalled = [
                graph.tasks[i].name
                for i, c in enumerate(counters) if c > 0
            ]
            raise ExecutionError(
                f"task graph stalled with {len(graph.tasks) - executed} "
                f"tasks never enabled (first: {stalled[:3]}); a successor "
                "edge is missing from the dependency table"
            )
        return state

    # ---- threaded (production) mode --------------------------------------

    def _run_threaded(self, values, workers: int, timing: bool) -> _RunState:
        graph = self.graph
        state = _RunState(values, graph, timing)
        if timing:
            now = perf_counter()
            for r in graph.roots:
                state.enabled_at[r] = now
        for r in graph.roots:
            if graph.tasks[r].tag == TAG_COMPUTE:
                state.ready_compute.append(r)
            else:
                state.ready_memory.append(r)
        # Helper workers come from the shared persistent pool; the calling
        # thread always participates, so a saturated (or serial-fallback)
        # pool degrades throughput, never correctness.
        for index in range(1, workers):
            if self._pool.submit(self._worker_loop, state, index) is None:
                break
        self._worker_loop(state, 0)
        if state.error is not None:
            raise state.error
        if any(c > 0 for c in state.counters):
            stalled = [
                graph.tasks[i].name
                for i, c in enumerate(state.counters) if c > 0
            ]
            raise ExecutionError(
                f"task graph stalled (first: {stalled[:3]}); a successor "
                "edge is missing from the dependency table"
            )
        return state

    def _pop_ready(self, state: _RunState, prefer: str) -> Optional[int]:
        first, second = (
            (state.ready_compute, state.ready_memory)
            if prefer == TAG_COMPUTE
            else (state.ready_memory, state.ready_compute)
        )
        if first:
            return first.popleft()
        if second:
            return second.popleft()
        return None

    def _worker_loop(self, state: _RunState, worker_index: int) -> None:
        prefer = TAG_COMPUTE if worker_index % 2 == 0 else TAG_MEMORY
        cond = state.cond
        task: Optional[int] = None
        while True:
            if task is None:
                with cond:
                    while True:
                        task = self._pop_ready(state, prefer)
                        if task is not None:
                            break
                        if state.remaining == 0 or state.error is not None:
                            return
                        cond.wait()
            task = self._run_task(state, task, prefer)

    def _run_task(self, state: _RunState, pos: int,
                  prefer: str) -> Optional[int]:
        """Run one task; returns an inline continuation (or ``None``)."""
        graph = self.graph
        timing = state.run_seconds is not None
        start = perf_counter()
        try:
            graph.tasks[pos].step.run(state.values)
        except BaseException as exc:  # noqa: BLE001 — forwarded to caller
            with state.cond:
                state.error = exc
                state.cond.notify_all()
            return None
        elapsed = perf_counter() - start
        cont: Optional[int] = None
        with state.cond:
            state.busy_seconds += elapsed
            if timing:
                state.run_seconds[pos] += elapsed
                state.queue_seconds[pos] += start - state.enabled_at[pos]
            newly: List[int] = []
            for s in graph.successors[pos]:
                c = state.counters[s] - 1
                state.counters[s] = c
                if c == 0:
                    newly.append(s)
                elif c < 0:
                    state.error = ExecutionError(
                        f"task {graph.tasks[s].name} predecessor counter "
                        "went negative: the dependency table's counters "
                        "are corrupt (premature decrement)"
                    )
                    state.cond.notify_all()
                    return None
            state.remaining -= 1
            if newly:
                if timing:
                    now = perf_counter()
                    for s in newly:
                        state.enabled_at[s] = now
                # Chain continuation: keep one successor (preferring our
                # own affinity) and run it without touching the deques.
                pick = len(newly) - 1
                for k, s in enumerate(newly):
                    if graph.tasks[s].tag == prefer:
                        pick = k
                        break
                cont = newly.pop(pick)
                for s in newly:
                    if graph.tasks[s].tag == TAG_COMPUTE:
                        state.ready_compute.append(s)
                    else:
                        state.ready_memory.append(s)
                if newly:
                    state.cond.notify(len(newly))
            if state.remaining == 0 or state.error is not None:
                state.cond.notify_all()
        return cont

    def __repr__(self) -> str:
        return (
            f"<GraphExecutor {len(self.graph.tasks)} tasks, "
            f"{self.requests} requests, "
            f"occupancy {self.occupancy * 100:.0f}%>"
        )


def random_topological_order(graph: TaskGraph, rng) -> List[int]:
    """A uniformly-random-ish legal execution order (for scripted tests).

    Kahn's algorithm with the next task drawn randomly from the ready set;
    every topological order of the graph is reachable.
    """
    counters = list(graph.pred_template)
    ready = list(graph.roots)
    order: List[int] = []
    while ready:
        pick = int(rng.integers(len(ready))) if hasattr(rng, "integers") \
            else rng.randrange(len(ready))
        order.append(ready.pop(pick))
        for s in graph.successors[order[-1]]:
            counters[s] -= 1
            if counters[s] == 0:
                ready.append(s)
    if len(order) != len(graph.tasks):
        raise ExecutionError("task graph has a cycle; no topological order")
    return order
