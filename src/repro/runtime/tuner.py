"""The ``repro tune`` A/B harness: measure, re-plan, prove, then adopt.

Profile-guided optimization is only trustworthy end to end: a cost model
fitted to noisy measurements can steer the planner into a *legal but
slower* plan, so no tuned plan is ever adopted on the cost model's word
alone. :func:`tune` closes the loop with four gates, every one of which
must pass before a verdict says "adopted":

1. **Collect** — run the model through profile-collecting sessions under
   both the tiled and the untiled optimized plan, flushing per-step wall
   seconds into a :class:`~repro.runtime.profile_store.ProfileStore`.
   Both variants feed one bucket so the tiling pass can compare a chain's
   measured blocked cost against its measured *untiled* cost.
2. **Re-plan** — build the tuned plan with a
   :class:`~repro.runtime.cost_model.CostModel` over the collected rows.
   An empty store short-circuits here: planning is bit-for-bit static and
   there is nothing to A/B.
3. **Prove** — the tuned plan must produce bit-identical outputs to both
   the static optimized plan and an unoptimized serial replay on the same
   feeds, and every certificate from
   :func:`~repro.verify.equiv.certify_plan` must be PROVED. A mismatch or
   a non-proved certificate auto-rejects; speed never overrides safety.
4. **Time** — static and tuned plans are timed *interleaved* (A/B/B/A
   alternation, best-of-N): this machine's wall clock drifts by double-
   digit percentages between phases, so back-to-back blocks would measure
   the drift, not the plans. Adoption requires best-tuned to beat
   best-static by ``threshold``; anything less auto-rejects.

The verdict — adopted or not, why, and every measured number — persists
next to the profile rows (:meth:`ProfileStore.save_verdict`) so later
sessions and CI can assert what tuning decided without re-running it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.cache.keys import program_profile_key
from repro.errors import ExecutionError, PlanningError
from repro.graph.te_program import TEProgram
from repro.runtime.cost_model import CostModel
from repro.runtime.executor import ExecutionPlan
from repro.runtime.profile_store import ProfileStore, resolve_profile_store
from repro.runtime.session import InferenceSession

# Exploration runs per plan variant during collection. Three runs give the
# EMA a stable mean without making `repro tune` minutes long on the bigger
# tiny models.
DEFAULT_COLLECT_RUNS = 3

# Interleaved timing repetitions per engine. Best-of-9 is enough to punch
# through scheduler noise at tiny-model latencies (0.2ms..700ms).
DEFAULT_TIMING_REPS = 9


@dataclass
class TuneReport:
    """Everything one tuning run measured and decided."""

    model: str
    program_hash: str
    adopted: bool = False
    reason: str = ""
    runnable: bool = True
    threshold: float = 1.0
    speedup: float = 0.0
    static_seconds: float = 0.0      # best-of interleaved static latency
    tuned_seconds: float = 0.0       # best-of interleaved tuned latency
    timing_reps: int = 0
    bit_identical: bool = False
    certified: bool = False
    proved: int = 0
    refuted: int = 0
    unknown: int = 0
    rows: int = 0                    # profile rows backing the cost model
    samples: int = 0                 # samples flushed by the collect phase
    verdict_path: Optional[str] = None
    # Pass-pipeline stats of both plans (OptimizeStats), for rendering the
    # before/after comparison; not serialized into the verdict.
    static_stats: Optional[object] = field(default=None, repr=False)
    tuned_stats: Optional[object] = field(default=None, repr=False)

    def to_json(self) -> Dict[str, Any]:
        """The persisted verdict payload (scalars only, JSON-safe)."""
        return {
            "model": self.model,
            "program": self.program_hash,
            "adopted": self.adopted,
            "reason": self.reason,
            "runnable": self.runnable,
            "threshold": self.threshold,
            "speedup": round(self.speedup, 4),
            "static_seconds": self.static_seconds,
            "tuned_seconds": self.tuned_seconds,
            "timing_reps": self.timing_reps,
            "bit_identical": self.bit_identical,
            "certified": self.certified,
            "proved": self.proved,
            "refuted": self.refuted,
            "unknown": self.unknown,
            "rows": self.rows,
            "samples": self.samples,
        }

    def render(self) -> str:
        verdict = "ADOPTED" if self.adopted else "rejected"
        lines = [f"tune verdict: {verdict} — {self.reason}"]
        if self.timing_reps:
            lines.append(
                f"  static {self.static_seconds * 1e3:.3f} ms, "
                f"tuned {self.tuned_seconds * 1e3:.3f} ms "
                f"(best of {self.timing_reps}, interleaved) — "
                f"speedup {self.speedup:.2f}x (threshold "
                f"{self.threshold:.2f}x)"
            )
        lines.append(
            f"  bit-identical: {self.bit_identical}, certificates: "
            f"{self.proved} proved / {self.refuted} refuted / "
            f"{self.unknown} unknown"
        )
        lines.append(
            f"  profile: {self.samples} samples collected, "
            f"{self.rows} rows in bucket {self.program_hash[:12]}"
        )
        return "\n".join(lines)


def collect_profiles(
    program: TEProgram,
    store: ProfileStore,
    runs: int = DEFAULT_COLLECT_RUNS,
    seed: int = 0,
    feeds: Optional[Mapping[Any, np.ndarray]] = None,
    tile_budget: Optional[int] = None,
) -> int:
    """Exploration phase: measure the plan variants the tuner can choose.

    Runs profile-collecting sessions under the tiled *and* the untiled
    optimized plan — the tiled runs produce ``tiled@<block>`` variants
    keyed by chain, the untiled runs produce the fused/plain rows the
    tiling pass needs as its "what if I don't tile" comparison point.
    Returns the number of samples flushed into ``store``.
    """
    if feeds is None:
        from repro.transform.semantics import random_feeds

        feeds = random_feeds(program, seed=seed)
    total = 0
    for tile in (True, False):
        plan = ExecutionPlan(
            program, optimize=True, tile=tile, tile_budget=tile_budget,
        )
        session = InferenceSession(
            program, plan=plan,
            collect_profiles=True, profile_store=store,
        )
        for _ in range(max(1, runs)):
            session.run(feeds)
        total += session.flush_profiles()
    return total


def _bit_identical(
    got: List[np.ndarray], want: List[np.ndarray]
) -> bool:
    return len(got) == len(want) and all(
        np.array_equal(a, b) for a, b in zip(got, want)
    )


def _interleaved_best_of(run_static, run_tuned, reps: int):
    """Best-of-N latency for two engines, alternating A/B order per rep.

    Sequential blocks (all static, then all tuned) measure clock drift —
    this machine wanders ±double-digit percent between phases. Alternating
    which engine goes first inside every rep and taking each engine's
    minimum cancels the drift to first order.
    """
    best_static = best_tuned = float("inf")
    for rep in range(max(1, reps)):
        order = (
            (run_static, run_tuned) if rep % 2 == 0
            else (run_tuned, run_static)
        )
        for fn in order:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is run_static:
                best_static = min(best_static, elapsed)
            else:
                best_tuned = min(best_tuned, elapsed)
    return best_static, best_tuned


def tune(
    program: TEProgram,
    name: Optional[str] = None,
    store: Optional[object] = None,
    runs: int = DEFAULT_COLLECT_RUNS,
    reps: int = DEFAULT_TIMING_REPS,
    threshold: float = 1.0,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    feeds: Optional[Mapping[Any, np.ndarray]] = None,
    tile_budget: Optional[int] = None,
) -> TuneReport:
    """Run the full measure → re-plan → prove → time → verdict loop.

    ``store`` accepts anything ``resolve_profile_store`` does (None
    honours ``$REPRO_CACHE_DIR``, a path roots the store there, ``False``
    keeps it in memory). ``cost_model`` injects a pre-built model and
    skips the collect phase — the hook the bad-model CI test uses to
    prove auto-reject fires; everything downstream of collection (the
    identity, certification and timing gates) still runs unchanged.
    ``tile_budget`` pins the cache budget for both engines (the knob that
    demonstrates measured recovery when the static footprint heuristic
    mispredicts).
    """
    resolved = resolve_profile_store(store)
    report = TuneReport(
        model=name or program.name,
        program_hash=program_profile_key(program),
        threshold=threshold,
    )

    if feeds is None:
        from repro.transform.semantics import random_feeds

        feeds = random_feeds(program, seed=seed)

    # Static plan first: it is both the baseline and the probe for whether
    # this program can execute functionally at all (paper-scale grids
    # exceed the evaluator's point budget and must report, not crash).
    try:
        static_plan = ExecutionPlan(
            program, optimize=True, tile_budget=tile_budget
        )
        static_session = InferenceSession(program, plan=static_plan)
        static_out = static_session.run(feeds)
    except (ExecutionError, PlanningError) as exc:
        report.runnable = False
        report.reason = f"not functionally executable: {exc}"
        report.verdict_path = resolved.save_verdict(
            report.program_hash, 1, report.to_json()
        )
        return report
    report.static_stats = static_session.plan.optimization.stats

    if cost_model is None:
        report.samples = collect_profiles(
            program, resolved, runs=runs, seed=seed, feeds=feeds,
            tile_budget=tile_budget,
        )
        cost_model = CostModel.from_store(resolved, report.program_hash, 1)
    report.rows = len(cost_model.rows)

    if not cost_model.has_measurements():
        # The optimizer nulls an empty model, so the "tuned" plan would be
        # the static plan — nothing to compare, nothing to adopt.
        report.reason = "no profile measurements; planning unchanged"
        report.bit_identical = True
        report.verdict_path = resolved.save_verdict(
            report.program_hash, 1, report.to_json()
        )
        return report

    try:
        tuned_plan = ExecutionPlan(
            program, optimize=True, tile_budget=tile_budget,
            cost_model=cost_model,
        )
        tuned_session = InferenceSession(program, plan=tuned_plan)
        tuned_out = tuned_session.run(feeds)
    except (ExecutionError, PlanningError) as exc:
        report.reason = f"auto-reject: tuned plan failed to execute ({exc})"
        report.verdict_path = resolved.save_verdict(
            report.program_hash, 1, report.to_json()
        )
        return report
    report.tuned_stats = tuned_session.plan.optimization.stats

    # Gate 1: bit-identity against the static plan and a serial replay of
    # the unoptimized lowering, on the same feeds.
    serial_session = InferenceSession(
        program, optimize=False, executor="serial"
    )
    serial_out = serial_session.run(feeds)
    report.bit_identical = (
        _bit_identical(tuned_out, static_out)
        and _bit_identical(tuned_out, serial_out)
    )
    if not report.bit_identical:
        report.reason = (
            "auto-reject: tuned outputs diverge from the static plan or "
            "the serial replay"
        )
        report.verdict_path = resolved.save_verdict(
            report.program_hash, 1, report.to_json()
        )
        return report

    # Gate 2: every transform the tuned plan applied must carry a PROVED
    # equivalence certificate.
    from repro.verify.equiv import certify_plan

    certificates = certify_plan(tuned_session.plan)
    report.proved = len(certificates.proved)
    report.refuted = len(certificates.refuted)
    report.unknown = len(certificates.unknown)
    report.certified = certificates.all_proved
    if not report.certified:
        report.reason = (
            f"auto-reject: certification not clean "
            f"({report.refuted} refuted, {report.unknown} unknown)"
        )
        report.verdict_path = resolved.save_verdict(
            report.program_hash, 1, report.to_json()
        )
        return report

    # Gate 3: the tuned plan must actually be faster, measured interleaved.
    report.timing_reps = max(1, reps)
    report.static_seconds, report.tuned_seconds = _interleaved_best_of(
        lambda: static_session.run(feeds),
        lambda: tuned_session.run(feeds),
        report.timing_reps,
    )
    report.speedup = (
        report.static_seconds / report.tuned_seconds
        if report.tuned_seconds > 0 else 0.0
    )
    if report.speedup >= threshold:
        report.adopted = True
        report.reason = (
            f"tuned plan {report.speedup:.2f}x vs static "
            f"(>= {threshold:.2f}x threshold)"
        )
    else:
        report.reason = (
            f"auto-reject: tuned plan {report.speedup:.2f}x vs static "
            f"(< {threshold:.2f}x threshold)"
        )
    report.verdict_path = resolved.save_verdict(
        report.program_hash, 1, report.to_json()
    )
    return report
