"""Shared-memory weight store: place each weight buffer exactly once.

A :class:`WeightStore` packs a model's weight feeds — plus the precomputed
hoist-boundary values of an optimized plan — into a single
``multiprocessing.shared_memory`` segment. Every serving replica (process)
maps the segment and binds zero-copy numpy views: the arrays are already
C-contiguous float64 (the execution dtype), so the plan binder passes them
through untouched and K replicas pay for one copy of the weights instead
of K. This extends the zero-stride broadcast aliasing that
:class:`~repro.runtime.executor.BatchedExecutionPlan` uses across batch
lanes to views shared across processes — safe for the same reason: every
reader sees the same immutable bytes.

The packed blob is also persisted to disk (``<cache_dir>/weights/<key>``,
keyed by a content address like the compile cache: program structure +
weight bytes + layout version), so a cold server restores both the raw
weights *and* the hoisted prologue values with one sequential read instead
of re-converting and re-running the hoisted subgraph.

Lifecycle: the creating process owns the segment and must :meth:`unlink`
it when serving stops; attaching processes :meth:`close` their mapping.
Attachers deregister from the multiprocessing resource tracker — otherwise
the first worker to exit would unlink the segment under everyone else
(bpo-38119).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.cache.compile_cache import default_cache_dir
from repro.cache.keys import _digest
from repro.errors import ExecutionError
from repro.graph.te_program import TEProgram
from repro.runtime.executor import EXEC_DTYPE, ExecutionPlan

# Bump to invalidate every persisted weight blob (layout or hoist-boundary
# serialisation changed).
WEIGHT_STORE_VERSION = 1

# Slot alignment inside the segment (cache-line friendly; numpy is happy
# with any alignment, this just keeps slot starts tidy).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class WeightSlot:
    """One array's placement inside the segment."""

    name: str
    kind: str  # "weight" (raw placeholder feed) or "hoisted" (boundary value)
    offset: int
    shape: Tuple[int, ...]

    @property
    def num_elements(self) -> int:
        n = 1
        for extent in self.shape:
            n *= int(extent)
        return n

    @property
    def nbytes(self) -> int:
        return self.num_elements * np.dtype(EXEC_DTYPE).itemsize

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "offset": self.offset,
            "shape": list(self.shape),
        }

    @staticmethod
    def from_dict(doc: dict) -> "WeightSlot":
        return WeightSlot(
            name=doc["name"],
            kind=doc["kind"],
            offset=int(doc["offset"]),
            shape=tuple(int(s) for s in doc["shape"]),
        )


@dataclass
class WeightManifest:
    """Everything a replica needs to map the store (picklable, small)."""

    key: str
    shm_name: str
    total_bytes: int
    slots: List[WeightSlot] = field(default_factory=list)

    @property
    def weight_slots(self) -> List[WeightSlot]:
        return [s for s in self.slots if s.kind == "weight"]

    @property
    def hoisted_slots(self) -> List[WeightSlot]:
        return [s for s in self.slots if s.kind == "hoisted"]

    def to_dict(self) -> dict:
        return {
            "version": WEIGHT_STORE_VERSION,
            "key": self.key,
            "total_bytes": self.total_bytes,
            "slots": [s.to_dict() for s in self.slots],
        }

    @staticmethod
    def from_dict(doc: dict, shm_name: str) -> "WeightManifest":
        if doc.get("version") != WEIGHT_STORE_VERSION:
            raise ExecutionError(
                f"weight blob version {doc.get('version')} != "
                f"{WEIGHT_STORE_VERSION}"
            )
        return WeightManifest(
            key=doc["key"],
            shm_name=shm_name,
            total_bytes=int(doc["total_bytes"]),
            slots=[WeightSlot.from_dict(s) for s in doc["slots"]],
        )


def weight_store_key(
    program: TEProgram,
    weights_by_name: Mapping[str, np.ndarray],
    boundary: List[Tuple[str, Tuple[int, ...]]],
) -> str:
    """Content address of one packed weight-set.

    Program structure + per-weight content digest + the hoist-boundary
    layout: two servers share a blob iff the packed bytes would be
    byte-identical.
    """
    from repro.cache.keys import program_structural_hash

    weight_digests = []
    for name in sorted(weights_by_name):
        arr = np.ascontiguousarray(weights_by_name[name], dtype=EXEC_DTYPE)
        weight_digests.append([
            name,
            list(arr.shape),
            hashlib.sha256(arr.tobytes()).hexdigest(),
        ])
    return _digest({
        "tier": "weights",
        "version": WEIGHT_STORE_VERSION,
        "program": program_structural_hash(program),
        "weights": weight_digests,
        "boundary": [[name, list(shape)] for name, shape in boundary],
    })


class WeightStore:
    """One shared-memory segment of packed weights + hoisted values."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: WeightManifest,
        owner: bool,
        loaded_from_disk: bool = False,
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self.owner = owner
        self.loaded_from_disk = loaded_from_disk
        self._closed = False

    # ---- construction ----------------------------------------------------

    @classmethod
    def create(
        cls,
        program: TEProgram,
        plan: ExecutionPlan,
        weights_by_name: Mapping[str, np.ndarray],
        cache_dir: Optional[str] = None,
    ) -> "WeightStore":
        """Pack weights (and the plan's hoist-boundary values) into shm.

        ``plan`` supplies the hoist boundary: with a warm disk blob the
        hoisted subgraph is *not* executed — the persisted values are
        restored byte-for-byte. Otherwise the prologue runs once here and
        the result is persisted (when a cache directory is configured).
        """
        if cache_dir is None:
            cache_dir = default_cache_dir()
        boundary_layout = [
            (t.name, tuple(t.shape)) for t in plan.hoist_boundary
        ]
        key = weight_store_key(program, weights_by_name, boundary_layout)

        blob_path = manifest_path = None
        if cache_dir:
            blob_dir = os.path.join(cache_dir, "weights")
            blob_path = os.path.join(blob_dir, f"{key}.bin")
            manifest_path = os.path.join(blob_dir, f"{key}.json")

        if blob_path and os.path.exists(blob_path) and os.path.exists(
            manifest_path
        ):
            return cls._create_from_blob(blob_path, manifest_path, key)

        # Layout: raw weights first (program input order for determinism),
        # hoist-boundary slots after.
        slots: List[WeightSlot] = []
        offset = 0
        ordered = [
            t for t in program.inputs if t.name in weights_by_name
        ]
        missing = set(weights_by_name) - {t.name for t in ordered}
        if missing:
            raise ExecutionError(
                f"weights {sorted(missing)} name no program input"
            )
        for t in ordered:
            slot = WeightSlot(t.name, "weight", offset, tuple(t.shape))
            slots.append(slot)
            offset = _aligned(offset + slot.nbytes)
        for name, shape in boundary_layout:
            slot = WeightSlot(name, "hoisted", offset, shape)
            slots.append(slot)
            offset = _aligned(offset + slot.nbytes)
        total = max(offset, 1)

        shm = shared_memory.SharedMemory(create=True, size=total)
        manifest = WeightManifest(
            key=key, shm_name=shm.name, total_bytes=total, slots=slots
        )
        store = cls(shm, manifest, owner=True)
        try:
            # Copy the converted weights into their slots, then run the
            # hoisted prologue *on the shm views* so its cached identity
            # keys are the very arrays replicas will feed.
            for t in ordered:
                arr = plan._bind_one(t, weights_by_name[t.name])
                store._view(store._slot(t.name))[...] = arr
            if boundary_layout:
                shm_weights = {
                    t: store._view(store._slot(t.name)) for t in ordered
                }
                hoisted = plan.seed_hoist_values(shm_weights)
                for name, _ in boundary_layout:
                    store._view(store._slot(name, kind="hoisted"))[...] = (
                        hoisted[name]
                    )
            if blob_path:
                store._persist(blob_path, manifest_path)
        except BaseException:
            store.unlink()
            raise
        return store

    @classmethod
    def _create_from_blob(
        cls, blob_path: str, manifest_path: str, key: str
    ) -> "WeightStore":
        with open(manifest_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("key") != key:
            raise ExecutionError(
                f"weight blob at {blob_path} has key {doc.get('key')!r}, "
                f"expected {key!r}"
            )
        total = int(doc["total_bytes"])
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        blob = np.memmap(blob_path, dtype=np.uint8, mode="r", shape=(total,))
        dst = np.frombuffer(shm.buf, dtype=np.uint8, count=total)
        dst[...] = blob
        del blob, dst
        manifest = WeightManifest.from_dict(doc, shm_name=shm.name)
        manifest.shm_name = shm.name
        return cls(shm, manifest, owner=True, loaded_from_disk=True)

    def _persist(self, blob_path: str, manifest_path: str) -> None:
        os.makedirs(os.path.dirname(blob_path), exist_ok=True)
        tmp = blob_path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(bytes(self._shm.buf[: self.manifest.total_bytes]))
        os.replace(tmp, blob_path)
        tmp = manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.manifest.to_dict(), f, sort_keys=True)
        os.replace(tmp, manifest_path)

    @classmethod
    def attach(cls, manifest: WeightManifest) -> "WeightStore":
        """Map an existing segment in a replica process (zero-copy).

        Attachers are multiprocessing children of the owner, so they share
        its resource tracker: their register on attach is a set-idempotent
        no-op and the segment is unlinked exactly once, by the owner. (An
        attacher with its *own* tracker would need to unregister here to
        avoid unlinking the segment when it exits — bpo-38119.)
        """
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
        return cls(shm, manifest, owner=False)

    # ---- views -----------------------------------------------------------

    def _slot(self, name: str, kind: str = "weight") -> WeightSlot:
        for slot in self.manifest.slots:
            if slot.name == name and slot.kind == kind:
                return slot
        raise ExecutionError(f"no {kind} slot named {name!r} in weight store")

    def _view(self, slot: WeightSlot) -> np.ndarray:
        arr = np.frombuffer(
            self._shm.buf,
            dtype=EXEC_DTYPE,
            count=slot.num_elements,
            offset=slot.offset,
        )
        return arr.reshape(slot.shape)

    def weights_by_name(self) -> Dict[str, np.ndarray]:
        """Zero-copy views of every raw weight (C-contiguous float64)."""
        return {
            s.name: self._view(s) for s in self.manifest.weight_slots
        }

    def hoisted_by_name(self) -> Dict[str, np.ndarray]:
        """Zero-copy views of every persisted hoist-boundary value."""
        return {
            s.name: self._view(s) for s in self.manifest.hoisted_slots
        }

    @property
    def total_bytes(self) -> int:
        return self.manifest.total_bytes

    # ---- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still reference the buffer; leak the mapping
            # rather than crash — the segment itself dies with unlink().
            # Detach the handle's internals so its __del__ does not retry
            # (and fail again) at interpreter shutdown.
            self._shm._buf = None
            self._shm._mmap = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; call once serving stops)."""
        self.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"<WeightStore {self.manifest.key[:12]}: "
            f"{len(self.manifest.weight_slots)} weights + "
            f"{len(self.manifest.hoisted_slots)} hoisted, "
            f"{self.total_bytes} bytes, "
            f"{'owner' if self.owner else 'attached'}>"
        )
