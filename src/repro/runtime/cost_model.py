"""Measured-first cost model: what the plan optimizer consults when tuned.

One instance wraps the profile rows of a single ``(program, shape bucket)``
store bucket and answers every question the optimizer previously settled
with constants:

* ``estimate(step)`` — seconds for one step: the EMA-measured time when a
  profile row exists for the step's durable key, else a linear
  ``c0 + c_b*bytes + c_f*flops`` model fitted (least squares) to whatever
  rows *do* exist for this machine, else conservative defaults;
* ``fusion_profitable`` / ``duplication_profitable`` — whether inlining a
  map into its consumer(s) pays for the recompute with saved dispatch and
  materialisation, using the fitted dispatch intercept and byte rate;
* ``prefer_matmul`` — measured einsum-vs-matmul verdict per step key;
* ``wave_parallel_profitable`` — whether a wave's smallest measured step
  still amortises a thread handoff;
* ``tiled_variants`` — measured per-block seconds by block size for one
  chain key.

Every answer degrades to ``None``/static behaviour when no measurement
covers the question: an empty store yields a model with
``has_measurements() == False`` and the optimizer never calls it, keeping
untuned planning bit-for-bit identical to today.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.profile_store import ProfileRow, ProfileStore

# Fallback coefficients when too few rows exist to fit: a few microseconds
# of python dispatch per step, ~10 GB/s effective memory traffic, ~1 Gop/s
# effective scalar throughput. Only consulted for steps with no measured
# row, inside plans that *do* have measurements elsewhere.
DEFAULT_DISPATCH_SECONDS = 3e-6
DEFAULT_BYTE_SECONDS = 1e-10
DEFAULT_FLOP_SECONDS = 1e-9

# A wave dispatch hands steps to pool threads and joins them; the smallest
# member must be worth at least this much measured wall time before the
# handoff pays (matches the order of one cross-thread wakeup).
MIN_PARALLEL_STEP_SECONDS = 5e-5


class CostModel:
    """Per-bucket measured cost model (see module docstring)."""

    def __init__(self, rows: Dict[str, ProfileRow], lanes: int = 1) -> None:
        self.rows = dict(rows)
        self.lanes = max(1, int(lanes))
        self._coef = self._fit()

    @classmethod
    def from_store(
        cls, store: ProfileStore, program_hash: str, lanes: int = 1
    ) -> "CostModel":
        return cls(store.load(program_hash, lanes), lanes=lanes)

    # ---- measured lookups ---------------------------------------------------

    def has_measurements(self) -> bool:
        return bool(self.rows)

    def measured_seconds(
        self, step_key: str, kind: Optional[str] = None
    ) -> Optional[float]:
        """EMA seconds per call for one step key.

        Prefers the variant matching ``kind``; otherwise the fastest
        measured variant stands in (the closest available truth).
        """
        row = self.rows.get(step_key)
        if row is None or not row.variants:
            return None
        if kind is not None:
            exact = row.variants.get(kind)
            if exact is not None:
                return exact.seconds
        return min(v.seconds for v in row.variants.values())

    def estimate(self, step) -> float:
        """Seconds for one plan step: measured-first, fitted fallback."""
        measured = self.measured_seconds(
            getattr(step, "step_key", ""), getattr(step, "kind", None)
        )
        if measured is not None:
            return measured
        bytes_, flops = getattr(step, "cost_features", (0, 0))
        return self.estimate_features(bytes_ * self.lanes, flops * self.lanes)

    def estimate_features(self, bytes_: float, flops: float) -> float:
        c0, cb, cf = self._coef
        return max(c0 + cb * float(bytes_) + cf * float(flops), 1e-9)

    def dispatch_overhead_s(self) -> float:
        """Fitted per-step dispatch cost (the linear model's intercept)."""
        return self._coef[0]

    # ---- optimizer decisions ------------------------------------------------

    def fusion_profitable(
        self,
        producer_key: str,
        consumer_key: str,
        fused_key: Optional[str] = None,
    ) -> bool:
        """Inline a single-consumer map into its consumer?

        Fusion deletes one step dispatch and one arena materialisation
        while leaving compute unchanged (the interior is composed lazily),
        so it pays exactly when the producer is dispatch-bound. With a
        measured fused row from a previous tuned run, the direct
        comparison wins instead.
        """
        mp = self.measured_seconds(producer_key)
        mc = self.measured_seconds(consumer_key)
        if fused_key is not None:
            mf = self.measured_seconds(fused_key, "fused")
            if mf is not None and mp is not None and mc is not None:
                return mf <= mp + mc
        if mp is None:
            return False
        return mp <= self.dispatch_bound_cutoff_s()

    def duplication_profitable(
        self, producer_key: str, out_bytes: int, consumers: int
    ) -> bool:
        """Inline a multi-consumer map into *every* consumer?

        Duplication recomputes the producer ``consumers`` times and deletes
        its dispatch and its materialised output. A recomputed interior is
        *not* free of the producer's fixed numpy-call overhead — each
        consumer group re-evaluates the full value closure, plus pays the
        overlay/broadcast/contiguity machinery — so the honest model
        charges the full measured step time per extra evaluation and
        credits only the elided arena-write traffic. That only pays when
        the producer's output is large relative to its compute (wide
        broadcast-shaped maps); dispatch-bound tiny steps never qualify.
        """
        mp = self.measured_seconds(producer_key)
        if mp is None:
            return False
        # Credit only the elided arena write — and at a *conservative*
        # byte rate: on small programs the least-squares design is
        # degenerate and the fitted byte coefficient absorbs per-step
        # overhead (observed 100x+ inflation), which would green-light
        # duplications that measure as regressions. The fitted intercept
        # is not a deletable cost either: each interior re-pays the
        # producer's fixed numpy overhead, and the overlay/broadcast
        # machinery eats whatever loop dispatch the deleted step saved.
        rate = min(self._coef[1], DEFAULT_BYTE_SECONDS)
        write = rate * float(out_bytes) * self.lanes
        extra = (consumers - 1) * mp
        return extra < write

    def dispatch_bound_cutoff_s(self) -> float:
        """A step measured at or below this is dominated by dispatch."""
        return max(8.0 * self.dispatch_overhead_s(), 2e-5)

    def prefer_matmul(self, step_key: str) -> Optional[bool]:
        """Measured einsum-vs-matmul verdict, None without both variants."""
        row = self.rows.get(step_key)
        if row is None:
            return None
        einsum = row.variants.get("einsum")
        matmul = row.variants.get("matmul")
        if einsum is None or matmul is None:
            return None
        return matmul.seconds <= einsum.seconds

    def wave_parallel_profitable(
        self, measured: List[Optional[float]]
    ) -> Optional[bool]:
        """Dispatch one wave to the pool? None unless fully measured."""
        if not measured or any(m is None for m in measured):
            return None
        return min(measured) >= max(
            MIN_PARALLEL_STEP_SECONDS, 10.0 * self.dispatch_overhead_s()
        )

    def tiled_variants(self, chain_key: str) -> Dict[int, float]:
        """Measured per-block seconds by block size for one chain key."""
        row = self.rows.get(chain_key)
        if row is None:
            return {}
        return {
            v.block_rows: v.seconds
            for v in row.variants.values()
            if v.block_rows > 0
        }

    # ---- fitting ------------------------------------------------------------

    def _fit(self) -> Tuple[float, float, float]:
        """Least-squares ``seconds ~ c0 + cb*bytes + cf*flops`` over rows."""
        samples = [
            (v.bytes, v.flops, v.seconds)
            for row in self.rows.values()
            for v in row.variants.values()
            if v.seconds > 0.0
        ]
        default = (
            DEFAULT_DISPATCH_SECONDS, DEFAULT_BYTE_SECONDS,
            DEFAULT_FLOP_SECONDS,
        )
        if len(samples) < 4:
            if samples:
                floor = min(s for _, _, s in samples)
                c0 = min(max(0.5 * floor, 5e-7), 2e-5)
                return (c0, DEFAULT_BYTE_SECONDS, DEFAULT_FLOP_SECONDS)
            return default
        a = np.array(
            [[1.0, float(b), float(f)] for b, f, _ in samples], dtype=np.float64
        )
        y = np.array([s for _, _, s in samples], dtype=np.float64)
        try:
            coef, _, _, _ = np.linalg.lstsq(a, y, rcond=None)
        except np.linalg.LinAlgError:
            return default
        c0, cb, cf = (float(c) for c in coef)
        if not np.isfinite([c0, cb, cf]).all():
            return default
        # A degenerate design (all steps similar size) can push the
        # intercept negative or the rates below zero; clamp into the
        # physically meaningful range instead of trusting extrapolation.
        floor = min(s for _, _, s in samples)
        c0 = min(max(c0, 5e-7), max(floor, 5e-7))
        cb = max(cb, 0.0) or DEFAULT_BYTE_SECONDS
        cf = max(cf, 0.0) or DEFAULT_FLOP_SECONDS
        return (c0, cb, cf)

    def __repr__(self) -> str:
        c0, cb, cf = self._coef
        return (
            f"<CostModel rows={len(self.rows)} lanes={self.lanes} "
            f"c0={c0:.2e} cb={cb:.2e} cf={cf:.2e}>"
        )
