"""Dynamic-shape execution via multi-version compilation (paper Sec. 9).

"Certain DNN operators have unknown tensor shapes at compile time ... we
can generate multiple versions of a kernel and choose the appropriate one
based on shape information available at execution time."

:class:`ShapeDispatcher` implements that recipe at module granularity: the
user supplies a model *builder* parameterised by the dynamic dimension
(e.g. sequence length) and a set of bucket sizes; each bucket compiles once,
and ``run`` selects the smallest bucket that fits the incoming shape,
zero-pads the dynamic inputs up to it, executes, and slices outputs back.
Padding with zeros is safe for the supported operator set as long as the
model treats padded positions independently (true for the row-wise
transformer/MLP models used here; attention models needing masks should
fold the mask into the builder).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SouffleOptions
from repro.errors import ExecutionError
from repro.gpu.device import GPUSpec
from repro.graph.graph import Graph
from repro.runtime.module import CompiledModule

# A builder takes the concrete dynamic size and returns the model graph.
GraphBuilderFn = Callable[[int], Graph]


@dataclass
class DispatchRecord:
    """What one ``run`` call resolved to (for tests and logging)."""

    requested: int
    bucket: int
    padded: bool


class ShapeDispatcher:
    """Compile-once-per-bucket, dispatch-by-shape executor."""

    def __init__(
        self,
        builder: GraphBuilderFn,
        buckets: Sequence[int],
        dynamic_inputs: Sequence[str],
        dynamic_axis: int = 0,
        device: Optional[GPUSpec] = None,
        level: int = 4,
    ) -> None:
        if not buckets:
            raise ExecutionError("at least one shape bucket is required")
        self.buckets = sorted(set(buckets))
        self.dynamic_inputs = tuple(dynamic_inputs)
        self.dynamic_axis = dynamic_axis
        self._builder = builder
        # Imported here: repro.core imports repro.runtime.module, so a
        # module-level import would be circular.
        from repro.core.souffle import SouffleCompiler

        self._compiler = SouffleCompiler(
            device=device, options=SouffleOptions.from_level(level)
        )
        self._modules: Dict[int, CompiledModule] = {}
        self.history: List[DispatchRecord] = []

    # ---- compilation ---------------------------------------------------------

    def module_for(self, bucket: int) -> CompiledModule:
        """The compiled module for one bucket (compiled lazily, cached)."""
        if bucket not in self._modules:
            self._modules[bucket] = self._compiler.compile(self._builder(bucket))
        return self._modules[bucket]

    def compile_all(self) -> None:
        """Eagerly compile every bucket (deployment warm-up)."""
        for bucket in self.buckets:
            self.module_for(bucket)

    # ---- dispatch ---------------------------------------------------------------

    def select_bucket(self, size: int) -> int:
        """Smallest bucket >= size; raises if nothing fits."""
        index = bisect.bisect_left(self.buckets, size)
        if index == len(self.buckets):
            raise ExecutionError(
                f"dynamic size {size} exceeds the largest bucket "
                f"{self.buckets[-1]}"
            )
        return self.buckets[index]

    def _resolve_size(self, feeds: Mapping[str, np.ndarray]) -> int:
        """The request's size along the dynamic axis (validated)."""
        sizes = {
            name: np.asarray(feeds[name]).shape[self.dynamic_axis]
            for name in self.dynamic_inputs
            if name in feeds
        }
        if not sizes:
            raise ExecutionError(
                f"none of the dynamic inputs {self.dynamic_inputs} were fed"
            )
        if len(set(sizes.values())) != 1:
            raise ExecutionError(
                f"dynamic inputs disagree on the dynamic axis: {sizes}"
            )
        return next(iter(sizes.values()))

    def _pad_feeds(
        self, feeds: Mapping[str, np.ndarray], size: int, bucket: int
    ) -> Dict[str, np.ndarray]:
        padded: Dict[str, np.ndarray] = {}
        for name, value in feeds.items():
            array = np.asarray(value)
            if name in self.dynamic_inputs and bucket != size:
                pad_width = [(0, 0)] * array.ndim
                pad_width[self.dynamic_axis] = (0, bucket - size)
                array = np.pad(array, pad_width)
            padded[name] = array
        return padded

    def _slice_outputs(
        self, outputs: Sequence[np.ndarray], size: int, bucket: int
    ) -> List[np.ndarray]:
        sliced: List[np.ndarray] = []
        for value in outputs:
            if (
                self.dynamic_axis < value.ndim
                and value.shape[self.dynamic_axis] == bucket
                and bucket != size
            ):
                slicer = [slice(None)] * value.ndim
                slicer[self.dynamic_axis] = slice(0, size)
                value = value[tuple(slicer)]
            sliced.append(value)
        return sliced

    def run(self, feeds: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Execute with runtime shapes, padding to the chosen bucket."""
        size = self._resolve_size(feeds)
        bucket = self.select_bucket(size)
        module = self.module_for(bucket)
        self.history.append(DispatchRecord(size, bucket, bucket != size))
        outputs = module.run_by_name(self._pad_feeds(feeds, size, bucket))
        return self._slice_outputs(outputs, size, bucket)

    def run_batch(
        self, feeds_list: Sequence[Mapping[str, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Batch-execute concurrent requests, grouped by shape bucket.

        Each request independently selects its shape bucket (as :meth:`run`
        would); requests landing in the same bucket then replay that
        bucket's module through one batched execution plan. Results come
        back in submission order and are bit-identical to per-request
        :meth:`run` calls.
        """
        if not feeds_list:
            return []
        sizes = [self._resolve_size(feeds) for feeds in feeds_list]
        chosen = [self.select_bucket(size) for size in sizes]
        groups: Dict[int, List[int]] = {}
        for position, bucket in enumerate(chosen):
            groups.setdefault(bucket, []).append(position)

        results: List[Optional[List[np.ndarray]]] = [None] * len(feeds_list)
        for bucket in sorted(groups):
            members = groups[bucket]
            module = self.module_for(bucket)
            padded = [
                self._pad_feeds(feeds_list[pos], sizes[pos], bucket)
                for pos in members
            ]
            for pos in members:
                self.history.append(
                    DispatchRecord(sizes[pos], bucket, bucket != sizes[pos])
                )
            for pos, outputs in zip(members, module.run_batch_by_name(padded)):
                results[pos] = self._slice_outputs(outputs, sizes[pos], bucket)
        return results  # type: ignore[return-value]

    @property
    def compiled_buckets(self) -> List[int]:
        return sorted(self._modules)
