"""Global-memory planning for intermediate tensors.

The paper's global analysis captures tensor live ranges "across operator
boundaries" (Sec. 1); besides driving the on-chip reuse cache, live ranges
let the runtime share *global* buffers between non-overlapping
intermediates — the workspace a deployment actually allocates. This module
implements the classic greedy interval-packing planner over the liveness
analysis and reports the memory-footprint numbers deployment cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.liveness import LiveRange, live_ranges
from repro.graph.te_program import TEProgram
from repro.te.tensor import Tensor

# Buffers are aligned the way CUDA allocators align them.
ALIGNMENT = 256


def _align(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class BufferAssignment:
    """One tensor's placement inside the shared workspace."""

    tensor: Tensor
    offset: int
    nbytes: int
    live: LiveRange

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class MemoryPlan:
    """A full workspace layout for a TE program's intermediates."""

    assignments: Dict[Tensor, BufferAssignment] = field(default_factory=dict)
    workspace_bytes: int = 0
    unshared_bytes: int = 0     # what naive one-buffer-per-tensor would cost

    @property
    def sharing_ratio(self) -> float:
        """How much smaller the planned workspace is than naive allocation."""
        if self.workspace_bytes == 0:
            return 1.0
        return self.unshared_bytes / self.workspace_bytes

    def offset_of(self, tensor: Tensor) -> int:
        return self.assignments[tensor].offset

    def validate(self) -> None:
        """No two live-overlapping tensors may share bytes."""
        items = list(self.assignments.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if a.live.overlaps(b.live):
                    disjoint = a.end <= b.offset or b.end <= a.offset
                    assert disjoint, (
                        f"{a.tensor.name} and {b.tensor.name} overlap in both "
                        "time and space"
                    )

    def render(self, top: int = 12) -> str:
        lines = [
            f"workspace: {self.workspace_bytes / 1e6:.2f} MB "
            f"(naive {self.unshared_bytes / 1e6:.2f} MB, "
            f"{self.sharing_ratio:.2f}x sharing)",
            f"{'tensor':28s} {'offset':>10s} {'bytes':>10s} {'live':>12s}",
        ]
        ordered = sorted(self.assignments.values(), key=lambda a: -a.nbytes)
        for a in ordered[:top]:
            lines.append(
                f"{a.tensor.name[:28]:28s} {a.offset:10d} {a.nbytes:10d} "
                f"[{a.live.def_index:4d},{a.live.last_use:4d}]"
            )
        return "\n".join(lines)


def plan_memory(program: TEProgram) -> MemoryPlan:
    """Pack intermediate tensors into a shared workspace.

    Greedy best-fit by decreasing size: each tensor takes the lowest offset
    at which it does not spatially collide with any already-placed tensor
    whose live range overlaps its own. Inputs and model outputs are excluded
    (they live in caller-owned buffers).
    """
    ranges = live_ranges(program)
    plan = MemoryPlan()

    intermediates: List[Tuple[Tensor, LiveRange]] = []
    for node in program:
        tensor = node.tensor
        if program.is_output(tensor):
            continue
        intermediates.append((tensor, ranges[tensor]))

    plan.unshared_bytes = sum(_align(t.size_bytes) for t, _ in intermediates)
    intermediates.sort(key=lambda pair: -pair[0].size_bytes)

    placed: List[BufferAssignment] = []
    for tensor, live in intermediates:
        nbytes = _align(tensor.size_bytes)
        conflicts = sorted(
            (a for a in placed if a.live.overlaps(live)),
            key=lambda a: a.offset,
        )
        offset = 0
        for existing in conflicts:
            if offset + nbytes <= existing.offset:
                break
            offset = max(offset, existing.end)
        assignment = BufferAssignment(tensor, offset, nbytes, live)
        placed.append(assignment)
        plan.assignments[tensor] = assignment
        plan.workspace_bytes = max(plan.workspace_bytes, assignment.end)

    plan.validate()
    return plan
