"""Global-memory planning for intermediate tensors.

The paper's global analysis captures tensor live ranges "across operator
boundaries" (Sec. 1); besides driving the on-chip reuse cache, live ranges
let the runtime share *global* buffers between non-overlapping
intermediates — the workspace a deployment actually allocates. This module
implements the classic greedy interval-packing planner over the liveness
analysis and reports the memory-footprint numbers deployment cares about.

Two planning flavours exist. The default models the paper's GPU workspace:
a consumer kernel may write its output over an operand that dies at the
same program point (in-place reuse). ``exclusive_writes=True`` forbids
exactly that — an executor that writes a step's result *while* its operand
views are still being read (the numpy :class:`~repro.runtime.executor.
ExecutionPlan` arena) needs operand and result bytes disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.liveness import LiveRange, live_ranges
from repro.errors import PlanningError
from repro.graph.te_program import TEProgram
from repro.te.tensor import Tensor

# Buffers are aligned the way CUDA allocators align them.
ALIGNMENT = 256


def _align(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _conflicts(a: LiveRange, b: LiveRange, exclusive_writes: bool) -> bool:
    """Whether two tensors may not share bytes.

    With ``exclusive_writes`` a tensor consumed at step ``k`` still conflicts
    with a tensor defined at step ``k``: the write happens while the operand
    is read, so handing the dying operand's bytes to the result is unsafe.
    """
    if exclusive_writes:
        return not (a.last_use < b.def_index or b.last_use < a.def_index)
    return a.overlaps(b)


def pack_intervals(
    items: List[Tuple[int, LiveRange]], exclusive_writes: bool
) -> Tuple[List[int], int]:
    """Greedy best-fit-decreasing packing of (nbytes, live-range) intervals.

    The core placement loop shared by :func:`plan_memory` and the runtime
    plan optimizer's arena repacker (which packs over *optimized step
    positions* rather than TE indices — the live-range index domain is the
    caller's). Sizes are aligned here; ties in the decreasing-size order
    keep input order (stable sort), so layouts are deterministic. Returns
    per-item offsets in input order plus the packed workspace size.
    """
    order = sorted(range(len(items)), key=lambda i: -items[i][0])
    offsets = [0] * len(items)
    placed: List[Tuple[int, int, LiveRange]] = []
    workspace = 0
    for i in order:
        nbytes = _align(items[i][0])
        live = items[i][1]
        conflicts = sorted(
            (p for p in placed if _conflicts(p[2], live, exclusive_writes)),
            key=lambda p: p[0],
        )
        offset = 0
        for existing_offset, existing_end, _ in conflicts:
            if offset + nbytes <= existing_offset:
                break
            offset = max(offset, existing_end)
        offsets[i] = offset
        placed.append((offset, offset + nbytes, live))
        workspace = max(workspace, offset + nbytes)
    return offsets, workspace


@dataclass(frozen=True)
class BufferAssignment:
    """One tensor's placement inside the shared workspace."""

    tensor: Tensor
    offset: int
    nbytes: int
    live: LiveRange

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class MemoryPlan:
    """A full workspace layout for a TE program's intermediates."""

    assignments: Dict[Tensor, BufferAssignment] = field(default_factory=dict)
    workspace_bytes: int = 0
    unshared_bytes: int = 0     # what naive one-buffer-per-tensor would cost
    exclusive_writes: bool = False
    # Block-level tiling (runtime.tiling): per-worker scratch buffer size
    # and, per tiled chain, the (tensor name, offset, nbytes) scratch blocks
    # carved from it. Scratch is outside the arena — the verifier's
    # check_arena validates these blocks never alias each other.
    scratch_bytes: int = 0
    scratch_chains: Dict[int, List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )

    @property
    def sharing_ratio(self) -> float:
        """How much smaller the planned workspace is than naive allocation."""
        if self.workspace_bytes == 0:
            return 1.0
        return self.unshared_bytes / self.workspace_bytes

    def offset_of(self, tensor: Tensor) -> int:
        return self.assignments[tensor].offset

    def validate(self) -> None:
        """No two conflicting tensors may share bytes.

        Raises :class:`~repro.errors.PlanningError` so a broken layout fails
        loudly wherever the plan is consumed (the execution engine calls this
        at plan-construction time), rather than silently corrupting results.
        """
        items = list(self.assignments.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                if _conflicts(a.live, b.live, self.exclusive_writes):
                    disjoint = a.end <= b.offset or b.end <= a.offset
                    if not disjoint:
                        raise PlanningError(
                            f"memory plan invalid: {a.tensor.name} "
                            f"[{a.offset}, {a.end}) and {b.tensor.name} "
                            f"[{b.offset}, {b.end}) overlap in both time "
                            "and space"
                        )

    def render(self, top: int = 12) -> str:
        lines = [
            f"workspace: {self.workspace_bytes / 1e6:.2f} MB "
            f"(naive {self.unshared_bytes / 1e6:.2f} MB, "
            f"{self.sharing_ratio:.2f}x sharing)",
            f"{'tensor':28s} {'offset':>10s} {'bytes':>10s} {'live':>12s}",
        ]
        ordered = sorted(self.assignments.values(), key=lambda a: -a.nbytes)
        for a in ordered[:top]:
            lines.append(
                f"{a.tensor.name[:28]:28s} {a.offset:10d} {a.nbytes:10d} "
                f"[{a.live.def_index:4d},{a.live.last_use:4d}]"
            )
        return "\n".join(lines)


def plan_memory(
    program: TEProgram,
    sizer: Optional[Callable[[Tensor], int]] = None,
    exclusive_writes: bool = False,
) -> MemoryPlan:
    """Pack intermediate tensors into a shared workspace.

    Greedy best-fit by decreasing size: each tensor takes the lowest offset
    at which it does not spatially collide with any already-placed tensor
    whose live range conflicts with its own. Inputs and model outputs are
    excluded (they live in caller-owned buffers).

    ``sizer`` overrides the per-tensor byte size (default: the tensor's
    declared ``size_bytes``); the execution engine sizes buffers for its
    float64 compute representation. ``exclusive_writes`` additionally keeps
    each step's operands disjoint from its result (see module docstring).
    """
    ranges = live_ranges(program)
    plan = MemoryPlan(exclusive_writes=exclusive_writes)
    size_of = sizer if sizer is not None else (lambda t: t.size_bytes)

    intermediates: List[Tuple[Tensor, LiveRange]] = []
    for node in program:
        tensor = node.tensor
        if program.is_output(tensor):
            continue
        intermediates.append((tensor, ranges[tensor]))

    plan.unshared_bytes = sum(_align(size_of(t)) for t, _ in intermediates)

    items = [(size_of(t), live) for t, live in intermediates]
    offsets, workspace = pack_intervals(items, exclusive_writes)
    for (tensor, live), offset in zip(intermediates, offsets):
        plan.assignments[tensor] = BufferAssignment(
            tensor, offset, _align(size_of(tensor)), live
        )
    plan.workspace_bytes = workspace

    plan.validate()
    return plan
