"""Plan-based numpy execution: compile a TE program once, replay per request.

The interpretive :class:`~repro.te.evaluator.Evaluator` re-walks every
expression tree on every call — rebuilding iteration-variable grids,
re-evaluating index arithmetic, re-matching matmul patterns and allocating
every intermediate from scratch. None of that depends on the request: tensor
shapes, index maps, broadcast grids and operator dispatch are all fixed at
compile time. :class:`ExecutionPlan` therefore lowers the program *once*
into a topologically-ordered list of specialized step closures:

* matmul-shaped contractions become a pinned ``np.einsum`` call with the
  contraction string resolved at plan time;
* elementwise/reduction TEs have their bodies compiled bottom-up — binop,
  comparison and intrinsic dispatch resolved to concrete numpy callables,
  tensor reads resolved to identity views or precomputed integer gather
  maps, and every data-independent subexpression (index math, constant
  grids) folded into a plan-time constant array;
* each step writes its result directly into a preallocated **arena** view
  laid out by the global :class:`~repro.runtime.memory_planner.MemoryPlan`
  (``exclusive_writes`` packing, float64 sizing), so non-overlapping
  intermediates share bytes and repeated calls allocate nothing but the
  model outputs.

Executing a request is then a flat loop over the steps. Results are
bit-identical to the :class:`Evaluator` (which remains the differential-
testing oracle): both paths run the same numpy kernels in the same order on
the same float64 operands.

:class:`BatchedExecutionPlan` extends the same lowering with a leading
batch axis so B concurrent requests replay the step list *once*: einsum
contractions gain an ellipsis batch dimension (contraction path precomputed
for the batched shapes), elementwise/gather closures broadcast their
plan-time index grids over the batch, and the arena is sized for B lanes
per intermediate. Lane ``i`` of a batched replay is bit-identical to an
unbatched replay of request ``i`` — numpy's einsum and ufunc loops are
batch-independent per output element — which the differential tests pin
down across every paper model.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.characterize import step_cost_features
from repro.errors import ExecutionError, PlanningError
from repro.graph.te_program import TEProgram
from repro.runtime.memory_planner import MemoryPlan, plan_memory
from repro.te.evaluator import _BINOP_FN, _CALL_FN, _CMP_FN, MAX_GRID_ELEMENTS
from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    IterVar,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.patterns import contraction_path, match_matmul
from repro.te.tensor import Tensor

# The executor computes in float64 (like the Evaluator); arena buffers are
# sized for that representation, not the tensor's declared storage dtype.
EXEC_DTYPE = np.float64
EXEC_ITEMSIZE = np.dtype(EXEC_DTYPE).itemsize

# A values table maps id(tensor) -> ndarray (feed, arena view or output).
Values = Dict[int, np.ndarray]

# Sentinel values-table key under which bind_feeds/bind_batch smuggle the
# *original* (pre-conversion) feed objects for hoist roots to execute(),
# which keys the per-weight-set hoist cache on their identities. Popped
# before any step runs; absent means "recompute the hoisted subgraph".
_HOIST_TOKEN: object = object()

# Per-plan cap on cached hoisted weight-sets (a serving session feeds one).
_HOIST_CACHE_LIMIT = 4


def _hoist_token_digest(token: Sequence) -> str:
    """Content hash of one hoist token (shape + dtype + bytes per array).

    Identity keys break across process respawns: a worker re-attaching the
    same shared-memory weights holds fresh array objects with identical
    bytes. Batched tokens repeat each weight object once per lane, so the
    per-object digest is memoized by identity within one call.
    """
    h = hashlib.sha256()
    memo: Dict[int, bytes] = {}
    for obj in token:
        d = memo.get(id(obj))
        if d is None:
            arr = np.ascontiguousarray(obj)
            item = hashlib.sha256()
            item.update(repr((arr.shape, str(arr.dtype))).encode())
            item.update(arr.tobytes())
            d = item.digest()
            memo[id(obj)] = d
        h.update(d)
    return h.hexdigest()
# A compiled subexpression: either a plan-time constant array or a closure.
_Compiled = Tuple[Optional[np.ndarray], Optional[Callable[[Values], np.ndarray]]]


class PlanStep:
    """One executable step: computes a tensor into ``values[key]``.

    ``value_fn`` (map/const steps only) produces the step's value *without*
    writing the arena — the raw compiled closure behind ``run``'s final
    ``copyto``. The plan optimizer composes these to fuse step chains.

    ``step_key`` is the durable content identity (cache.keys.step_content_key)
    used to join profile rows across recompiles — unlike ``name`` it survives
    renames, fusion regrouping, and re-tiling. ``cost_features`` carries the
    static (bytes, flops) pair for the cost model's fitted fallback.
    """

    __slots__ = ("index", "name", "kind", "key", "run", "value_fn",
                 "step_key", "cost_features", "block_rows")

    def __init__(
        self,
        index: int,
        name: str,
        kind: str,
        key: int,
        run: Callable[[Values], None],
        value_fn: Optional[Callable[[Values], np.ndarray]] = None,
        step_key: str = "",
        cost_features: Tuple[int, int] = (0, 0),
        block_rows: int = 0,
    ) -> None:
        self.index = index
        self.name = name
        self.kind = kind
        self.key = key
        self.run = run
        self.value_fn = value_fn
        self.step_key = step_key
        self.cost_features = cost_features
        # Tiled block steps record the chain's block size here so profile
        # rows can keep per-block-size variants apart.
        self.block_rows = block_rows

    def __repr__(self) -> str:
        return f"<PlanStep#{self.index} {self.name} [{self.kind}]>"


class Arena:
    """One preallocated workspace: a flat byte buffer plus per-tensor views.

    Built once from the memory plan; every intermediate's view aliases its
    planned ``[offset, offset+nbytes)`` slice, so tensors with disjoint live
    ranges transparently share bytes across steps and across requests.

    With ``batch_size`` set the arena carries that many lanes per
    intermediate — every view gains a leading batch axis and the memory
    plan's offsets must have been computed with the matching batch-aware
    sizer (``BatchedExecutionPlan`` does both).
    """

    __slots__ = ("buffer", "views", "nbytes", "batch_size")

    def __init__(
        self, plan: MemoryPlan, batch_size: Optional[int] = None
    ) -> None:
        self.nbytes = plan.workspace_bytes
        self.batch_size = batch_size
        lanes = 1 if batch_size is None else batch_size
        self.buffer = np.empty(plan.workspace_bytes, dtype=np.uint8)
        self.views: Values = {}
        for tensor, assignment in plan.assignments.items():
            shape = tensor.shape
            if batch_size is not None:
                shape = (batch_size,) + tuple(shape)
            end = (
                assignment.offset
                + lanes * tensor.num_elements * EXEC_ITEMSIZE
            )
            self.views[id(tensor)] = (
                self.buffer[assignment.offset:end]
                .view(EXEC_DTYPE)
                .reshape(shape)
            )


def _grid_env(axes: Sequence[IterVar]) -> Dict[str, np.ndarray]:
    """Plan-time constant index grids: one broadcastable arange per axis."""
    env: Dict[str, np.ndarray] = {}
    ndim = len(axes)
    for dim, ax in enumerate(axes):
        index = np.arange(ax.dom.lo, ax.dom.hi, dtype=np.int64)
        shape = [1] * ndim
        shape[dim] = ax.extent
        env[ax.name] = index.reshape(shape)
    return env


def _compile_expr(
    expr: Expr,
    env: Mapping[str, np.ndarray],
    axes: Sequence[IterVar],
    batched: bool = False,
) -> _Compiled:
    """Compile one expression bottom-up.

    Returns ``(const, None)`` when the subtree reads no tensor data — the
    value is computed right here, at plan time — or ``(None, fn)`` where
    ``fn(values)`` produces the (broadcastable) grid at request time.

    With ``batched`` every tensor value in ``values`` carries a leading
    batch axis; plan-time constants stay unbatched (they broadcast against
    the batch like any leading axis) and only tensor reads change shape.
    """
    if isinstance(expr, Const):
        return np.asarray(expr.value, dtype=EXEC_DTYPE), None
    if isinstance(expr, Var):
        try:
            return env[expr.name], None
        except KeyError:
            raise ExecutionError(f"unbound variable {expr.name}") from None
    if isinstance(expr, (BinOp, Cmp)):
        table = _BINOP_FN if isinstance(expr, BinOp) else _CMP_FN
        fn = table[expr.op]
        lc, lf = _compile_expr(expr.lhs, env, axes, batched)
        rc, rf = _compile_expr(expr.rhs, env, axes, batched)
        if lf is None and rf is None:
            return fn(lc, rc), None
        if lf is None:
            return None, lambda v, fn=fn, lc=lc, rf=rf: fn(lc, rf(v))
        if rf is None:
            return None, lambda v, fn=fn, lf=lf, rc=rc: fn(lf(v), rc)
        return None, lambda v, fn=fn, lf=lf, rf=rf: fn(lf(v), rf(v))
    if isinstance(expr, Call):
        fn = _CALL_FN[expr.func]
        parts = [_compile_expr(a, env, axes, batched) for a in expr.args]
        if all(f is None for _, f in parts):
            return fn(*[c for c, _ in parts]), None
        if len(parts) == 1:
            (_, af), = parts
            return None, lambda v, fn=fn, af=af: fn(af(v))
        thunks = tuple(
            (lambda v, c=c: c) if f is None else f for c, f in parts
        )
        return None, lambda v, fn=fn, thunks=thunks: fn(*[t(v) for t in thunks])
    if isinstance(expr, IfThenElse):
        parts = [
            _compile_expr(e, env, axes, batched)
            for e in (expr.cond, expr.then_value, expr.else_value)
        ]
        if all(f is None for _, f in parts):
            cond, then_v, else_v = (c for c, _ in parts)
            return np.where(cond, then_v, else_v), None
        thunks = tuple(
            (lambda v, c=c: c) if f is None else f for c, f in parts
        )
        return None, lambda v, thunks=thunks: np.where(
            thunks[0](v), thunks[1](v), thunks[2](v)
        )
    if isinstance(expr, TensorRead):
        return _compile_read(expr, env, axes, batched)
    if isinstance(expr, Reduce):
        # Nested reductions are normalised away during lowering; only a
        # top-level Reduce exists and the step builder peels it off.
        raise ExecutionError("nested Reduce is not supported by the executor")
    raise ExecutionError(f"cannot compile node {type(expr).__name__}")


def _compile_read(
    read: TensorRead,
    env: Mapping[str, np.ndarray],
    axes: Sequence[IterVar],
    batched: bool = False,
) -> _Compiled:
    """Resolve a tensor read to a view or a precomputed gather map.

    Index expressions depend only on iteration variables and constants, so
    the integer index grids are fully materialised at plan time. The common
    identity pattern ``T[i, j, ...]`` (every node axis, in order, sweeping
    the full tensor) short-circuits to the bare array — no copy at all.

    In batched mode the stored value has shape ``(B,) + tensor.shape``; the
    precomputed index grids address the trailing (request) dimensions while
    a leading slice carries every batch lane through the same gather. The
    gathered block is reshaped so its request dims stay trailing-aligned
    with the unbatched broadcast semantics.
    """
    key = id(read.tensor)
    base_shape = tuple(getattr(read.tensor, "shape", ()))

    index_names = [i.name for i in read.indices if isinstance(i, Var)]
    axis_names = [ax.name for ax in axes]
    extents = tuple(ax.extent for ax in axes)
    if (
        len(index_names) == len(read.indices)
        and index_names == axis_names
        and base_shape == extents
    ):
        return None, lambda v, key=key: v[key]

    parts = [_compile_expr(i, env, axes, batched) for i in read.indices]
    if any(f is not None for _, f in parts):
        if batched:
            # A data-dependent index would differ per batch lane, breaking
            # the shared precomputed gather. It does not occur in this IR;
            # batched planning refuses it so the server can fall back to
            # the unbatched path instead of silently mis-gathering.
            raise PlanningError(
                f"read of {read.tensor.name} uses data-dependent indexing, "
                "which batched execution plans do not support"
            )
        # Data-dependent indexing does not occur in this IR, but compile it
        # anyway so the executor degrades gracefully rather than crashing.
        thunks = tuple(
            (lambda v, c=c: c) if f is None else f for c, f in parts
        )

        def gather_dynamic(v: Values, key=key, thunks=thunks) -> np.ndarray:
            indices = [np.asarray(t(v), dtype=np.int64) for t in thunks]
            if len(indices) > 1:
                indices = list(np.broadcast_arrays(*indices))
            return v[key][tuple(indices)]

        return None, gather_dynamic

    indices = [np.asarray(c, dtype=np.int64) for c, _ in parts]
    if len(indices) > 1:
        indices = list(np.broadcast_arrays(*indices))
    idx = tuple(indices)
    if not batched:
        return None, lambda v, key=key, idx=idx: v[key][idx]

    # Unbatched gathers produce the broadcast shape of the index grids and
    # rely on trailing alignment against the axis grids; the batched result
    # must keep those dims trailing, padding with ones in between when the
    # grids collapse below the full axis rank (e.g. all-constant indices).
    grid_shape = np.broadcast_shapes(*[i.shape for i in indices])
    pad = (1,) * (len(axes) - len(grid_shape))

    def gather_batched(v: Values, key=key, idx=idx, pad=pad) -> np.ndarray:
        out = v[key][(slice(None),) + idx]
        if pad:
            out = out.reshape(out.shape[:1] + pad + out.shape[1:])
        return out

    return None, gather_batched


def _batched(shape: Tuple[int, ...], batch_size: Optional[int]) -> Tuple[int, ...]:
    if batch_size is None:
        return tuple(shape)
    return (batch_size,) + tuple(shape)


def compile_plan_step(
    tensor: Tensor,
    index: int,
    key: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> PlanStep:
    """Lower one computed tensor to an executable :class:`PlanStep`.

    The core of :meth:`ExecutionPlan._build_step`, callable outside a plan:
    the tiling pass (:mod:`repro.runtime.tiling`) compiles cache-block
    clones of chain members through this same path, so a block step runs
    exactly the numpy kernels per output row the untiled step would.
    ``key`` defaults to ``id(tensor)``.
    """
    if key is None:
        key = id(tensor)
    op = tensor.op
    assert op is not None
    batched = batch_size is not None

    pattern = match_matmul(tensor)
    if pattern is not None:
        lk, rk = id(pattern.lhs), id(pattern.rhs)
        formula = pattern.einsum_formula
        lhs_shape = tuple(pattern.lhs.shape)
        rhs_shape = tuple(pattern.rhs.shape)
        if batched:
            formula = (
                f"...{pattern.lhs_spec},...{pattern.rhs_spec}"
                f"->...{pattern.out_spec}"
            )
            lhs_shape = _batched(lhs_shape, batch_size)
            rhs_shape = _batched(rhs_shape, batch_size)
        path = contraction_path(formula, lhs_shape, rhs_shape)

        def run_einsum(
            v: Values, formula=formula, lk=lk, rk=rk, key=key, path=path
        ):
            np.einsum(formula, v[lk], v[rk], out=v[key], optimize=path)

        return PlanStep(index, tensor.name, "einsum", key, run_einsum)

    spatial = list(op.axes)
    body = op.body
    reduce_axes: List[IterVar] = []
    reduce_kind: Optional[str] = None
    if isinstance(body, Reduce):
        reduce_axes = list(body.axes)
        reduce_kind = body.kind
        body = body.body

    all_axes = spatial + reduce_axes
    total = 1 if batch_size is None else batch_size
    for ax in all_axes:
        total *= ax.extent
    if total > MAX_GRID_ELEMENTS:
        raise ExecutionError(
            f"evaluation grid for {tensor.name} has {total} points "
            f"(> {MAX_GRID_ELEMENTS}); use smaller shapes for functional "
            "execution — benchmarks use the analytic model"
        )

    env = _grid_env(all_axes)
    const, fn = _compile_expr(body, env, all_axes, batched)

    if reduce_kind is None:
        if fn is None:
            # Fully data-independent body: the result never changes.
            # (The arena view broadcasts the fold over any batch axis.)
            folded = np.broadcast_to(const, tensor.shape)

            def run_const(v: Values, key=key, folded=folded):
                np.copyto(v[key], folded)

            return PlanStep(
                index, tensor.name, "const", key, run_const,
                value_fn=lambda v, folded=folded: folded,
            )

        def run_map(v: Values, key=key, fn=fn):
            np.copyto(v[key], fn(v))

        return PlanStep(
            index, tensor.name, "map", key, run_map, value_fn=fn
        )

    full_shape = _batched(
        tuple(ax.extent for ax in all_axes), batch_size
    )
    offset = 0 if batch_size is None else 1
    reduce_dims = tuple(
        offset + d for d in range(len(spatial), len(all_axes))
    )
    red_fn = {"sum": np.sum, "max": np.max, "min": np.min}[reduce_kind]

    if fn is None:
        folded = red_fn(
            np.broadcast_to(const, full_shape), axis=reduce_dims
        ).astype(EXEC_DTYPE)

        def run_const_red(v: Values, key=key, folded=folded):
            np.copyto(v[key], folded)

        return PlanStep(
            index, tensor.name, "const", key, run_const_red,
            value_fn=lambda v, folded=folded: folded,
        )

    def run_reduce(
        v: Values,
        key=key,
        fn=fn,
        full=full_shape,
        dims=reduce_dims,
        red=red_fn,
    ):
        grid = np.broadcast_to(fn(v), full)
        red(grid, axis=dims, out=v[key])

    return PlanStep(index, tensor.name, "reduce", key, run_reduce)


class ExecutionPlan:
    """A TE program lowered to a flat, replayable step list + arena layout."""

    # Total plans built in this process (lets tests assert plan reuse).
    # Batched plans count here too — the counter lives on this class.
    plans_built = 0

    # One request per replay; BatchedExecutionPlan overrides per instance.
    batch_size: Optional[int] = None

    def __init__(
        self,
        program: TEProgram,
        memory_plan: Optional[MemoryPlan] = None,
        optimize: bool = False,
        executor: str = "wave",
        tile: bool = True,
        tile_budget: Optional[int] = None,
        tile_block_rows: Optional[int] = None,
        certify: bool = False,
        cost_model: Optional[object] = None,
    ) -> None:
        if executor not in ("wave", "serial", "graph"):
            raise PlanningError(
                f"unknown executor {executor!r}; choose 'wave' (default), "
                "'serial' (flat replay, the differential oracle) or "
                "'graph' (task-graph scheduler)"
            )
        self.executor_kind = executor
        # Block-level tiling of reduction chains (runtime.tiling), applied
        # by the optimizer pass pipeline: default on, profitable chains
        # only. tile_budget overrides the footprint model's cache budget;
        # tile_block_rows forces a block size (tests).
        self.tile = tile
        self.tile_budget = tile_budget
        self.tile_block_rows = tile_block_rows
        # Injected measured cost model (runtime.cost_model.CostModel) or
        # None: the optimizer consults it for decisions that are otherwise
        # static constants. With no model (or an empty profile store) every
        # decision falls back to today's static rules bit-for-bit.
        self.cost_model = cost_model
        self._scratch_pool = None
        self.program = program
        if memory_plan is None:
            memory_plan = plan_memory(
                program, sizer=self._sizer, exclusive_writes=True
            )
        self.memory_plan = memory_plan
        self._inputs_by_id: Dict[int, Tensor] = {
            id(t): t for t in program.inputs
        }
        self._used_input_ids: set = set()
        self.steps: List[PlanStep] = [
            self._build_step(i, node) for i, node in enumerate(program.nodes)
        ]
        self._output_allocs: List[Tuple[int, Tuple[int, ...]]] = [
            (id(t), self._batched_shape(t.shape)) for t in program.outputs
        ]
        self._output_keys: List[int] = [id(t) for t in program.outputs]
        self._validate_layout()
        # Plan-optimizer state; optimize_plan() rewrites steps/memory_plan
        # and fills these in (see repro.runtime.plan_opt).
        self.optimization = None
        self.waves: Optional[List[Tuple[Tuple[int, ...], bool]]] = None
        self._wave_pool = None
        self._hoist_steps: List[Tuple[PlanStep, Tuple[int, ...]]] = []
        self._hoist_roots: List[Tensor] = []
        self._hoist_input_ids: List[int] = []
        self._hoist_boundary_ids: List[int] = []
        self._hoist_cache: Dict[Tuple[int, ...], Values] = {}
        self._hoist_cache_by_content: Dict[str, Values] = {}
        self._hoist_lock = threading.Lock()
        self.hoist_evaluations = 0
        self.hoist_content_hits = 0
        if optimize:
            from repro.runtime.plan_opt import optimize_plan

            optimize_plan(self)
        # Translation validation of the built plan (verify.equiv): certify
        # the optimizer's transforms and the batched lowering against this
        # plan's program; any refuted certificate is a planning error. The
        # report is kept on the plan for inspection (repro certify).
        self.certification = None
        if certify:
            from repro.verify.equiv import certify_plan

            report = certify_plan(self)
            self.certification = report
            refuted = report.refuted
            if refuted:
                raise PlanningError(
                    "plan certification refuted: "
                    + "; ".join(c.render() for c in refuted)
                )
        # Task-graph executor state: compiled after optimization so the
        # dependency table covers the *final* steps (fused groups, hoisted
        # weights already stripped, elision-repacked arena).
        self.task_graph = None
        self.graph_executor = None
        if executor == "graph":
            from repro.runtime.task_graph import (
                GraphExecutor,
                build_task_graph,
            )

            self.task_graph = build_task_graph(self)
            self.graph_executor = GraphExecutor(self.task_graph)
        ExecutionPlan.plans_built += 1

    # ---- construction ----------------------------------------------------

    def _sizer(self, tensor: Tensor) -> int:
        """Arena bytes for one intermediate (every batch lane included)."""
        lanes = 1 if self.batch_size is None else self.batch_size
        return lanes * tensor.num_elements * EXEC_ITEMSIZE

    def _batched_shape(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if self.batch_size is None:
            return tuple(shape)
        return (self.batch_size,) + tuple(shape)

    def _build_step(self, index: int, node) -> PlanStep:
        from repro.cache.keys import step_content_key

        tensor: Tensor = node.tensor
        assert tensor.op is not None
        self._note_reads(tensor.op.body)
        step = compile_plan_step(
            tensor, index, key=id(tensor), batch_size=self.batch_size
        )
        step.step_key = step_content_key([node])
        step.cost_features = step_cost_features([node])
        return step

    def _note_reads(self, expr: Expr) -> None:
        """Record which placeholders the program actually reads."""
        if isinstance(expr, TensorRead):
            if id(expr.tensor) in self._inputs_by_id:
                self._used_input_ids.add(id(expr.tensor))
            for i in expr.indices:
                self._note_reads(i)
        elif isinstance(expr, (BinOp, Cmp)):
            self._note_reads(expr.lhs)
            self._note_reads(expr.rhs)
        elif isinstance(expr, Call):
            for a in expr.args:
                self._note_reads(a)
        elif isinstance(expr, IfThenElse):
            self._note_reads(expr.cond)
            self._note_reads(expr.then_value)
            self._note_reads(expr.else_value)
        elif isinstance(expr, Reduce):
            self._note_reads(expr.body)

    def _validate_layout(self) -> None:
        """Fail loudly at plan time on any unsafe arena layout.

        Delegates to the verifier's arena-hazard pass (``repro.verify``),
        which statically detects missing assignments, step-level WAR
        hazards (steps write results through ``out=`` while operand views
        are being read), pairwise WAW/aliasing and stale liveness, and
        raises :class:`~repro.errors.PlanningError` from its errors.
        """
        from repro.verify import Severity, verify_plan

        self.memory_plan.validate()
        report = verify_plan(
            self.program,
            self.memory_plan,
            sizer=self._sizer,
            require_exclusive_writes=True,
        )
        if report.has_errors:
            raise PlanningError(
                "unsafe arena layout:\n"
                + report.render(min_severity=Severity.ERROR)
            )

    # ---- execution -------------------------------------------------------

    @property
    def workspace_bytes(self) -> int:
        return self.memory_plan.workspace_bytes

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def new_arena(self) -> Arena:
        """Allocate one workspace for this plan (reused across requests)."""
        return Arena(self.memory_plan, batch_size=self.batch_size)

    def _bind_one(self, tensor: Tensor, value: np.ndarray) -> np.ndarray:
        """Convert one feed to the execution dtype, validating its shape.

        C-contiguous canonical layout: einsum's accumulation order (and so
        its low-order bits) depends on operand strides once contraction
        paths are in play, and arenas/evaluator feeds are contiguous too.
        """
        arr = np.ascontiguousarray(value, dtype=EXEC_DTYPE)
        if arr.shape != tensor.shape:
            raise ExecutionError(
                f"feed for {tensor.name} has shape {arr.shape}, "
                f"expected {tensor.shape}"
            )
        return arr

    def bind_feeds(self, feeds: Mapping[Tensor, np.ndarray]) -> Values:
        """Validate and convert feeds to the execution representation."""
        bound: Values = {
            id(tensor): self._bind_one(tensor, value)
            for tensor, value in feeds.items()
        }
        for used in self._used_input_ids:
            if used not in bound:
                name = self._inputs_by_id[used].name
                raise ExecutionError(
                    f"no feed provided for placeholder {name}"
                )
        if self._hoist_steps:
            originals = {id(t): v for t, v in feeds.items()}
            token = tuple(
                originals.get(i) for i in self._hoist_input_ids
            )
            if all(o is not None for o in token):
                bound[_HOIST_TOKEN] = token
        return bound

    def _trim_hoist_cache(self) -> None:
        """FIFO-evict both hoist caches to the limit (lock held by caller)."""
        while len(self._hoist_cache) >= _HOIST_CACHE_LIMIT:
            self._hoist_cache.pop(next(iter(self._hoist_cache)))
        while len(self._hoist_cache_by_content) >= _HOIST_CACHE_LIMIT:
            self._hoist_cache_by_content.pop(
                next(iter(self._hoist_cache_by_content))
            )

    def _hoist_values(self, token, bound: Values) -> Values:
        """Evaluate (or fetch) the hoisted weight subgraph for one request.

        The cache is keyed on the identities of the *original* feed objects
        for the hoist roots — a session feeding the same weight arrays every
        request hits after the first evaluation without touching the bytes.
        On an identity miss a content hash of the token arrays is tried
        before recomputing: a respawned worker re-binding the same weight
        bytes (fresh objects, e.g. re-attached shared memory) aliases the
        cached values under its new identity key instead of re-hoisting.
        Mutated weights can never serve stale values — a mutation changes
        the content hash, and a missing token always recomputes.
        """
        key = tuple(id(o) for o in token) if token is not None else None
        digest = None
        if key is not None:
            cached = self._hoist_cache.get(key)
            if cached is not None:
                return cached
            digest = _hoist_token_digest(token)
            with self._hoist_lock:
                cached = self._hoist_cache_by_content.get(digest)
                if cached is not None:
                    self.hoist_content_hits += 1
                    self._trim_hoist_cache()
                    self._hoist_cache[key] = cached
                    return cached
        env: Values = {i: bound[i] for i in self._hoist_input_ids}
        out: Values = {}
        for step, shape in self._hoist_steps:
            arr = np.empty(shape, dtype=EXEC_DTYPE)
            env[step.key] = arr
            step.run(env)
            out[step.key] = arr
        self.hoist_evaluations += 1
        if key is not None:
            with self._hoist_lock:
                self._trim_hoist_cache()
                self._hoist_cache[key] = out
                self._hoist_cache_by_content[digest] = out
        return out

    @property
    def hoist_boundary(self) -> List[Tensor]:
        """Hoisted tensors read by live steps (empty without hoisting)."""
        if self.optimization is None:
            return []
        return list(self.optimization.hoist_boundary)

    def seed_hoist_values(
        self,
        feeds: Mapping[Tensor, np.ndarray],
        values_by_name: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Pre-warm the hoist cache for one weight-set.

        ``feeds`` must cover the hoist roots with the *same array objects*
        later requests will feed — the cache entry is keyed on their
        identities (plus the content-hash fallback), so every subsequent
        replay hits without evaluating the hoisted subgraph.

        Without ``values_by_name`` the hoisted steps run once, exactly as a
        first request would trigger. With it (boundary values keyed by
        tensor name, e.g. mapped zero-copy out of a shared-memory weight
        store) the values are installed directly and *nothing* is
        recomputed — the cold-start path for sharded workers. Only hoist
        *boundary* values are installed; interior hoisted tensors are read
        exclusively by other hoisted steps, which never run on a cache hit.

        Returns the boundary values by name (lane 0 for batched plans),
        suitable for persisting to a weight store. Empty when the plan has
        no hoisted steps.
        """
        if not self._hoist_steps:
            return {}
        lanes = self.batch_size
        roots = [self._inputs_by_id[i] for i in self._hoist_input_ids]
        for t in roots:
            if t not in feeds:
                raise ExecutionError(
                    f"seed_hoist_values needs a feed for hoist root {t.name}"
                )
        if lanes is None:
            token = tuple(feeds[t] for t in roots)
        else:
            # bind_batch flattens input-major x lanes; every lane of a
            # seeded weight-set feeds the same object.
            token = tuple(feeds[t] for t in roots for _ in range(lanes))
        if values_by_name is None:
            bound: Values = {}
            for t in roots:
                arr = self._bind_one(t, feeds[t])
                bound[id(t)] = (
                    arr if lanes is None
                    else np.broadcast_to(arr, (lanes,) + arr.shape)
                )
            out = self._hoist_values(token, bound)
        else:
            out = {}
            for t in self.hoist_boundary:
                value = values_by_name.get(t.name)
                if value is None:
                    raise ExecutionError(
                        f"weight store is missing hoisted value {t.name!r}"
                    )
                arr = np.ascontiguousarray(value, dtype=EXEC_DTYPE)
                if arr.shape != tuple(t.shape):
                    raise ExecutionError(
                        f"hoisted value {t.name} has shape {arr.shape}, "
                        f"expected {tuple(t.shape)}"
                    )
                out[id(t)] = (
                    arr if lanes is None
                    else np.broadcast_to(arr, (lanes,) + arr.shape)
                )
            key = tuple(id(o) for o in token)
            with self._hoist_lock:
                self._trim_hoist_cache()
                self._hoist_cache[key] = out
                self._hoist_cache_by_content[
                    _hoist_token_digest(token)
                ] = out
        by_name = {}
        for t in self.hoist_boundary:
            arr = out[id(t)]
            by_name[t.name] = arr if lanes is None else arr[0]
        return by_name

    def _prepare_values(self, bound: Values, arena: Arena) -> Values:
        """Per-request values table: arena views, feeds, hoists, outputs."""
        values = dict(arena.views)
        values.update(bound)
        token = values.pop(_HOIST_TOKEN, None)
        if self._hoist_steps:
            values.update(self._hoist_values(token, bound))
        for key, shape in self._output_allocs:
            values[key] = np.empty(shape, dtype=EXEC_DTYPE)
        return values

    def execute(
        self,
        bound: Values,
        arena: Arena,
        step_seconds: Optional[List[float]] = None,
        scheduler=None,
    ) -> List[np.ndarray]:
        """Replay the step list once.

        ``bound`` comes from :meth:`bind_feeds`; ``arena`` from
        :meth:`new_arena`. With ``step_seconds`` (a list of one float per
        step) each step's wall time is accumulated into it. ``scheduler``
        injects a :class:`~repro.runtime.task_graph.SchedulerPolicy` for
        this request (graph executor only — the deterministic test hook).
        """
        values = self._prepare_values(bound, arena)
        if self.graph_executor is not None:
            self.graph_executor.run(
                values, scheduler=scheduler, step_seconds=step_seconds
            )
        elif scheduler is not None:
            raise ExecutionError(
                "scheduler injection requires ExecutionPlan("
                "executor='graph')"
            )
        elif step_seconds is None:
            if self.waves is None or self.executor_kind == "serial":
                for step in self.steps:
                    step.run(values)
            else:
                steps = self.steps
                pool = self._wave_pool
                for positions, parallel in self.waves:
                    if parallel and pool is not None:
                        pool.run_all([
                            (lambda s=steps[p], v=values: s.run(v))
                            for p in positions
                        ])
                    else:
                        for p in positions:
                            steps[p].run(values)
        else:
            from time import perf_counter

            # Timed replays run serially (self.steps is already in wave
            # execution order) so per-step attribution stays exact.
            for i, step in enumerate(self.steps):
                start = perf_counter()
                step.run(values)
                step_seconds[i] += perf_counter() - start
        return [values[key] for key in self._output_keys]

    def execute_serial(self, bound: Values, arena: Arena) -> List[np.ndarray]:
        """Flat single-threaded replay of the step list.

        The differential oracle for the task-graph executor: identical
        steps, identical arena, no scheduler — any divergence between this
        and :meth:`execute` is a scheduling bug by construction.
        """
        values = self._prepare_values(bound, arena)
        for step in self.steps:
            step.run(values)
        return [values[key] for key in self._output_keys]

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        """One-shot convenience: bind, allocate a throwaway arena, execute.

        Serving paths should use :class:`~repro.runtime.session.
        InferenceSession`, which reuses arenas across requests.
        """
        return self.execute(self.bind_feeds(feeds), self.new_arena())

    def __repr__(self) -> str:
        tag = " optimized" if self.optimization is not None else ""
        return (
            f"<ExecutionPlan {self.program.name}{tag}: "
            f"{len(self.steps)} steps, {self.workspace_bytes} arena bytes>"
        )


class BatchedExecutionPlan(ExecutionPlan):
    """An execution plan compiled once for a fixed leading batch axis.

    Every step processes ``batch_size`` independent requests in one numpy
    call: einsum contractions run the ellipsis-batched formula with a path
    precomputed for the batched operand shapes, elementwise and gather
    steps broadcast their plan-time index grids over the batch, and the
    arena packs ``batch_size`` lanes per intermediate (the memory plan is
    computed with the batch-aware sizer, so disjoint live ranges still
    share bytes).

    Lane ``i`` is bit-identical to an unbatched replay of request ``i``,
    which makes padding safe: a partially-filled batch replays duplicate
    feeds in the spare lanes and the caller discards their outputs.
    """

    def __init__(
        self,
        program: TEProgram,
        batch_size: int,
        memory_plan: Optional[MemoryPlan] = None,
        optimize: bool = False,
        executor: str = "wave",
        tile: bool = True,
        tile_budget: Optional[int] = None,
        tile_block_rows: Optional[int] = None,
        certify: bool = False,
        cost_model: Optional[object] = None,
    ) -> None:
        if batch_size < 1:
            raise PlanningError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        # Set before super().__init__: the sizer and step builders read it.
        self.batch_size = int(batch_size)
        super().__init__(
            program, memory_plan, optimize=optimize, executor=executor,
            tile=tile, tile_budget=tile_budget,
            tile_block_rows=tile_block_rows, certify=certify,
            cost_model=cost_model,
        )

    def bind_batch(
        self, feeds_list: Sequence[Mapping[Tensor, np.ndarray]]
    ) -> Values:
        """Validate per-request feeds and stack them along the batch axis.

        Every request must feed the same placeholders (each at the
        unbatched per-request shape); the bound arrays have shape
        ``(batch_size,) + tensor.shape``. A placeholder fed the *same
        array object* by every request (the common case for weights) is
        validated once and broadcast as a zero-stride batch view instead
        of copied per lane — bit-identical, since every lane reads the
        same bytes either way.
        """
        if len(feeds_list) != self.batch_size:
            raise ExecutionError(
                f"batch of {len(feeds_list)} requests does not fill this "
                f"plan's batch_size={self.batch_size}; pad or re-bucket"
            )
        first = feeds_list[0]
        if any(len(feeds) != len(first) for feeds in feeds_list[1:]):
            raise ExecutionError(
                "requests in one batch must feed the same placeholders"
            )
        bound: Values = {}
        batch_shape = (self.batch_size,)
        for tensor, value in first.items():
            lanes = [value]
            for feeds in feeds_list[1:]:
                try:
                    lanes.append(feeds[tensor])
                except KeyError:
                    raise ExecutionError(
                        "requests in one batch must feed the same "
                        f"placeholders ({tensor.name} missing from one)"
                    ) from None
            if all(lane is value for lane in lanes[1:]):
                arr = self._bind_one(tensor, value)
                stacked = np.broadcast_to(arr, batch_shape + arr.shape)
            else:
                stacked = np.stack(
                    [self._bind_one(tensor, lane) for lane in lanes]
                )
            bound[id(tensor)] = stacked
        for used in self._used_input_ids:
            if used not in bound:
                name = self._inputs_by_id[used].name
                raise ExecutionError(
                    f"no feed provided for placeholder {name}"
                )
        if self._hoist_steps:
            token = []
            for i in self._hoist_input_ids:
                tensor = self._inputs_by_id[i]
                for feeds in feeds_list:
                    token.append(feeds.get(tensor))
            if all(o is not None for o in token):
                bound[_HOIST_TOKEN] = tuple(token)
        return bound

    def run_batch(
        self, feeds_list: Sequence[Mapping[Tensor, np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """One-shot convenience: stack, execute once, split per request.

        Serving paths should go through :class:`~repro.runtime.session.
        InferenceSession` / :class:`~repro.runtime.batching.BatchingServer`,
        which pool arenas and handle bucketing/padding.
        """
        outputs = self.execute(self.bind_batch(feeds_list), self.new_arena())
        return [
            [np.array(out[lane]) for out in outputs]
            for lane in range(self.batch_size)
        ]

    def run(self, feeds: Mapping[Tensor, np.ndarray]) -> List[np.ndarray]:
        raise ExecutionError(
            "a BatchedExecutionPlan replays whole batches; use run_batch() "
            "(or an unbatched ExecutionPlan for single requests)"
        )

    def __repr__(self) -> str:
        tag = " optimized" if self.optimization is not None else ""
        return (
            f"<BatchedExecutionPlan {self.program.name}{tag} "
            f"x{self.batch_size}: {len(self.steps)} steps, "
            f"{self.workspace_bytes} arena bytes>"
        )
