"""Pretty printing of tensor expressions and TE programs."""

from __future__ import annotations

from typing import Iterable, List

from repro.te.tensor import Tensor
from repro.te.traversal import input_tensors


def format_tensor(tensor: Tensor) -> str:
    """One-line ``te.compute``-style rendering of a tensor definition."""
    shape = "x".join(str(extent) for extent in tensor.shape)
    if tensor.op is None:
        return f"{tensor.name}: placeholder({shape}, {tensor.dtype})"
    axes = ", ".join(ax.name for ax in tensor.op.axes)
    return f"{tensor.name}[{axes}] : ({shape}) = {tensor.op.body!r}"


def format_program(tensors: Iterable[Tensor]) -> str:
    """Multi-line rendering of a sequence of tensor definitions."""
    lines: List[str] = []
    for tensor in tensors:
        lines.append(format_tensor(tensor))
    return "\n".join(lines)


def describe_dependencies(tensor: Tensor) -> str:
    """Summarise which tensors a compute tensor reads."""
    if tensor.op is None:
        return f"{tensor.name}: (input)"
    names = ", ".join(t.name for t in input_tensors(tensor.op.body))
    return f"{tensor.name} <- [{names}]"
