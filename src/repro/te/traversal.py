"""Expression traversal utilities: walking, collecting, and rewriting.

These are the workhorses of every analysis and transformation pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TEError
from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    IterVar,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.tensor import Tensor


def children(expr: Expr) -> Tuple[Expr, ...]:
    """Direct sub-expressions of a node."""
    if isinstance(expr, (BinOp, Cmp)):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Call):
        return expr.args
    if isinstance(expr, TensorRead):
        return expr.indices
    if isinstance(expr, Reduce):
        return (expr.body,)
    if isinstance(expr, IfThenElse):
        return (expr.cond, expr.then_value, expr.else_value)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of all nodes in an expression tree."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def collect_reads(expr: Expr) -> List[TensorRead]:
    """All tensor reads in an expression, in traversal order."""
    return [node for node in walk(expr) if isinstance(node, TensorRead)]


def input_tensors(expr: Expr) -> List[Tensor]:
    """Distinct tensors read by an expression, in first-read order."""
    seen: Set[int] = set()
    out: List[Tensor] = []
    for read in collect_reads(expr):
        if id(read.tensor) not in seen:
            seen.add(id(read.tensor))
            out.append(read.tensor)  # type: ignore[arg-type]
    return out


def free_vars(expr: Expr) -> Set[str]:
    """Names of all variables referenced by an expression."""
    return {node.name for node in walk(expr) if isinstance(node, Var)}


def contains_reduce(expr: Expr) -> bool:
    """Whether the expression contains a reduction anywhere."""
    return any(isinstance(node, Reduce) for node in walk(expr))


def rewrite(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite.

    ``fn`` is applied to each node after its children were rewritten; a
    ``None`` return keeps the node. Subtrees that no rewrite touched are
    returned *by identity*, so callers can cheaply detect "nothing changed"
    with ``result is expr``.
    """
    if isinstance(expr, BinOp):
        lhs, rhs = rewrite(expr.lhs, fn), rewrite(expr.rhs, fn)
        node: Expr = (
            expr if lhs is expr.lhs and rhs is expr.rhs else BinOp(expr.op, lhs, rhs)
        )
    elif isinstance(expr, Cmp):
        lhs, rhs = rewrite(expr.lhs, fn), rewrite(expr.rhs, fn)
        node = (
            expr if lhs is expr.lhs and rhs is expr.rhs else Cmp(expr.op, lhs, rhs)
        )
    elif isinstance(expr, Call):
        args = tuple(rewrite(a, fn) for a in expr.args)
        node = (
            expr
            if all(a is b for a, b in zip(args, expr.args))
            else Call(expr.func, args)
        )
    elif isinstance(expr, TensorRead):
        indices = tuple(rewrite(i, fn) for i in expr.indices)
        node = (
            expr
            if all(a is b for a, b in zip(indices, expr.indices))
            else TensorRead(expr.tensor, indices)
        )
    elif isinstance(expr, Reduce):
        body = rewrite(expr.body, fn)
        node = expr if body is expr.body else Reduce(expr.kind, body, expr.axes)
    elif isinstance(expr, IfThenElse):
        cond = rewrite(expr.cond, fn)
        then_value = rewrite(expr.then_value, fn)
        else_value = rewrite(expr.else_value, fn)
        node = (
            expr
            if cond is expr.cond
            and then_value is expr.then_value
            and else_value is expr.else_value
            else IfThenElse(cond, then_value, else_value)
        )
    else:
        node = expr
    replaced = fn(node)
    return node if replaced is None else replaced


def substitute_vars(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Replace every :class:`Var` whose name is in ``mapping``."""

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var):
            return mapping.get(node.name)
        return None

    return rewrite(expr, visit)


def replace_tensor_reads(
    expr: Expr, fn: Callable[[TensorRead], Optional[Expr]]
) -> Expr:
    """Replace tensor reads for which ``fn`` returns a new expression."""

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, TensorRead):
            return fn(node)
        return None

    return rewrite(expr, visit)


def rename_reduce_axes(expr: Expr, suffix: str) -> Expr:
    """Give every reduce axis in ``expr`` a fresh name with ``suffix``.

    Needed when inlining one TE body into another so that reduce-axis names
    from different TEs never collide.
    """

    renames: Dict[str, IterVar] = {}

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, Reduce):
            new_axes = []
            for ax in node.axes:
                if ax.name not in renames:
                    renames[ax.name] = IterVar(
                        Var(ax.name + suffix), ax.dom, kind="reduce"
                    )
                new_axes.append(renames[ax.name])
            body = substitute_vars(
                node.body, {old: iv.var for old, iv in renames.items()}
            )
            return Reduce(node.kind, body, tuple(new_axes))
        return None

    return rewrite(expr, visit)


def count_nodes(expr: Expr) -> int:
    """Number of nodes in the expression tree."""
    return sum(1 for _ in walk(expr))


def validate_closed(expr: Expr, allowed: Sequence[IterVar]) -> None:
    """Check that every variable in ``expr`` is bound by ``allowed`` or a Reduce.

    Raises :class:`TEError` on dangling variables — this catches malformed
    transformations early.
    """
    bound = {iv.name for iv in allowed}
    for node in walk(expr):
        if isinstance(node, Reduce):
            bound.update(ax.name for ax in node.axes)
    dangling = free_vars(expr) - bound
    if dangling:
        raise TEError(f"dangling variables in expression: {sorted(dangling)}")
