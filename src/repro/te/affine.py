"""Quasi-affine index maps (paper Sec. 5.2, Eq. 1-2).

For a *one-relies-on-one* TE the mapping from an output element's indices to
the input element it reads is an affine function ``M @ v + c`` where ``v`` is
the vector of output indices. Vertical transformation (Sec. 6.2) composes
these maps: ``f_{i+1,i}(v) = M_{i+1} (M_i v + c_i) + c_{i+1}``.

Strided slices and other quasi-affine accesses (e.g. ``C[2*i, j]``) are
covered because coefficients may be any integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TEError
from repro.te.expr import BinOp, Const, Expr, IterVar, TensorRead, Var
from repro.te.tensor import Tensor


@dataclass(frozen=True)
class AffineMap:
    """An affine map ``v -> M @ v + c`` from output indices to input indices.

    ``matrix`` has shape (input_ndim, output_ndim); ``offset`` has shape
    (input_ndim,).
    """

    matrix: Tuple[Tuple[int, ...], ...]
    offset: Tuple[int, ...]

    def __post_init__(self) -> None:
        rows = len(self.matrix)
        if rows != len(self.offset):
            raise TEError("affine map matrix/offset rank mismatch")
        widths = {len(row) for row in self.matrix}
        if len(widths) > 1:
            raise TEError("ragged affine matrix")

    @property
    def input_ndim(self) -> int:
        return len(self.matrix)

    @property
    def output_ndim(self) -> int:
        return len(self.matrix[0]) if self.matrix else 0

    def as_numpy(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.array(self.matrix, dtype=np.int64).reshape(
                self.input_ndim, self.output_ndim
            ),
            np.array(self.offset, dtype=np.int64),
        )

    def apply(self, indices: Sequence[int]) -> Tuple[int, ...]:
        """Map concrete output indices to the input indices they read."""
        matrix, offset = self.as_numpy()
        v = np.array(indices, dtype=np.int64)
        if v.shape[0] != self.output_ndim:
            raise TEError(
                f"affine map expects {self.output_ndim} indices, got {len(indices)}"
            )
        return tuple(int(x) for x in matrix @ v + offset)

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """The map ``v -> self(inner(v))`` (Eq. 2 of the paper).

        ``inner`` maps the final output's indices to this map's inputs.
        """
        m_outer, c_outer = self.as_numpy()
        m_inner, c_inner = inner.as_numpy()
        if self.output_ndim != inner.input_ndim:
            raise TEError(
                f"cannot compose affine maps: outer consumes {self.output_ndim} "
                f"indices, inner produces {inner.input_ndim}"
            )
        matrix = m_outer @ m_inner
        offset = m_outer @ c_inner + c_outer
        return AffineMap(
            tuple(tuple(int(x) for x in row) for row in matrix),
            tuple(int(x) for x in offset),
        )

    @staticmethod
    def identity(ndim: int) -> "AffineMap":
        eye = np.eye(ndim, dtype=np.int64)
        return AffineMap(
            tuple(tuple(int(x) for x in row) for row in eye),
            tuple(0 for _ in range(ndim)),
        )

    def is_identity(self) -> bool:
        if self.input_ndim != self.output_ndim:
            return False
        matrix, offset = self.as_numpy()
        return bool(
            np.array_equal(matrix, np.eye(self.input_ndim, dtype=np.int64))
            and not offset.any()
        )

    def rebuild_indices(self, out_vars: Sequence[Var]) -> Tuple[Expr, ...]:
        """Turn the map back into index expressions over ``out_vars``."""
        if len(out_vars) != self.output_ndim:
            raise TEError("variable count does not match affine map arity")
        exprs: List[Expr] = []
        for row, c in zip(self.matrix, self.offset):
            acc: Optional[Expr] = None
            for coeff, var in zip(row, out_vars):
                if coeff == 0:
                    continue
                term: Expr = var if coeff == 1 else BinOp(
                    "mul", Const(coeff, "int32"), var
                )
                acc = term if acc is None else BinOp("add", acc, term)
            if c != 0 or acc is None:
                const = Const(int(c), "int32")
                acc = const if acc is None else BinOp("add", acc, const)
            exprs.append(acc)
        return tuple(exprs)

    def __repr__(self) -> str:
        return f"AffineMap(M={list(map(list, self.matrix))}, c={list(self.offset)})"


def linearize(expr: Expr, var_order: Sequence[str]) -> Tuple[Dict[str, int], int]:
    """Decompose an index expression into integer coefficients + constant.

    Supports +, -, and multiplication by constants — the quasi-affine subset
    of Sec. 5.2. Raises :class:`TEError` for anything non-affine
    (e.g. ``i * j`` or ``i // 2``), which callers treat as "not
    one-relies-on-one in affine form".
    """
    known = set(var_order)

    def go(node: Expr) -> Tuple[Dict[str, int], int]:
        if isinstance(node, Const):
            if not isinstance(node.value, int):
                raise TEError(f"non-integer constant {node.value!r} in index")
            return {}, int(node.value)
        if isinstance(node, Var):
            if node.name not in known:
                raise TEError(f"unknown index variable {node.name!r}")
            return {node.name: 1}, 0
        if isinstance(node, BinOp):
            if node.op == "add":
                lc, lk = go(node.lhs)
                rc, rk = go(node.rhs)
                coeffs = dict(lc)
                for name, coeff in rc.items():
                    coeffs[name] = coeffs.get(name, 0) + coeff
                return coeffs, lk + rk
            if node.op == "sub":
                lc, lk = go(node.lhs)
                rc, rk = go(node.rhs)
                coeffs = dict(lc)
                for name, coeff in rc.items():
                    coeffs[name] = coeffs.get(name, 0) - coeff
                return coeffs, lk - rk
            if node.op == "mul":
                lc, lk = go(node.lhs)
                rc, rk = go(node.rhs)
                if not lc:  # const * affine
                    return {k: lk * v for k, v in rc.items()}, lk * rk
                if not rc:  # affine * const
                    return {k: rk * v for k, v in lc.items()}, lk * rk
                raise TEError("non-affine index: product of variables")
        raise TEError(f"non-affine index expression: {node!r}")

    coeffs, const = go(expr)
    return coeffs, const


def extract_read_map(
    read: TensorRead, spatial_axes: Sequence[IterVar]
) -> AffineMap:
    """Affine map from the TE's spatial axes to the indices of one read."""
    var_order = [ax.name for ax in spatial_axes]
    rows: List[Tuple[int, ...]] = []
    offsets: List[int] = []
    for index in read.indices:
        coeffs, const = linearize(index, var_order)
        rows.append(tuple(coeffs.get(name, 0) for name in var_order))
        offsets.append(const)
    return AffineMap(tuple(rows), tuple(offsets))


def try_extract_read_map(
    read: TensorRead, spatial_axes: Sequence[IterVar]
) -> Optional[AffineMap]:
    """Like :func:`extract_read_map` but returns ``None`` if non-affine."""
    try:
        return extract_read_map(read, spatial_axes)
    except TEError:
        return None
