"""Structural pattern recognisers over tensor expressions.

Used by the evaluator (to dispatch matmul-like TEs to ``einsum``), by the
scheduler (tensor-core eligibility) and by TE characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.te.expr import BinOp, Call, Cmp, Const, Expr, IfThenElse, Reduce, TensorRead, Var
from repro.te.tensor import Tensor
from repro.te.traversal import contains_reduce, walk


@lru_cache(maxsize=None)
def contraction_path(formula: str, *operand_shapes: Tuple[int, ...]) -> list:
    """The ``np.einsum_path`` contraction order for one formula + shapes.

    Shapes are known wherever a contraction is dispatched (plan time in the
    executor, operand evaluation time in the evaluator), so the path — which
    unlocks numpy's BLAS dispatch — is computed once per (formula, shapes)
    and shared process-wide. Every einsum site must use this helper: the
    optimized path changes low-order summation bits versus the default
    strided loop, and bit-identity between the evaluator oracle, the
    execution plan and the batched plan holds because all three issue the
    *same* einsum call.
    """
    operands = [np.broadcast_to(np.float64(0.0), s) for s in operand_shapes]
    return np.einsum_path(formula, *operands, optimize="optimal")[0]


def is_elementwise(tensor: Tensor) -> bool:
    """True for TEs whose body contains no reduction (one-relies-on-one)."""
    if tensor.op is None:
        return False
    return not contains_reduce(tensor.op.body)


def is_reduction(tensor: Tensor) -> bool:
    """True for TEs with a top-level reduction (one-relies-on-many)."""
    return tensor.op is not None and isinstance(tensor.op.body, Reduce)


def reduction_kind(tensor: Tensor) -> Optional[str]:
    """``sum``/``max``/``min`` for reduction TEs, else ``None``."""
    if tensor.op is not None and isinstance(tensor.op.body, Reduce):
        return tensor.op.body.kind
    return None


@dataclass(frozen=True)
class MatmulPattern:
    """A recognised contraction ``out[spatial] = sum over reduce of lhs*rhs``.

    ``lhs_spec``/``rhs_spec``/``out_spec`` are einsum-style index strings over
    a shared alphabet, e.g. ``("ik", "kj", "ij")`` for a plain GEMM.
    """

    lhs: Tensor
    rhs: Tensor
    lhs_spec: str
    rhs_spec: str
    out_spec: str

    @property
    def einsum_formula(self) -> str:
        return f"{self.lhs_spec},{self.rhs_spec}->{self.out_spec}"


_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _pure_var_indices(read: TensorRead) -> Optional[List[str]]:
    """Index variable names if every index is a bare Var, else None."""
    names: List[str] = []
    for index in read.indices:
        if not isinstance(index, Var):
            return None
        names.append(index.name)
    return names


def match_matmul(tensor: Tensor) -> Optional[MatmulPattern]:
    """Recognise GEMM / batched-matmul / GEMV-shaped contractions.

    Matches ``sum(lhs[vars...] * rhs[vars...])`` where every index is a bare
    iteration variable. Convolutions (whose indices are affine like
    ``h + rh``) intentionally do not match and use the generic evaluator.
    """
    if tensor.op is None or not isinstance(tensor.op.body, Reduce):
        return None
    red = tensor.op.body
    if red.kind != "sum" or not isinstance(red.body, BinOp) or red.body.op != "mul":
        return None
    lhs, rhs = red.body.lhs, red.body.rhs
    if not isinstance(lhs, TensorRead) or not isinstance(rhs, TensorRead):
        return None
    lhs_names = _pure_var_indices(lhs)
    rhs_names = _pure_var_indices(rhs)
    if lhs_names is None or rhs_names is None:
        return None

    spatial_names = [ax.name for ax in tensor.op.axes]
    reduce_names = [ax.name for ax in red.axes]
    legal = set(spatial_names) | set(reduce_names)
    if not set(lhs_names) <= legal or not set(rhs_names) <= legal:
        return None
    # Every index must sweep its full tensor dimension, otherwise the read
    # covers only a region and einsum dispatch would be wrong (can happen
    # after horizontal merging redirects reads into a concatenated tensor).
    extents = {ax.name: ax.extent for ax in tensor.op.axes}
    extents.update({ax.name: ax.extent for ax in red.axes})
    for read, names in ((lhs, lhs_names), (rhs, rhs_names)):
        shape = getattr(read.tensor, "shape", ())
        if len(names) != len(shape):
            return None
        for name, dim in zip(names, shape):
            if extents[name] != dim:
                return None
    # Every spatial axis must appear somewhere, else this is a broadcast
    # contraction the simple einsum dispatch below would mishandle.
    if not set(spatial_names) <= (set(lhs_names) | set(rhs_names)):
        return None

    letters: Dict[str, str] = {}
    for name in spatial_names + reduce_names:
        if name not in letters:
            if len(letters) >= len(_LETTERS):
                return None
            letters[name] = _LETTERS[len(letters)]
    try:
        lhs_spec = "".join(letters[n] for n in lhs_names)
        rhs_spec = "".join(letters[n] for n in rhs_names)
    except KeyError:
        return None
    out_spec = "".join(letters[n] for n in spatial_names)
    return MatmulPattern(lhs.tensor, rhs.tensor, lhs_spec, rhs_spec, out_spec)  # type: ignore[arg-type]


def count_arith_ops(
    expr: Expr, unit_intrinsics: bool = False, include_index_math: bool = True
) -> int:
    """Arithmetic-instruction count of one evaluation of ``expr``.

    Reductions multiply their body cost by the reduction domain size (the
    body runs once per reduction point) plus one combine op per point.

    ``unit_intrinsics`` counts every intrinsic call as a single instruction —
    the right granularity for the paper's compute/memory *classification*
    (Sec. 5.3 counts instructions per element; a ``tanh`` is one MUFU op),
    whereas the performance model wants the full FLOP-equivalent cost.
    ``include_index_math=False`` excludes address computation inside tensor
    read indices (classification counts data arithmetic, not addressing —
    a reshape moves bytes, it does not compute).
    """
    from repro.te.expr import intrinsic_flop_cost

    if isinstance(expr, (Const, Var)):
        return 0
    if isinstance(expr, TensorRead):
        if not include_index_math:
            return 0
        return sum(
            count_arith_ops(i, unit_intrinsics, include_index_math)
            for i in expr.indices
        )
    if isinstance(expr, (BinOp, Cmp)):
        return (
            1
            + count_arith_ops(expr.lhs, unit_intrinsics, include_index_math)
            + count_arith_ops(expr.rhs, unit_intrinsics, include_index_math)
        )
    if isinstance(expr, Call):
        cost = 1 if unit_intrinsics else intrinsic_flop_cost(expr.func)
        return cost + sum(
            count_arith_ops(a, unit_intrinsics, include_index_math)
            for a in expr.args
        )
    if isinstance(expr, IfThenElse):
        # Selection executes one branch per element; the predicate itself is
        # block-uniform after codegen (horizontal merges guard branches with
        # `if (blockIdx < ...)`), so it hoists out of the per-element cost.
        return 1 + max(
            count_arith_ops(expr.then_value, unit_intrinsics, include_index_math),
            count_arith_ops(expr.else_value, unit_intrinsics, include_index_math),
        )
    if isinstance(expr, Reduce):
        domain = 1
        for ax in expr.axes:
            domain *= ax.extent
        return domain * (
            1 + count_arith_ops(expr.body, unit_intrinsics, include_index_math)
        )
    return 0


def count_memory_reads(expr: Expr) -> int:
    """Number of tensor-element reads per evaluation of ``expr``."""
    if isinstance(expr, TensorRead):
        return 1
    if isinstance(expr, Reduce):
        domain = 1
        for ax in expr.axes:
            domain *= ax.extent
        return domain * count_memory_reads(expr.body)
    if isinstance(expr, (BinOp, Cmp)):
        return count_memory_reads(expr.lhs) + count_memory_reads(expr.rhs)
    if isinstance(expr, Call):
        return sum(count_memory_reads(a) for a in expr.args)
    if isinstance(expr, IfThenElse):
        return (
            count_memory_reads(expr.cond)
            + count_memory_reads(expr.then_value)
            + count_memory_reads(expr.else_value)
        )
    return 0
