"""Expression IR for tensor expressions.

This is the core intermediate representation the whole compiler operates on.
A tensor expression (TE) describes how *one element* of an output tensor is
computed from input tensors, in a pure functional style mirroring TVM's
``te.compute``:

    O0 = te.compute((64, 64), lambda i, j: te.sum(I0[i, rk] * W0[rk, j],
                                                  axis=[rk]))

Expression nodes are immutable; structural equality and hashing are
value-based, which lets analyses memoise on sub-expressions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.errors import TEError

# Scalar Python values accepted wherever an expression is expected.
ExprLike = Union["Expr", int, float, bool]


def _wrap(value: ExprLike) -> "Expr":
    """Coerce a Python scalar (or IterVar) into an expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, IterVar):
        return value.var
    if isinstance(value, bool):
        return Const(int(value), "bool")
    if isinstance(value, int):
        return Const(value, "int32")
    if isinstance(value, float):
        return Const(value, "float32")
    raise TEError(f"cannot use {value!r} of type {type(value).__name__} in a TE")


@dataclass(frozen=True)
class Expr:
    """Base class for all expression nodes.

    Provides operator overloading so TE bodies read like ordinary math.
    """

    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("add", self, _wrap(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("add", _wrap(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", self, _wrap(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("sub", _wrap(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", self, _wrap(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp("mul", _wrap(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return BinOp("div", self, _wrap(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return BinOp("div", _wrap(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("floordiv", self, _wrap(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp("mod", self, _wrap(other))

    def __neg__(self) -> "Expr":
        return BinOp("sub", Const(0, "int32"), self)

    # Comparisons build predicate expressions (used by if_then_else).
    def __lt__(self, other: ExprLike) -> "Expr":
        return Cmp("lt", self, _wrap(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return Cmp("le", self, _wrap(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return Cmp("gt", self, _wrap(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return Cmp("ge", self, _wrap(other))

    def equal(self, other: ExprLike) -> "Expr":
        """Element-wise equality predicate (``==`` is reserved for identity)."""
        return Cmp("eq", self, _wrap(other))


@dataclass(frozen=True)
class Const(Expr):
    """A scalar constant."""

    value: Union[int, float]
    dtype: str = "float32"

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A scalar iteration variable reference (spatial or reduction)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Range:
    """A half-open integer interval ``[lo, hi)``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise TEError(f"empty range [{self.lo}, {self.hi})")

    @property
    def extent(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi})"


@dataclass(frozen=True)
class IterVar:
    """An iteration variable with a domain.

    ``kind`` is ``"spatial"`` for output-shape axes and ``"reduce"`` for
    reduction axes created by :func:`repro.te.tensor.reduce_axis`.
    """

    var: Var
    dom: Range
    kind: str = "spatial"

    def __post_init__(self) -> None:
        if self.kind not in ("spatial", "reduce"):
            raise TEError(f"bad IterVar kind {self.kind!r}")

    @property
    def name(self) -> str:
        return self.var.name

    @property
    def extent(self) -> int:
        return self.dom.extent

    def __repr__(self) -> str:
        tag = "r" if self.kind == "reduce" else "s"
        return f"{self.name}{tag}{self.dom}"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: add/sub/mul/div/floordiv/mod/max/min/pow."""

    op: str
    lhs: Expr
    rhs: Expr

    _VALID = ("add", "sub", "mul", "div", "floordiv", "mod", "max", "min", "pow")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise TEError(f"unknown binary op {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison predicate: lt/le/gt/ge/eq/ne."""

    op: str
    lhs: Expr
    rhs: Expr

    _VALID = ("lt", "le", "gt", "ge", "eq", "ne")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise TEError(f"unknown comparison op {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call (exp, sigmoid, relu, ...)."""

    func: str
    args: Tuple[Expr, ...]

    _VALID = (
        "exp",
        "log",
        "sqrt",
        "rsqrt",
        "erf",
        "tanh",
        "sigmoid",
        "relu",
        "gelu",
        "abs",
        "floor",
        "ceil",
        "cast_fp16",
        "cast_fp32",
    )

    def __post_init__(self) -> None:
        if self.func not in self._VALID:
            raise TEError(f"unknown intrinsic {self.func!r}")

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class TensorRead(Expr):
    """A read of one element of a tensor: ``A[i, j]``.

    ``tensor`` is a :class:`repro.te.tensor.Tensor`; it is typed loosely here
    to avoid a circular import.
    """

    tensor: object
    indices: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        ndim = len(getattr(self.tensor, "shape", ()))
        if ndim != len(self.indices):
            raise TEError(
                f"tensor {getattr(self.tensor, 'name', '?')} has {ndim} dims, "
                f"indexed with {len(self.indices)}"
            )

    def __repr__(self) -> str:
        idx = ", ".join(map(repr, self.indices))
        return f"{getattr(self.tensor, 'name', '?')}[{idx}]"

    # dataclass eq on `tensor` would recurse through Tensor -> op -> body;
    # identity of the tensor object is the correct notion here.
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TensorRead)
            and self.tensor is other.tensor
            and self.indices == other.indices
        )

    def __hash__(self) -> int:
        return hash((id(self.tensor), self.indices))


@dataclass(frozen=True)
class Reduce(Expr):
    """A reduction over one or more reduce axes.

    ``kind`` is one of ``sum``, ``max``, ``min``; ``init`` is the identity
    element used to seed the accumulator.
    """

    kind: str
    body: Expr
    axes: Tuple[IterVar, ...]

    _VALID = ("sum", "max", "min")

    def __post_init__(self) -> None:
        if self.kind not in self._VALID:
            raise TEError(f"unknown reduction kind {self.kind!r}")
        if not self.axes:
            raise TEError("reduction must have at least one axis")
        for ax in self.axes:
            if ax.kind != "reduce":
                raise TEError(f"axis {ax.name} of Reduce is not a reduce axis")

    @property
    def init(self) -> float:
        return {"sum": 0.0, "max": -math.inf, "min": math.inf}[self.kind]

    def __repr__(self) -> str:
        axes = ", ".join(ax.name for ax in self.axes)
        return f"{self.kind}({self.body!r}, axis=[{axes}])"


@dataclass(frozen=True)
class IfThenElse(Expr):
    """Element-wise select: ``cond ? then_value : else_value``."""

    cond: Expr
    then_value: Expr
    else_value: Expr

    def __repr__(self) -> str:
        return (
            f"if_then_else({self.cond!r}, {self.then_value!r}, "
            f"{self.else_value!r})"
        )


def if_then_else(cond: ExprLike, then_value: ExprLike, else_value: ExprLike) -> Expr:
    """Build an :class:`IfThenElse` node, coercing scalar operands."""
    return IfThenElse(_wrap(cond), _wrap(then_value), _wrap(else_value))


def call(func: str, *args: ExprLike) -> Expr:
    """Build an intrinsic :class:`Call` node."""
    return Call(func, tuple(_wrap(a) for a in args))


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    return BinOp("max", _wrap(a), _wrap(b))


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    return BinOp("min", _wrap(a), _wrap(b))


_INTRINSIC_FLOP_COST: Dict[str, int] = {
    # Approximate arithmetic-instruction cost per call, used by the
    # compute/memory characterisation of Sec. 5.3.
    "exp": 4,
    "log": 4,
    "sqrt": 2,
    "rsqrt": 2,
    "erf": 8,
    "tanh": 6,
    "sigmoid": 5,
    "relu": 1,
    "gelu": 10,
    "abs": 1,
    "floor": 1,
    "ceil": 1,
    "cast_fp16": 0,
    "cast_fp32": 0,
}


def intrinsic_flop_cost(func: str) -> int:
    """Arithmetic cost weight of an intrinsic (for TE characterisation)."""
    return _INTRINSIC_FLOP_COST.get(func, 4)
