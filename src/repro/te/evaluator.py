"""Functional (numpy) evaluation of tensor expressions.

Used for correctness: differential testing of transformations, example
programs, and validation of compiled modules. Performance numbers come from
the analytic GPU model, never from this evaluator.

Evaluation is vectorised. Elementwise TEs evaluate their body once with each
iteration variable bound to a broadcastable ``arange``; reduction TEs add the
reduce axes as extra broadcast dimensions and reduce at the end. Matmul-shaped
contractions dispatch to ``einsum``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np
from scipy import special as _sp

from repro.errors import ExecutionError
from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    IterVar,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.patterns import contraction_path, match_matmul
from repro.te.tensor import Tensor

# Refuse to materialise broadcast grids larger than this many elements;
# models under functional test must use small shapes.
MAX_GRID_ELEMENTS = 1 << 26

_BINOP_FN = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "floordiv": np.floor_divide,
    "mod": np.mod,
    "max": np.maximum,
    "min": np.minimum,
    "pow": np.power,
}

_CMP_FN = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + _sp.erf(x / np.sqrt(2.0)))


def _cast_roundtrip(dtype: type):
    """Quantize through ``dtype`` while keeping the float64 compute type.

    The evaluator computes in float64 throughout; a precision cast must
    therefore *round-trip* — drop the mantissa/exponent bits the narrow type
    cannot represent, then widen back — or it would be a silent identity.
    """

    def cast(x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=dtype).astype(np.float64)

    return cast


_CALL_FN = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "rsqrt": lambda x: 1.0 / np.sqrt(x),
    "erf": _sp.erf,
    "tanh": np.tanh,
    "sigmoid": _sigmoid,
    "relu": lambda x: np.maximum(x, 0.0),
    "gelu": _gelu,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "cast_fp16": _cast_roundtrip(np.float16),
    "cast_fp32": _cast_roundtrip(np.float32),
}


class Evaluator:
    """Evaluates compute tensors given concrete placeholder values.

    Producer results are memoised per evaluator instance, so evaluating a
    whole TE program reuses intermediate tensors.
    """

    def __init__(self, feeds: Mapping[Tensor, np.ndarray]) -> None:
        self._values: Dict[int, np.ndarray] = {}
        self._tensors: Dict[int, Tensor] = {}
        for tensor, value in feeds.items():
            # C-contiguous like the plan engine's bound feeds: einsum bits
            # depend on operand layout once contraction paths are in play.
            arr = np.ascontiguousarray(value, dtype=np.float64)
            if arr.shape != tensor.shape:
                raise ExecutionError(
                    f"feed for {tensor.name} has shape {arr.shape}, "
                    f"expected {tensor.shape}"
                )
            self._values[id(tensor)] = arr
            self._tensors[id(tensor)] = tensor

    def value_of(self, tensor: Tensor) -> np.ndarray:
        """Evaluate (and memoise) a tensor."""
        key = id(tensor)
        if key in self._values:
            return self._values[key]
        if tensor.op is None:
            raise ExecutionError(f"no feed provided for placeholder {tensor.name}")
        result = self._compute(tensor)
        if result.shape != tensor.shape:
            raise ExecutionError(
                f"evaluating {tensor.name} produced shape {result.shape}, "
                f"expected {tensor.shape}"
            )
        self._values[key] = result
        self._tensors[key] = tensor
        return result

    # ---- internals ----------------------------------------------------

    def _compute(self, tensor: Tensor) -> np.ndarray:
        op = tensor.op
        assert op is not None
        pattern = match_matmul(tensor)
        if pattern is not None:
            lhs = self.value_of(pattern.lhs)
            rhs = self.value_of(pattern.rhs)
            # The precomputed path keeps this call identical to the
            # execution plan's einsum steps (see patterns.contraction_path).
            path = contraction_path(
                pattern.einsum_formula, lhs.shape, rhs.shape
            )
            result = np.einsum(
                pattern.einsum_formula, lhs, rhs, optimize=path
            )
            # An optimized einsum may hand back a transposed view; memoised
            # values must stay C-contiguous because einsum's summation
            # order (and so its low-order bits) depends on operand layout,
            # and the execution plan always consumes contiguous arenas.
            return np.ascontiguousarray(result)

        spatial = list(op.axes)
        body = op.body
        reduce_axes: list[IterVar] = []
        reduce_kind: Optional[str] = None
        if isinstance(body, Reduce):
            reduce_axes = list(body.axes)
            reduce_kind = body.kind
            body = body.body

        all_axes = spatial + reduce_axes
        total = 1
        for ax in all_axes:
            total *= ax.extent
        if total > MAX_GRID_ELEMENTS:
            raise ExecutionError(
                f"evaluation grid for {tensor.name} has {total} points "
                f"(> {MAX_GRID_ELEMENTS}); use smaller shapes for functional "
                "tests — benchmarks use the analytic model"
            )

        env: Dict[str, np.ndarray] = {}
        ndim = len(all_axes)
        for dim, ax in enumerate(all_axes):
            index = np.arange(ax.dom.lo, ax.dom.hi, dtype=np.int64)
            shape = [1] * ndim
            shape[dim] = ax.extent
            env[ax.name] = index.reshape(shape)

        grid = self._eval(body, env)
        grid = np.broadcast_to(
            grid, tuple(ax.extent for ax in all_axes)
        )
        if reduce_kind is None:
            return np.array(grid, dtype=np.float64)
        reduce_dims = tuple(range(len(spatial), ndim))
        fn = {"sum": np.sum, "max": np.max, "min": np.min}[reduce_kind]
        return np.asarray(fn(grid, axis=reduce_dims), dtype=np.float64)

    def _eval(self, expr: Expr, env: Mapping[str, np.ndarray]) -> np.ndarray:
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=np.float64)
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound variable {expr.name}") from None
        if isinstance(expr, BinOp):
            return _BINOP_FN[expr.op](
                self._eval(expr.lhs, env), self._eval(expr.rhs, env)
            )
        if isinstance(expr, Cmp):
            return _CMP_FN[expr.op](
                self._eval(expr.lhs, env), self._eval(expr.rhs, env)
            )
        if isinstance(expr, Call):
            args = [self._eval(a, env) for a in expr.args]
            return _CALL_FN[expr.func](*args)
        if isinstance(expr, IfThenElse):
            return np.where(
                self._eval(expr.cond, env),
                self._eval(expr.then_value, env),
                self._eval(expr.else_value, env),
            )
        if isinstance(expr, TensorRead):
            base = self.value_of(expr.tensor)  # type: ignore[arg-type]
            indices = [
                np.asarray(self._eval(i, env), dtype=np.int64) for i in expr.indices
            ]
            indices = list(np.broadcast_arrays(*indices)) if len(indices) > 1 else indices
            return base[tuple(indices)]
        if isinstance(expr, Reduce):
            # Nested reductions are normalised away during lowering; the
            # evaluator only handles top-level Reduce (see _compute).
            raise ExecutionError("nested Reduce is not supported by the evaluator")
        raise ExecutionError(f"cannot evaluate node {type(expr).__name__}")


def evaluate(
    tensor: Tensor, feeds: Mapping[Tensor, np.ndarray]
) -> np.ndarray:
    """Evaluate a single tensor given placeholder feeds."""
    return Evaluator(feeds).value_of(tensor)


def evaluate_many(
    tensors: Iterable[Tensor], feeds: Mapping[Tensor, np.ndarray]
) -> Dict[Tensor, np.ndarray]:
    """Evaluate several tensors sharing one memoisation context."""
    ev = Evaluator(feeds)
    return {t: ev.value_of(t) for t in tensors}
