"""Tensors and the ``compute``/``placeholder``/``reduce_axis`` builders.

Mirrors the TVM tensor-expression API used throughout the paper (Sec. 3):

    rk = reduce_axis((0, 64), name="rk")
    O0 = compute((64, 64), lambda i, j: sum_expr(I0[i, rk] * W0[rk, j], [rk]))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TEError
from repro.te.expr import (
    Expr,
    ExprLike,
    IterVar,
    Range,
    Reduce,
    TensorRead,
    Var,
    _wrap,
)

Shape = Tuple[int, ...]

_name_counter = itertools.count()


def _fresh_name(prefix: str) -> str:
    return f"{prefix}{next(_name_counter)}"


def reset_names() -> None:
    """Reset the global name counter (test isolation helper)."""
    global _name_counter
    _name_counter = itertools.count()


DTYPE_BYTES = {
    "float16": 2,
    "float32": 4,
    "float64": 8,
    "int32": 4,
    "int64": 8,
    "bool": 1,
}


def dtype_bytes(dtype: str) -> int:
    """Byte width of a dtype string."""
    try:
        return DTYPE_BYTES[dtype]
    except KeyError:
        raise TEError(f"unknown dtype {dtype!r}") from None


@dataclass
class ComputeOp:
    """The defining computation of a non-placeholder tensor.

    ``axes`` are the spatial iteration variables (one per output dim);
    ``body`` is the scalar expression computing one output element.
    """

    axes: Tuple[IterVar, ...]
    body: Expr

    @property
    def reduce_axes(self) -> Tuple[IterVar, ...]:
        """Reduction axes of the body, or ``()`` for elementwise TEs."""
        if isinstance(self.body, Reduce):
            return self.body.axes
        return ()


class Tensor:
    """A named, shaped, typed tensor.

    A tensor is either a *placeholder* (graph input / weight; ``op is None``)
    or the output of a :class:`ComputeOp`. ``A[i, j]`` builds a
    :class:`TensorRead` expression.
    """

    def __init__(
        self,
        shape: Sequence[int],
        dtype: str = "float32",
        name: Optional[str] = None,
        op: Optional[ComputeOp] = None,
        role: str = "input",
    ) -> None:
        if not shape:
            raise TEError("tensors must have at least one dimension")
        for extent in shape:
            if not isinstance(extent, int) or extent <= 0:
                raise TEError(f"bad tensor extent {extent!r} in shape {tuple(shape)}")
        dtype_bytes(dtype)  # validate
        self.shape: Shape = tuple(shape)
        self.dtype = dtype
        self.name = name if name is not None else _fresh_name("t")
        self.op = op
        # Placeholders only: "weight" marks a session-bound constant (fed
        # identically across requests), "input" a per-request feed. The plan
        # optimizer's hoisting pass treats weight-only subgraphs as foldable.
        self.role = role

    @property
    def is_placeholder(self) -> bool:
        return self.op is None

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    @property
    def size_bytes(self) -> int:
        return self.num_elements * dtype_bytes(self.dtype)

    def __getitem__(self, indices: Union[ExprLike, Tuple[ExprLike, ...]]) -> TensorRead:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return TensorRead(self, tuple(_wrap(i) for i in indices))

    def __repr__(self) -> str:
        kind = "placeholder" if self.is_placeholder else "compute"
        return f"<{kind} {self.name}: {self.dtype}{list(self.shape)}>"


def placeholder(
    shape: Sequence[int],
    dtype: str = "float32",
    name: Optional[str] = None,
    role: str = "input",
) -> Tensor:
    """Declare a graph input or weight tensor.

    ``role="weight"`` marks the placeholder as a session-bound constant —
    the same array is fed on every request — which lets the runtime plan
    optimizer hoist subgraphs depending only on weights out of the
    per-request step list.
    """
    return Tensor(shape, dtype=dtype, name=name, role=role)


def reduce_axis(dom: Tuple[int, int], name: Optional[str] = None) -> IterVar:
    """Create a reduction iteration variable over ``[dom[0], dom[1])``."""
    lo, hi = dom
    name = name if name is not None else _fresh_name("rk")
    return IterVar(Var(name), Range(lo, hi), kind="reduce")


def spatial_axis(extent: int, name: str) -> IterVar:
    """Create a spatial iteration variable over ``[0, extent)``."""
    return IterVar(Var(name), Range(0, extent), kind="spatial")


_AXIS_NAMES = "ijklmnpq"


def compute(
    shape: Sequence[int],
    fcompute: Callable[..., ExprLike],
    name: Optional[str] = None,
    dtype: str = "float32",
) -> Tensor:
    """Define a tensor by a per-element computation.

    ``fcompute`` receives one :class:`Var` per output dimension and returns
    the scalar expression for that element.
    """
    shape = tuple(shape)
    axes: List[IterVar] = []
    for dim, extent in enumerate(shape):
        axis_name = (
            _AXIS_NAMES[dim] if dim < len(_AXIS_NAMES) else f"ax{dim}"
        ) + f"_{next(_name_counter)}"
        axes.append(spatial_axis(extent, axis_name))
    body = _wrap(fcompute(*[ax.var for ax in axes]))
    op = ComputeOp(tuple(axes), body)
    return Tensor(shape, dtype=dtype, name=name, op=op)


def sum_expr(body: ExprLike, axes: Sequence[IterVar]) -> Reduce:
    """Sum reduction over ``axes`` (TVM's ``te.sum``)."""
    return Reduce("sum", _wrap(body), tuple(axes))


def max_expr(body: ExprLike, axes: Sequence[IterVar]) -> Reduce:
    """Max reduction over ``axes`` (TVM's ``te.max``)."""
    return Reduce("max", _wrap(body), tuple(axes))


def min_expr(body: ExprLike, axes: Sequence[IterVar]) -> Reduce:
    """Min reduction over ``axes`` (TVM's ``te.min``)."""
    return Reduce("min", _wrap(body), tuple(axes))
