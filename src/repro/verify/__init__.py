"""Static verification of TE programs, memory plans and built kernels.

Souffle's premise is that whole-program *static* analysis is what makes
aggressive cross-operator optimisation trustworthy (paper Sec. 5). This
package is the correctness half of that bargain: a multi-pass verifier with
structured diagnostics that runs long before any differential test —

* ``wellformed``   — use-before-def, dangling reads, cycles, duplicates,
  dead TEs, never-read placeholders;
* ``shape-dtype``  — bottom-up shape/dtype re-inference cross-checked
  against declarations;
* ``bounds``       — interval analysis over quasi-affine read maps and
  ``if_then_else`` predicates proving every tensor read in-bounds;
* ``arena-hazard`` — a static race detector over the execution plan's
  packed arena (WAR/WAW/aliasing, liveness drift);
* ``sync-safety``  — grid.sync() deadlock-freedom (one-wave occupancy) and
  producer/consumer stage ordering inside merged kernels.

Entry points: :func:`verify_program`, :func:`verify_plan`,
:func:`verify_module`, and the ``repro lint`` CLI subcommand.
"""

from repro.verify.bounds import check_bounds
from repro.verify.diagnostics import (
    ALL_PASSES,
    Diagnostic,
    Location,
    PASS_ARENA_HAZARD,
    PASS_BOUNDS,
    PASS_EQUIVALENCE,
    PASS_SHAPE_DTYPE,
    PASS_SYNC_SAFETY,
    PASS_WELLFORMED,
    Severity,
    VerifyReport,
)
from repro.verify.equiv import (
    CertificationReport,
    Counterexample,
    EquivalenceCertificate,
    certify_batched_binding,
    certify_batched_lowering,
    certify_model,
    certify_plan,
    certify_plan_optimization,
    certify_te_transform,
    gate_certificates,
    replay_certificate,
)
from repro.verify.hazards import check_arena, check_schedule_cover, hazard_pairs
from repro.verify.shape_dtype import check_shape_dtype, infer_dtype
from repro.verify.sync import check_sync
from repro.verify.verifier import (
    assert_verified,
    verify_kernels_or_raise,
    verify_module,
    verify_plan,
    verify_program,
)
from repro.verify.view import ProgramView, as_view
from repro.verify.wellformed import check_wellformed

__all__ = [
    "ALL_PASSES",
    "CertificationReport",
    "Counterexample",
    "Diagnostic",
    "EquivalenceCertificate",
    "Location",
    "PASS_ARENA_HAZARD",
    "PASS_BOUNDS",
    "PASS_EQUIVALENCE",
    "PASS_SHAPE_DTYPE",
    "PASS_SYNC_SAFETY",
    "PASS_WELLFORMED",
    "ProgramView",
    "Severity",
    "VerifyReport",
    "as_view",
    "assert_verified",
    "certify_batched_binding",
    "certify_batched_lowering",
    "certify_model",
    "certify_plan",
    "certify_plan_optimization",
    "certify_te_transform",
    "check_arena",
    "check_bounds",
    "gate_certificates",
    "replay_certificate",
    "check_schedule_cover",
    "check_shape_dtype",
    "check_sync",
    "check_wellformed",
    "hazard_pairs",
    "infer_dtype",
    "verify_kernels_or_raise",
    "verify_module",
    "verify_plan",
    "verify_program",
]
