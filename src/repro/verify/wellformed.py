"""Well-formedness pass: program-level structural invariants.

Everything :class:`~repro.graph.te_program.TEProgram` enforces by raising in
its constructor, re-stated as diagnostics over the lenient
:class:`~repro.verify.view.ProgramView` — plus the liveness-adjacent checks
the constructor does not do: dead TEs and never-read placeholders.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.te.tensor import Tensor
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_WELLFORMED,
    error,
    warning,
)
from repro.verify.view import ProgramLike, as_view


def check_wellformed(program: ProgramLike) -> List[Diagnostic]:
    view = as_view(program)
    diags: List[Diagnostic] = []
    ploc = Location("program", view.name)

    if not view.nodes:
        diags.append(warning(
            PASS_WELLFORMED, ploc, "program has no tensor expressions",
        ))

    # ---- placeholders and producers --------------------------------------
    for tensor in view.inputs:
        if tensor.op is not None:
            diags.append(error(
                PASS_WELLFORMED, Location("tensor", tensor.name),
                "program input is not a placeholder (it has a compute op)",
                "inputs must be placeholder tensors",
            ))

    produced_at: Dict[int, int] = {}
    names_at: Dict[str, str] = {}
    for tensor in view.inputs:
        names_at.setdefault(tensor.name, "input")
    for position, node in enumerate(view.nodes):
        key = id(node.tensor)
        if key in produced_at:
            diags.append(error(
                PASS_WELLFORMED, Location("te", node.name),
                f"tensor {node.name} is produced twice "
                f"(first at step {produced_at[key]}, again at step "
                f"{position})",
                "each tensor must have exactly one producing TE",
            ))
        else:
            produced_at[key] = position
        if node.tensor.op is None:
            diags.append(error(
                PASS_WELLFORMED, Location("te", node.name),
                "TE node wraps a placeholder (no compute op)",
                "only compute tensors may appear in the node list",
            ))
        owner = names_at.get(node.name)
        if owner is not None:
            diags.append(error(
                PASS_WELLFORMED, Location("te", node.name),
                f"duplicate tensor name {node.name!r} (already used by "
                f"{owner})",
                "tensor names must be unique; diagnostics, schedules and "
                "caches key on them",
            ))
        else:
            names_at[node.name] = f"te at step {position}"

    # ---- reads: dangling / use-before-def --------------------------------
    known: Set[int] = {id(t) for t in view.inputs}
    defined: Set[int] = set(known)
    all_known = set(known) | set(produced_at)
    read_ids: Set[int] = set()
    for position, node in enumerate(view.nodes):
        for operand in node.inputs:
            read_ids.add(id(operand))
            if operand is node.tensor:
                diags.append(error(
                    PASS_WELLFORMED, Location("te", node.name),
                    "TE reads its own output (self-cycle)",
                    "break the cycle with an explicit extra tensor",
                ))
                continue
            if id(operand) not in all_known:
                diags.append(error(
                    PASS_WELLFORMED, Location("te", node.name),
                    f"reads dangling tensor {operand.name!r} (neither an "
                    f"input nor produced by any TE)",
                    "add the tensor to the program inputs or produce it "
                    "with a TE",
                ))
            elif id(operand) not in defined:
                where = produced_at.get(id(operand))
                diags.append(error(
                    PASS_WELLFORMED, Location("te", node.name),
                    f"reads {operand.name!r} before it is produced "
                    f"(consumer at step {position}, producer at step "
                    f"{where}) — use-before-def or dependency cycle",
                    "topologically order the TE program",
                ))
        defined.add(id(node.tensor))

    # ---- outputs ---------------------------------------------------------
    for out in view.outputs:
        if id(out) in {id(t) for t in view.inputs}:
            diags.append(warning(
                PASS_WELLFORMED, Location("tensor", out.name),
                "program output is a placeholder input (identity output)",
            ))
        elif id(out) not in produced_at:
            diags.append(error(
                PASS_WELLFORMED, Location("tensor", out.name),
                "program output has no producer TE",
                "every output must be produced by some TE",
            ))

    # ---- dead code -------------------------------------------------------
    # Backwards reachability from the outputs over the producer relation.
    producer_node = {id(n.tensor): n for n in view.nodes}
    live: Set[int] = set()
    stack = [id(t) for t in view.outputs]
    while stack:
        key = stack.pop()
        if key in live:
            continue
        live.add(key)
        node = producer_node.get(key)
        if node is None:
            continue
        stack.extend(id(t) for t in node.inputs)

    for node in view.nodes:
        if id(node.tensor) not in live:
            diags.append(warning(
                PASS_WELLFORMED, Location("te", node.name),
                "dead TE: not reachable from any program output",
                "remove it or add its tensor to the outputs",
            ))

    for tensor in view.inputs:
        if id(tensor) not in read_ids and not view.is_output(tensor):
            diags.append(warning(
                PASS_WELLFORMED, Location("tensor", tensor.name),
                "placeholder is never read by any TE",
                "drop the unused input",
            ))

    return diags
