"""Bounds pass: prove every tensor read in-bounds (paper Sec. 5.2).

Quasi-affine read maps over box iteration domains have exactly computable
index ranges: each affine term attains its extreme at a corner of the
domain, so interval analysis is *precise* for the affine subset
(:func:`repro.te.affine.linearize`) and a containment failure is a provable
out-of-bounds access. Clamped (``min``/``max``) and ``floordiv``/``mod``
indices are handled conservatively by the shared interval evaluator.

``if_then_else`` predicates refine iteration domains inside branches
(``if i < 64: A[i] ...`` proves ``A`` reads at most index 63). A read that
is in-bounds *only* thanks to such a guard is still reported as a warning:
this repo's execution backends (numpy ``np.where``) evaluate both branches
eagerly, so the guarded-out lane is materialised anyway.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.te.affine import linearize
from repro.te.expr import (
    BinOp,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.tensor import Tensor
from repro.transform.simplify import (
    Interval,
    VarRanges,
    infer_interval,
    ranges_for_tensor,
)
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_BOUNDS,
    error,
    warning,
)
from repro.verify.view import ProgramLike, as_view


def _is_affine(index: Expr, ranges: VarRanges) -> bool:
    """Whether the index is in the exactly-analysable quasi-affine subset."""
    try:
        linearize(index, list(ranges))
        return True
    except Exception:
        return False


def _refine_cmp(op: str, lhs: Expr, rhs: Expr,
                ranges: VarRanges) -> Optional[Tuple[str, Interval]]:
    """Refinement from one comparison: the interval ``lhs_var`` must lie in
    for the comparison to hold. Handles ``var CMP const`` and the mirrored
    ``const CMP var`` form."""
    if isinstance(rhs, Var) and not isinstance(lhs, Var):
        mirror = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
        if op not in mirror:
            return None
        lhs, rhs, op = rhs, lhs, mirror[op]
    if not isinstance(lhs, Var) or lhs.name not in ranges:
        return None
    bound = infer_interval(rhs, ranges)
    if bound is None or bound.lo != bound.hi:
        return None
    c = bound.lo
    base = ranges[lhs.name]
    if op == "lt":
        refined = Interval(base.lo, min(base.hi, c - 1))
    elif op == "le":
        refined = Interval(base.lo, min(base.hi, c))
    elif op == "gt":
        refined = Interval(max(base.lo, c + 1), base.hi)
    elif op == "ge":
        refined = Interval(max(base.lo, c), base.hi)
    elif op == "eq":
        refined = Interval(max(base.lo, c), min(base.hi, c))
    else:
        return None
    return lhs.name, refined


def _refinements(cond: Expr, ranges: VarRanges,
                 negate: bool) -> Dict[str, Interval]:
    """Variable-domain refinements implied by a branch condition.

    Conjunctions written as products of comparisons (the pad-lowering idiom
    ``(h >= p) * (h < H + p)``) refine the taken branch; their negation is a
    disjunction, which refines nothing. Unknown conditions refine nothing.
    """
    if isinstance(cond, BinOp) and cond.op == "mul" and not negate:
        out = _refinements(cond.lhs, ranges, negate=False)
        out.update(_refinements(cond.rhs, ranges, negate=False))
        return out
    if isinstance(cond, Cmp):
        op = cond.op
        if negate:
            flipped = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt"}
            if op not in flipped:
                return {}
            op = flipped[op]
        hit = _refine_cmp(op, cond.lhs, cond.rhs, ranges)
        if hit is not None:
            name, interval = hit
            return {name: interval}
    return {}


def _check_read(
    read: TensorRead,
    base_ranges: VarRanges,
    refined_ranges: VarRanges,
    te_name: str,
    diags: List[Diagnostic],
) -> None:
    tensor = read.tensor
    shape: Sequence[int] = tuple(getattr(tensor, "shape", ()))
    tname = getattr(tensor, "name", "?")
    if len(shape) != len(read.indices):
        # Arity mismatch is shape-dtype territory; bounds cannot proceed.
        return
    for dim, index in enumerate(read.indices):
        extent = shape[dim]
        loc = Location("te", te_name, f"read {tname}[...] axis {dim}")
        refined = infer_interval(index, refined_ranges)
        if refined is None:
            diags.append(warning(
                PASS_BOUNDS, loc,
                f"cannot bound index expression {index!r} "
                f"(axis extent {extent})",
                "restrict the index to the quasi-affine subset "
                "(+, -, const *, //, %, min, max) so the verifier can "
                "reason about it",
            ))
            continue
        if refined.hi < refined.lo:
            continue  # contradictory refinement: branch is unreachable
        if refined.within(0, extent - 1):
            base = infer_interval(index, base_ranges)
            if base is None or not base.within(0, extent - 1):
                diags.append(warning(
                    PASS_BOUNDS, loc,
                    f"read of {tname} is in-bounds only under its guarding "
                    f"predicate (unguarded interval "
                    f"{[base.lo, base.hi] if base else '?'}, axis extent "
                    f"{extent}); eager backends evaluate both branches",
                    f"clamp the index with min/max instead of relying on "
                    f"the if_then_else predicate",
                ))
            continue
        certainly_oob = refined.hi < 0 or refined.lo > extent - 1
        exact = _is_affine(index, refined_ranges)
        message = (
            f"index {index!r} spans [{refined.lo}, {refined.hi}] but "
            f"{tname} axis {dim} has extent {extent}"
        )
        hint = (
            f"clamp with min/max or shrink the iteration domain so the "
            f"index stays within [0, {extent - 1}]"
        )
        if certainly_oob or exact:
            diags.append(error(
                PASS_BOUNDS, loc, "read out of bounds: " + message, hint
            ))
        else:
            diags.append(warning(
                PASS_BOUNDS, loc, "possibly out of bounds: " + message, hint
            ))


def _walk_body(
    expr: Expr,
    base_ranges: VarRanges,
    refined_ranges: VarRanges,
    te_name: str,
    diags: List[Diagnostic],
) -> None:
    """Traverse one TE body, threading predicate refinements into branches."""
    if isinstance(expr, TensorRead):
        _check_read(expr, base_ranges, refined_ranges, te_name, diags)
        for index in expr.indices:
            _walk_body(index, base_ranges, refined_ranges, te_name, diags)
        return
    if isinstance(expr, IfThenElse):
        _walk_body(expr.cond, base_ranges, refined_ranges, te_name, diags)
        then_ranges = dict(refined_ranges)
        then_ranges.update(_refinements(expr.cond, refined_ranges, False))
        _walk_body(expr.then_value, base_ranges, then_ranges, te_name, diags)
        else_ranges = dict(refined_ranges)
        else_ranges.update(_refinements(expr.cond, refined_ranges, True))
        _walk_body(expr.else_value, base_ranges, else_ranges, te_name, diags)
        return
    if isinstance(expr, (BinOp, Cmp)):
        _walk_body(expr.lhs, base_ranges, refined_ranges, te_name, diags)
        _walk_body(expr.rhs, base_ranges, refined_ranges, te_name, diags)
        return
    if isinstance(expr, Reduce):
        _walk_body(expr.body, base_ranges, refined_ranges, te_name, diags)
        return
    for child in getattr(expr, "args", ()):
        _walk_body(child, base_ranges, refined_ranges, te_name, diags)


def check_bounds(program: ProgramLike) -> List[Diagnostic]:
    """Run the bounds pass over every TE of a program."""
    view = as_view(program)
    diags: List[Diagnostic] = []
    for node in view.nodes:
        tensor: Tensor = node.tensor
        if tensor.op is None:
            continue
        ranges = ranges_for_tensor(tensor)
        _walk_body(tensor.op.body, ranges, dict(ranges), node.name, diags)
    return diags
