"""Structured diagnostics for the static verifier.

Every verifier pass reports :class:`Diagnostic` records instead of raising:
a diagnostic carries the severity, the pass that produced it, a location
anchored to a TE / step / kernel name, a human-readable message and (when
the fix is mechanical) a suggestion. A :class:`VerifyReport` aggregates the
diagnostics of one or more passes and renders them for the ``repro lint``
driver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


# The five verifier passes (paper Sec. 5 groundings in DESIGN.md).
PASS_BOUNDS = "bounds"
PASS_SHAPE_DTYPE = "shape-dtype"
PASS_WELLFORMED = "wellformed"
PASS_ARENA_HAZARD = "arena-hazard"
PASS_SYNC_SAFETY = "sync-safety"

# Translation validation (verify.equiv): not part of ALL_PASSES because it
# is driven per transform application by the certifier, not by the
# verifier's program sweep; its findings still render through the same
# diagnostic machinery.
PASS_EQUIVALENCE = "equivalence"

ALL_PASSES = (
    PASS_BOUNDS,
    PASS_SHAPE_DTYPE,
    PASS_WELLFORMED,
    PASS_ARENA_HAZARD,
    PASS_SYNC_SAFETY,
)


@dataclass(frozen=True)
class Location:
    """Where a diagnostic is anchored.

    ``kind`` is ``te`` / ``tensor`` / ``step`` / ``kernel`` / ``program``;
    ``name`` is the TE, step or kernel name; ``detail`` optionally narrows
    the anchor further (e.g. the offending read or axis).
    """

    kind: str
    name: str
    detail: Optional[str] = None

    def __str__(self) -> str:
        base = f"{self.kind} {self.name}"
        return f"{base} ({self.detail})" if self.detail else base

    def as_dict(self) -> Dict[str, Optional[str]]:
        return {"kind": self.kind, "name": self.name, "detail": self.detail}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding."""

    severity: Severity
    pass_id: str
    location: Location
    message: str
    suggestion: Optional[str] = None

    def render(self) -> str:
        line = (
            f"{self.severity.label}[{self.pass_id}] {self.location}: "
            f"{self.message}"
        )
        if self.suggestion:
            line += f"\n    hint: {self.suggestion}"
        return line

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view (``repro lint --json``)."""
        return {
            "severity": self.severity.label,
            "pass": self.pass_id,
            "location": self.location.as_dict(),
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def sort_key(self) -> tuple:
        """Total order: worst first, then pass / location / message.

        Every component is part of the key so rendering the same findings
        twice (or from two verifier runs with different pass order) emits
        byte-identical, diff-able reports.
        """
        return (
            -int(self.severity),
            self.pass_id,
            self.location.kind,
            self.location.name,
            self.location.detail or "",
            self.message,
            self.suggestion or "",
        )


def error(pass_id: str, location: Location, message: str,
          suggestion: Optional[str] = None) -> Diagnostic:
    return Diagnostic(Severity.ERROR, pass_id, location, message, suggestion)


def warning(pass_id: str, location: Location, message: str,
            suggestion: Optional[str] = None) -> Diagnostic:
    return Diagnostic(Severity.WARNING, pass_id, location, message, suggestion)


def info(pass_id: str, location: Location, message: str,
         suggestion: Optional[str] = None) -> Diagnostic:
    return Diagnostic(Severity.INFO, pass_id, location, message, suggestion)


@dataclass
class VerifyReport:
    """Aggregated diagnostics from one verifier run."""

    subject: str = "<program>"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "VerifyReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for pass_id in other.passes_run:
            if pass_id not in self.passes_run:
                self.passes_run.append(pass_id)

    # ---- queries --------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """No errors (warnings and infos are allowed)."""
        return not self.has_errors

    def by_pass(self) -> Dict[str, List[Diagnostic]]:
        grouped: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            grouped.setdefault(d.pass_id, []).append(d)
        return grouped

    def deduplicated(self) -> List[Diagnostic]:
        """Diagnostics with same-(location, message) repeats dropped.

        Several passes can independently flag one defect (e.g. a corrupt
        read trips both shape inference and bounds with the same anchored
        message when a pass re-runs over a merged view); the rendered
        report keeps the worst-severity instance of each (location,
        message) pair and sorts by the total :meth:`Diagnostic.sort_key`
        order so repeated runs diff clean.
        """
        best: Dict[tuple, Diagnostic] = {}
        for d in self.diagnostics:
            key = (str(d.location), d.message)
            kept = best.get(key)
            if kept is None or d.severity > kept.severity:
                best[key] = d
        return sorted(best.values(), key=Diagnostic.sort_key)

    def exit_code(self, strict: bool = False) -> int:
        """``repro lint`` contract: errors -> 1, warnings-only -> 0 unless
        ``strict`` promotes warnings to failures."""
        if self.has_errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ---- rendering ------------------------------------------------------

    def render(self, min_severity: Severity = Severity.WARNING) -> str:
        """Human-readable report: one block per diagnostic plus a summary."""
        shown = [
            d for d in self.deduplicated() if d.severity >= min_severity
        ]
        lines = [d.render() for d in shown]
        n_err, n_warn = len(self.errors), len(self.warnings)
        passes = ", ".join(self.passes_run) if self.passes_run else "none"
        summary = (
            f"{self.subject}: {n_err} error(s), {n_warn} warning(s) "
            f"[passes: {passes}]"
        )
        if not lines:
            return summary
        return "\n".join(lines + [summary])

    def to_json(self, min_severity: Severity = Severity.INFO) -> Dict[str, object]:
        """Machine-readable report (``repro lint --json``).

        Diagnostics are deduplicated and emitted in the same stable order
        as :meth:`render`, so the JSON is byte-stable across runs; the
        ``errors``/``warnings`` counts match :meth:`exit_code` semantics
        (counted before the severity filter).
        """
        return {
            "subject": self.subject,
            "passes": list(self.passes_run),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [
                d.as_dict()
                for d in self.deduplicated()
                if d.severity >= min_severity
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<VerifyReport {self.subject}: {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings, {len(self.diagnostics)} total>"
        )
