"""Shape/dtype pass: re-infer result types bottom-up and cross-check
declarations.

Shapes in this IR are fully determined by a TE's spatial axes, so the shape
check is exact: the declared ``Tensor.shape`` must equal the axis extents,
axis for axis. Dtypes are inferred over the body with numpy-style value
promotion: scalar constants and iteration variables are *weak* (they adapt
to the tensor operand's dtype, the way a python scalar does in numpy),
tensor reads and explicit casts are *strong*. A declared dtype that
contradicts a strong inference in category (int vs float) — or contradicts
an explicit top-level ``cast_fp16``/``cast_fp32`` — is an error; a plain
precision-width drift is a warning with a suggested cast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.tensor import DTYPE_BYTES, Tensor
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_SHAPE_DTYPE,
    error,
    warning,
)
from repro.verify.view import ProgramLike, as_view

# Promotion lattice position (wider wins within a category).
_ORDER = {"bool": 0, "int32": 1, "int64": 2,
          "float16": 3, "float32": 4, "float64": 5}

_CATEGORY = {"bool": "bool", "int32": "int", "int64": "int",
             "float16": "float", "float32": "float", "float64": "float"}

_CAST_TARGET = {"cast_fp16": "float16", "cast_fp32": "float32"}

# Intrinsics that preserve their argument's dtype; all others compute in
# floating point and promote integer arguments to float32.
_DTYPE_PRESERVING = {"abs", "relu", "floor", "ceil"}


@dataclass(frozen=True)
class InferredType:
    """A dtype plus whether it is weak (adapts to tensor operands)."""

    dtype: str
    weak: bool = False

    @property
    def category(self) -> str:
        return _CATEGORY[self.dtype]


def category_of(dtype: str) -> str:
    return _CATEGORY[dtype]


def _promote(a: InferredType, b: InferredType) -> InferredType:
    if a.dtype == b.dtype:
        return InferredType(a.dtype, a.weak and b.weak)
    if a.weak != b.weak:
        weakling, strong = (a, b) if a.weak else (b, a)
        # A weak float pulls an integer tensor into floating point (numpy
        # scalar promotion); otherwise the tensor operand's dtype wins.
        if weakling.category == "float" and strong.category != "float":
            return InferredType("float32", False)
        return strong
    # Same strength: widest wins; mixing int and float jumps to float32+.
    wide = a if _ORDER[a.dtype] >= _ORDER[b.dtype] else b
    if a.category != b.category and "float" in (a.category, b.category):
        floaty = a if a.category == "float" else b
        dtype = floaty.dtype if _ORDER[floaty.dtype] >= _ORDER["float32"] \
            else "float32"
        return InferredType(dtype, a.weak and b.weak)
    return InferredType(wide.dtype, a.weak and b.weak)


def infer_dtype(expr: Expr) -> Optional[InferredType]:
    """Bottom-up dtype inference; ``None`` when the node is unknown."""
    if isinstance(expr, Const):
        dtype = expr.dtype if expr.dtype in _ORDER else None
        return InferredType(dtype, weak=True) if dtype else None
    if isinstance(expr, Var):
        return InferredType("int32", weak=True)
    if isinstance(expr, Cmp):
        return InferredType("bool", weak=False)
    if isinstance(expr, BinOp):
        lhs, rhs = infer_dtype(expr.lhs), infer_dtype(expr.rhs)
        if lhs is None or rhs is None:
            return None
        out = _promote(lhs, rhs)
        if expr.op == "div" and out.category != "float":
            return InferredType("float32", out.weak)
        return out
    if isinstance(expr, Call):
        if expr.func in _CAST_TARGET:
            return InferredType(_CAST_TARGET[expr.func], weak=False)
        args = [infer_dtype(a) for a in expr.args]
        if any(a is None for a in args):
            return None
        out = args[0]
        for a in args[1:]:
            out = _promote(out, a)
        if expr.func in _DTYPE_PRESERVING:
            return out
        if out.category != "float":
            return InferredType("float32", out.weak)
        return out
    if isinstance(expr, IfThenElse):
        then_t = infer_dtype(expr.then_value)
        else_t = infer_dtype(expr.else_value)
        if then_t is None or else_t is None:
            return None
        return _promote(then_t, else_t)
    if isinstance(expr, TensorRead):
        dtype = getattr(expr.tensor, "dtype", None)
        if dtype not in _ORDER:
            return None
        return InferredType(dtype, weak=False)
    if isinstance(expr, Reduce):
        return infer_dtype(expr.body)
    return None


def _check_indices(read: TensorRead, te_name: str,
                   diags: List[Diagnostic]) -> None:
    tensor = read.tensor
    ndim = len(getattr(tensor, "shape", ()))
    tname = getattr(tensor, "name", "?")
    loc = Location("te", te_name, f"read {tname}[...]")
    if ndim != len(read.indices):
        diags.append(error(
            PASS_SHAPE_DTYPE, loc,
            f"{tname} has {ndim} dims but is indexed with "
            f"{len(read.indices)} expressions",
            "make the index arity match the tensor rank",
        ))
        return
    for dim, index in enumerate(read.indices):
        inferred = infer_dtype(index)
        if inferred is None:
            continue
        if inferred.category == "float" and not inferred.weak:
            diags.append(error(
                PASS_SHAPE_DTYPE, loc,
                f"axis {dim} index has floating-point dtype "
                f"{inferred.dtype}",
                "indices must be integer expressions",
            ))
        elif inferred.category == "bool":
            diags.append(warning(
                PASS_SHAPE_DTYPE, loc,
                f"axis {dim} index is a boolean predicate",
                "use if_then_else to select between integer indices",
            ))


def _walk_reads(expr: Expr, te_name: str, diags: List[Diagnostic]) -> None:
    if isinstance(expr, TensorRead):
        _check_indices(expr, te_name, diags)
        for index in expr.indices:
            _walk_reads(index, te_name, diags)
        return
    if isinstance(expr, (BinOp, Cmp)):
        _walk_reads(expr.lhs, te_name, diags)
        _walk_reads(expr.rhs, te_name, diags)
    elif isinstance(expr, Call):
        for a in expr.args:
            _walk_reads(a, te_name, diags)
    elif isinstance(expr, IfThenElse):
        _walk_reads(expr.cond, te_name, diags)
        _walk_reads(expr.then_value, te_name, diags)
        _walk_reads(expr.else_value, te_name, diags)
    elif isinstance(expr, Reduce):
        _walk_reads(expr.body, te_name, diags)


def _check_node_shape(tensor: Tensor, te_name: str,
                      diags: List[Diagnostic]) -> None:
    op = tensor.op
    assert op is not None
    loc = Location("te", te_name)
    if len(op.axes) != tensor.ndim:
        diags.append(error(
            PASS_SHAPE_DTYPE, loc,
            f"declared shape {tensor.shape} has {tensor.ndim} dims but the "
            f"compute op iterates {len(op.axes)} spatial axes",
            "one spatial axis per output dimension",
        ))
        return
    inferred_shape = tuple(ax.extent for ax in op.axes)
    if inferred_shape != tensor.shape:
        diags.append(error(
            PASS_SHAPE_DTYPE, loc,
            f"declared shape {tensor.shape} != axis extents "
            f"{inferred_shape}",
            "declare the tensor with the extents its axes iterate",
        ))
    seen = set()
    for ax in op.axes:
        if ax.kind != "spatial":
            diags.append(error(
                PASS_SHAPE_DTYPE, loc,
                f"output axis {ax.name} has kind {ax.kind!r}",
                "output axes must be spatial",
            ))
        if ax.name in seen:
            diags.append(error(
                PASS_SHAPE_DTYPE, loc,
                f"duplicate iteration variable {ax.name!r}",
                "give every axis a unique name",
            ))
        seen.add(ax.name)
    if isinstance(op.body, Reduce):
        for ax in op.body.axes:
            if ax.name in seen:
                diags.append(error(
                    PASS_SHAPE_DTYPE, loc,
                    f"reduce axis {ax.name!r} shadows a spatial axis",
                    "rename the reduce axis",
                ))


def _check_node_dtype(tensor: Tensor, te_name: str,
                      diags: List[Diagnostic]) -> None:
    op = tensor.op
    assert op is not None
    loc = Location("te", te_name)
    declared = tensor.dtype
    if declared not in DTYPE_BYTES:
        diags.append(error(
            PASS_SHAPE_DTYPE, loc, f"unknown declared dtype {declared!r}",
            f"use one of {sorted(DTYPE_BYTES)}",
        ))
        return
    body = op.body
    top = body.body if isinstance(body, Reduce) else body
    inferred = infer_dtype(body)
    if inferred is None or inferred.weak:
        # Unknown or scalar-only bodies adapt to the declaration.
        return
    explicit_cast = isinstance(top, Call) and top.func in _CAST_TARGET
    if inferred.dtype == declared:
        return
    if explicit_cast:
        diags.append(error(
            PASS_SHAPE_DTYPE, loc,
            f"declared dtype {declared} contradicts the explicit "
            f"{top.func} producing {_CAST_TARGET[top.func]}",
            f"declare the tensor as {_CAST_TARGET[top.func]} or drop "
            f"the cast",
        ))
        return
    if category_of(inferred.dtype) != category_of(declared):
        if "bool" in (category_of(inferred.dtype), category_of(declared)):
            diags.append(warning(
                PASS_SHAPE_DTYPE, loc,
                f"declared dtype {declared} but the body computes "
                f"{inferred.dtype} (implicit boolean conversion)",
                f"insert an explicit conversion to {declared}",
            ))
        else:
            diags.append(error(
                PASS_SHAPE_DTYPE, loc,
                f"declared dtype {declared} but the body computes "
                f"{inferred.dtype}",
                f"declare the tensor as {inferred.dtype} or cast the body",
            ))
        return
    diags.append(warning(
        PASS_SHAPE_DTYPE, loc,
        f"declared dtype {declared} narrows/widens the body's "
        f"{inferred.dtype} without an explicit cast",
        f"insert cast_fp16/cast_fp32 to make the precision change explicit",
    ))


def check_shape_dtype(program: ProgramLike) -> List[Diagnostic]:
    """Run the shape/dtype pass over every TE of a program."""
    view = as_view(program)
    diags: List[Diagnostic] = []
    for tensor in view.inputs:
        if tensor.dtype not in DTYPE_BYTES:
            diags.append(error(
                PASS_SHAPE_DTYPE, Location("tensor", tensor.name),
                f"unknown placeholder dtype {tensor.dtype!r}",
                f"use one of {sorted(DTYPE_BYTES)}",
            ))
    for node in view.nodes:
        tensor = node.tensor
        if tensor.op is None:
            continue
        _check_node_shape(tensor, node.name, diags)
        _check_node_dtype(tensor, node.name, diags)
        _walk_reads(tensor.op.body, node.name, diags)
    return diags
