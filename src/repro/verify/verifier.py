"""Multi-pass verifier orchestration.

Three entry points at three layers of the system:

* :func:`verify_program` — the pure-TE passes (well-formedness, shape/dtype,
  bounds) over a :class:`~repro.graph.te_program.TEProgram` or lenient
  :class:`~repro.verify.view.ProgramView`. Run by ``SouffleCompiler`` after
  lowering and after each transform stage when ``verify`` is enabled.
* :func:`verify_plan` — the arena-hazard pass over a program + memory plan.
  Run by :class:`~repro.runtime.executor.ExecutionPlan` at plan time.
* :func:`verify_module` — everything, including sync safety over the built
  kernels. The ``repro lint`` driver.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.runtime.memory_planner import MemoryPlan
from repro.te.tensor import Tensor
from repro.verify.bounds import check_bounds
from repro.verify.diagnostics import (
    PASS_ARENA_HAZARD,
    PASS_BOUNDS,
    PASS_SHAPE_DTYPE,
    PASS_SYNC_SAFETY,
    PASS_WELLFORMED,
    Severity,
    VerifyReport,
)
from repro.verify.hazards import check_arena
from repro.verify.shape_dtype import check_shape_dtype
from repro.verify.sync import check_sync
from repro.verify.view import ProgramLike, as_view
from repro.verify.wellformed import check_wellformed


def verify_program(program: ProgramLike,
                   subject: Optional[str] = None) -> VerifyReport:
    """Run the three TE-level passes over one program."""
    view = as_view(program)
    report = VerifyReport(subject=subject or view.name)
    report.passes_run = [PASS_WELLFORMED, PASS_SHAPE_DTYPE, PASS_BOUNDS]
    report.extend(check_wellformed(view))
    report.extend(check_shape_dtype(view))
    report.extend(check_bounds(view))
    return report


def verify_plan(
    program: ProgramLike,
    plan: MemoryPlan,
    sizer: Optional[Callable[[Tensor], int]] = None,
    require_exclusive_writes: bool = True,
    subject: Optional[str] = None,
    inplace: Optional[Iterable[Tuple[int, int]]] = None,
) -> VerifyReport:
    """Run the arena-hazard pass for one program + memory plan.

    ``inplace`` allowlists deliberate (writer, operand) in-place pairs —
    see :func:`repro.verify.hazards.check_arena`.
    """
    view = as_view(program)
    report = VerifyReport(subject=subject or view.name)
    report.passes_run = [PASS_ARENA_HAZARD]
    report.extend(check_arena(
        view, plan, sizer=sizer,
        require_exclusive_writes=require_exclusive_writes,
        inplace=inplace,
    ))
    return report


def verify_module(module, plan_hazards: bool = True) -> VerifyReport:
    """Verify a compiled module end to end (the ``repro lint`` driver).

    Runs the program passes, the sync-safety pass over the built kernels,
    and — with ``plan_hazards`` — plans the serving arena for the final
    program and runs the hazard pass over it, then repeats the hazard pass
    over the *plan-optimizer's* rewritten step list and repacked arena
    (fusion, elision, wave ordering), with the optimizer's deliberate
    in-place pairs allowlisted. Planning here is static (no grids are
    materialised), so paper-scale models lint fine.
    """
    from repro.runtime.memory_planner import plan_memory

    program = module.program
    report = verify_program(program, subject=module.name)
    report.passes_run.append(PASS_SYNC_SAFETY)
    report.extend(check_sync(module.kernels, module.device, program))
    if plan_hazards and report.clean:
        plan = plan_memory(program, exclusive_writes=True)
        report.merge(verify_plan(program, plan, subject=module.name))
        if report.clean:
            # Imported lazily: plan_opt sits above the runtime layer and
            # itself imports the verifier.
            from repro.runtime.plan_opt import plan_optimization

            opt = plan_optimization(program)
            report.merge(verify_plan(
                opt.step_view,
                opt.memory_plan,
                inplace=opt.inplace_pairs,
                subject=f"{module.name} (optimized plan)",
            ))
    else:
        report.passes_run.append(PASS_ARENA_HAZARD)
    return report


def assert_verified(program: ProgramLike, stage: str) -> VerifyReport:
    """Raise :class:`VerificationError` if the program has verifier errors.

    The compiler's fast static gate: called after lowering and after each
    transform stage when ``SouffleOptions.verify`` is set.
    """
    report = verify_program(program)
    if report.has_errors:
        raise VerificationError(
            f"verifier found {len(report.errors)} error(s) after {stage}:\n"
            + report.render(min_severity=Severity.ERROR)
        )
    return report


def verify_kernels_or_raise(kernels: Sequence, device,
                            program: ProgramLike) -> None:
    """Sync-safety gate over built kernels (compiler ``verify`` mode)."""
    diags = check_sync(kernels, device, program)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    if errors:
        raise VerificationError(
            f"sync-safety verification failed ({len(errors)} error(s)):\n"
            + "\n".join(d.render() for d in errors)
        )
