"""Sync-safety pass: ``grid.sync()`` feasibility and ordering.

A merged kernel that contains grid synchronisation relies on *all* of its
blocks being co-resident: a block that is not scheduled can never arrive at
the barrier, so launching more blocks than one wave
(:meth:`~repro.gpu.device.GPUSpec.max_blocks_per_wave`) deadlocks the GPU
(paper Sec. 5.4's occupancy constraint). This pass re-derives the wave
bound from the kernel's own launch footprint and additionally checks the
kernel's internal structure: a consumer TE must run in a stage no earlier
than its in-kernel producer, and an atomic (two-phase) reduction's result
may only be read after a sync point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.gpu.device import GPUSpec
from repro.tir.build import BuiltKernel
from repro.tir.stmt import ComputeStmt, GridSync, Predicate, Stmt
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_SYNC_SAFETY,
    error,
    warning,
)
from repro.verify.view import ProgramLike, as_view


def _stage_map(stmts: Sequence[Stmt]) -> Dict[str, Dict[str, int]]:
    """Map ``te_name -> stage`` and ``te_name -> atomic`` from a kernel body.

    Stages are the regions between ``grid.sync()`` statements, counted from
    zero; compute statements inside predicates belong to the enclosing
    stage.
    """
    stages: Dict[str, int] = {}
    atomics: Dict[str, int] = {}
    level = 0

    def scan(body: Sequence[Stmt]) -> None:
        nonlocal level
        for stmt in body:
            if isinstance(stmt, GridSync):
                level += 1
            elif isinstance(stmt, Predicate):
                scan(stmt.body)
            elif isinstance(stmt, ComputeStmt):
                stages[stmt.te_name] = level
                atomics[stmt.te_name] = int(stmt.atomic)

    scan(stmts)
    return {"stage": stages, "atomic": atomics}


def check_sync(
    kernels: Sequence[BuiltKernel],
    device: GPUSpec,
    program: Optional[ProgramLike] = None,
) -> List[Diagnostic]:
    """Run the sync-safety pass over a module's built kernels."""
    diags: List[Diagnostic] = []

    producer_of: Dict[int, str] = {}
    consumers_of: Dict[str, List[object]] = {}
    node_by_name: Dict[str, object] = {}
    if program is not None:
        view = as_view(program)
        for node in view.nodes:
            producer_of[id(node.tensor)] = node.name
            node_by_name[node.name] = node

    for built in kernels:
        spec = built.spec
        loc = Location("kernel", spec.name)

        structure = _stage_map(built.function.stmts)
        stages, atomics = structure["stage"], structure["atomic"]
        derived_syncs = max(stages.values(), default=0)

        # ---- launch feasibility ----------------------------------------
        if spec.grid_syncs > 0 or derived_syncs > 0:
            wave = device.max_blocks_per_wave(
                spec.threads_per_block,
                spec.shared_mem_per_block,
                spec.regs_per_thread,
            )
            if wave <= 0:
                diags.append(error(
                    PASS_SYNC_SAFETY, loc,
                    f"kernel footprint ({spec.threads_per_block} threads, "
                    f"{spec.shared_mem_per_block}B smem, "
                    f"{spec.regs_per_thread} regs/thread) fits zero blocks "
                    f"on {device.name}; grid.sync() can never complete",
                    "shrink the per-block footprint",
                ))
            elif spec.grid_blocks > wave:
                diags.append(error(
                    PASS_SYNC_SAFETY, loc,
                    f"kernel launches {spec.grid_blocks} blocks but only "
                    f"{wave} can be co-resident per wave on {device.name}; "
                    f"blocks beyond the wave never reach grid.sync() — "
                    f"deadlock",
                    f"cap the grid at {wave} persistent blocks and loop "
                    f"over tiles inside each block",
                ))

        if spec.grid_syncs != derived_syncs:
            diags.append(warning(
                PASS_SYNC_SAFETY, loc,
                f"kernel spec declares {spec.grid_syncs} grid sync(s) but "
                f"the body contains {derived_syncs}",
                "keep KernelSpec.grid_syncs consistent with the emitted "
                "statements",
            ))

        # ---- cross-TE ordering inside the kernel -----------------------
        if program is None:
            continue
        in_kernel = set(stages)
        for te_name in spec.te_names:
            if te_name not in stages:
                diags.append(warning(
                    PASS_SYNC_SAFETY, loc,
                    f"TE {te_name} is listed in the kernel spec but has no "
                    f"compute statement in the body",
                ))
        for te_name, stage in stages.items():
            node = node_by_name.get(te_name)
            if node is None:
                continue
            for operand in node.inputs:
                producer = producer_of.get(id(operand))
                if producer is None or producer not in in_kernel:
                    continue
                ploc = Location(
                    "kernel", spec.name, f"{producer} -> {te_name}"
                )
                if stages[producer] > stage:
                    diags.append(error(
                        PASS_SYNC_SAFETY, ploc,
                        f"TE {te_name} (stage {stage}) consumes "
                        f"{producer} computed in a later stage "
                        f"({stages[producer]})",
                        "order stages so producers complete before "
                        "consumers",
                    ))
                elif atomics.get(producer) and stages[producer] == stage:
                    diags.append(error(
                        PASS_SYNC_SAFETY, ploc,
                        f"TE {te_name} reads the atomically-reduced "
                        f"{producer} in the same stage; the global "
                        f"accumulation is only complete after grid.sync()",
                        "insert a grid sync between the atomic reduction "
                        "and its consumer",
                    ))
    return diags
