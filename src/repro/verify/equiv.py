"""Translation validation: symbolic equivalence certificates per transform.

The repo's transforms were historically checked *dynamically* — replay six
models, diff bytes (``transform.semantics``, the plan optimizer's per-pass
differential gates). This module makes "semantic-preserving" a static,
per-compile guarantee instead of a test-suite property: every transform
application is re-expressed as a proof obligation over canonicalized tensor
expressions and discharged symbolically, with a bounded concrete refutation
search producing a minimized, replayable counterexample feed whenever
equality cannot be established.

One certifier per transform family:

* ``certify_te_transform``      — TE-level horizontal / vertical rewrites
  (``transform/``): before/after tensors are matched by name, each matched
  pair's body is closed over the already-proved frontier (unmatched
  intermediates inlined exactly the way the transforms inline them),
  simplified with the same interval engine the vertical transform uses,
  canonicalized (positional alpha-renaming, commutative-chain sorting,
  affine index normal forms via :func:`repro.te.affine.linearize`) and
  compared structurally.
* ``certify_plan_optimization`` — plan-level hoisting / fusion / elision /
  matmul specialization / block tiling (``runtime/plan_opt.py`` +
  ``runtime/tiling.py``): obligations are re-derived independently of the
  planner (weight-only transitive reads, sequential group composition over
  the group's read frontier, consumer liveness of elided operands, exact
  row-partition cover and per-read alignment classes, einsum spec
  re-derivation from the reduction body).
* ``certify_batched_lowering``  — batched lowering (``runtime/executor``):
  lane-invariance of every precomputed gather grid (no data-dependent
  indexing) and ellipsis-batched contraction formulas.
* ``certify_batched_binding``   — the batch binding layer: every lane of
  every bound placeholder must hold that request's feed (the zero-stride
  broadcast fast path included), probed with deterministic per-lane feeds.

Everything on the *prove* path is static — no evaluation grid is ever
materialised, so certification works at paper scale where the functional
executor cannot run. Concrete evaluation happens only in the refutation
search, and then pointwise: single output coordinates evaluated over
lazily generated per-(tensor, index) feed values.
"""

from __future__ import annotations

import itertools
import math
import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import TEError, VerificationError
from repro.te.affine import linearize
from repro.te.evaluator import _CALL_FN
from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    IterVar,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.patterns import match_matmul
from repro.te.tensor import Tensor, placeholder
from repro.te.traversal import (
    collect_reads,
    count_nodes,
    free_vars,
    rename_reduce_axes,
    replace_tensor_reads,
    substitute_vars,
    walk,
)
from repro.transform.simplify import Interval, simplify_expr
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_EQUIVALENCE,
    Severity,
)
from repro.verify.view import ProgramLike, ProgramView, as_view

# Certificate statuses.
PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"

# Budget caps: closures past this size fall back to refutation/unknown
# instead of stalling the compile; reduction domains past this many points
# are too big to fold pointwise.
MAX_CLOSURE_NODES = 50_000
MAX_REDUCE_POINTS = 1 << 14
MAX_FEED_ENTRIES = 512
MAX_PROBE_ELEMENTS = 1 << 20

_REL_TOL = 1e-6
_ABS_TOL = 1e-8


# ---- certificates -----------------------------------------------------------


@dataclass(frozen=True)
class Counterexample:
    """A concrete refutation: one output coordinate where before != after.

    ``feeds`` holds exactly the (tensor name, element index, value) entries
    the two evaluations actually read, so the divergence replays from the
    certificate alone (see :func:`replay_certificate`); the coordinate is
    greedily minimized toward the origin.
    """

    output: str
    coordinates: Tuple[int, ...]
    before_value: float
    after_value: float
    feeds: Tuple[Tuple[str, Tuple[int, ...], float], ...]
    truncated: bool = False

    def feed_map(self) -> Dict[Tuple[str, Tuple[int, ...]], float]:
        return {(name, idx): value for name, idx, value in self.feeds}

    def as_dict(self) -> Dict[str, object]:
        return {
            "output": self.output,
            "coordinates": list(self.coordinates),
            "before_value": self.before_value,
            "after_value": self.after_value,
            "feeds": [
                [name, list(idx), value] for name, idx, value in self.feeds
            ],
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Counterexample":
        return cls(
            output=str(payload["output"]),
            coordinates=tuple(int(c) for c in payload["coordinates"]),
            before_value=float(payload["before_value"]),
            after_value=float(payload["after_value"]),
            feeds=tuple(
                (str(name), tuple(int(i) for i in idx), float(value))
                for name, idx, value in payload["feeds"]
            ),
            truncated=bool(payload.get("truncated", False)),
        )

    def render(self) -> str:
        feeds = ", ".join(
            f"{name}{list(idx)}={value:g}" for name, idx, value in self.feeds[:4]
        )
        more = (
            f", ... {len(self.feeds) - 4} more feed entries"
            if len(self.feeds) > 4
            else ""
        )
        return (
            f"{self.output}{list(self.coordinates)}: "
            f"before={self.before_value:g} after={self.after_value:g} "
            f"(feeds: {feeds}{more})"
        )


@dataclass(frozen=True)
class EquivalenceCertificate:
    """The verdict for one transform application.

    ``obligations`` counts the proof obligations discharged (matched tensor
    pairs, hoisted nodes, fused groups, ...) — a proved certificate with
    zero obligations records that the transform had nothing to do, which is
    still a statement worth caching.
    """

    transform: str
    subject: str
    status: str
    obligations: int = 0
    detail: str = ""
    counterexample: Optional[Counterexample] = None

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    @property
    def refuted(self) -> bool:
        return self.status == REFUTED

    def as_dict(self) -> Dict[str, object]:
        return {
            "transform": self.transform,
            "subject": self.subject,
            "status": self.status,
            "obligations": self.obligations,
            "detail": self.detail,
            "counterexample": (
                self.counterexample.as_dict() if self.counterexample else None
            ),
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, object]
    ) -> "EquivalenceCertificate":
        cx = payload.get("counterexample")
        return cls(
            transform=str(payload["transform"]),
            subject=str(payload["subject"]),
            status=str(payload["status"]),
            obligations=int(payload.get("obligations", 0)),
            detail=str(payload.get("detail", "")),
            counterexample=Counterexample.from_dict(cx) if cx else None,
        )

    def render(self) -> str:
        line = (
            f"{self.status.upper():8s}[{self.transform}] {self.subject}: "
            f"{self.obligations} obligation(s)"
        )
        if self.detail:
            line += f" — {self.detail}"
        if self.counterexample is not None:
            line += f"\n    counterexample: {self.counterexample.render()}"
        return line

    def to_diagnostic(self) -> Diagnostic:
        """Bridge into the verifier's diagnostic machinery."""
        severity = {
            PROVED: Severity.INFO,
            UNKNOWN: Severity.WARNING,
            REFUTED: Severity.ERROR,
        }[self.status]
        message = (
            f"{self.transform}: {self.status} "
            f"({self.obligations} obligation(s))"
        )
        if self.detail:
            message += f" — {self.detail}"
        if self.counterexample is not None:
            message += f"; counterexample {self.counterexample.render()}"
        return Diagnostic(
            severity,
            PASS_EQUIVALENCE,
            Location("program", self.subject, self.transform),
            message,
        )


@dataclass
class CertificationReport:
    """All certificates emitted for one model / plan."""

    subject: str = "<program>"
    certificates: List[EquivalenceCertificate] = field(default_factory=list)

    def add(self, certificate: EquivalenceCertificate) -> None:
        self.certificates.append(certificate)

    def extend(
        self, certificates: Sequence[EquivalenceCertificate]
    ) -> None:
        self.certificates.extend(certificates)

    def _with_status(self, status: str) -> List[EquivalenceCertificate]:
        return [c for c in self.certificates if c.status == status]

    @property
    def proved(self) -> List[EquivalenceCertificate]:
        return self._with_status(PROVED)

    @property
    def refuted(self) -> List[EquivalenceCertificate]:
        return self._with_status(REFUTED)

    @property
    def unknown(self) -> List[EquivalenceCertificate]:
        return self._with_status(UNKNOWN)

    @property
    def all_proved(self) -> bool:
        return bool(self.certificates) and not self.refuted and not self.unknown

    def sorted(self) -> List[EquivalenceCertificate]:
        order = {REFUTED: 0, UNKNOWN: 1, PROVED: 2}
        return sorted(
            self.certificates,
            key=lambda c: (order[c.status], c.transform, c.subject, c.detail),
        )

    def render(self) -> str:
        lines = [c.render() for c in self.sorted()]
        lines.append(
            f"{self.subject}: {len(self.proved)} proved, "
            f"{len(self.refuted)} refuted, {len(self.unknown)} unknown"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "proved": len(self.proved),
            "refuted": len(self.refuted),
            "unknown": len(self.unknown),
            "certificates": [c.as_dict() for c in self.sorted()],
        }

    def diagnostics(self) -> List[Diagnostic]:
        return [c.to_diagnostic() for c in self.sorted()]

    def exit_code(self, strict: bool = False) -> int:
        """``repro certify`` contract: refutations -> 1, unknowns -> 1
        only under ``--strict``."""
        if self.refuted:
            return 1
        if strict and self.unknown:
            return 1
        return 0

    def __iter__(self):
        return iter(self.certificates)

    def __len__(self) -> int:
        return len(self.certificates)


class ClosureBudgetExceeded(Exception):
    """Symbolic closure grew past :data:`MAX_CLOSURE_NODES`."""


class RefutationBudgetExceeded(Exception):
    """A reduction domain is too large for pointwise evaluation."""


# ---- symbolic closures ------------------------------------------------------


@dataclass
class Closure:
    """A tensor's value as an expression over a frontier of named reads.

    ``axes`` are the output's spatial axes; every other variable in
    ``expr`` is bound by a Reduce. ``ranges`` maps every variable to its
    interval, feeding both the simplifier and the canonicalizer.
    """

    axes: Tuple[IterVar, ...]
    expr: Expr
    ranges: Dict[str, Interval]


def _ranges_for(axes: Sequence[IterVar], expr: Expr) -> Dict[str, Interval]:
    """Interval environment for a closure (mirrors the vertical pass)."""
    ranges = {
        ax.name: Interval(ax.dom.lo, ax.dom.hi - 1) for ax in axes
    }
    for sub in walk(expr):
        if isinstance(sub, Reduce):
            for ax in sub.axes:
                ranges[ax.name] = Interval(ax.dom.lo, ax.dom.hi - 1)
    return ranges


_FOLD_OPS = ("max", "min", "floordiv", "mod")


def _foldable(expr: Expr) -> bool:
    """Whether the interval simplifier can do anything to ``expr``.

    The fold targets clamp scaffolding (min/max), decidable branches
    (Cmp / IfThenElse) and interval-constant floordiv/mod; expressions
    without any of those pass through ``simplify_expr`` unchanged, so
    skipping the (expensive) pass on them is behaviour-preserving.
    """
    for sub in walk(expr):
        if isinstance(sub, (IfThenElse, Cmp)):
            return True
        if isinstance(sub, BinOp) and sub.op in _FOLD_OPS:
            return True
    return False


def _linear_form(expr: Expr) -> Optional[Tuple[Dict[str, int], int]]:
    """Single-pass integer linear form ``coeffs * vars + const``.

    Equivalent to ``linearize`` over the expression's free variables
    (exact cancellation included) without the separate ``free_vars``
    walk — this sits on the hottest closure-folding path.
    """
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            return {}, value
        if isinstance(value, float) and value.is_integer():
            return {}, int(value)
        return None
    if isinstance(expr, Var):
        return {expr.name: 1}, 0
    if isinstance(expr, BinOp):
        if expr.op in ("add", "sub"):
            left = _linear_form(expr.lhs)
            if left is None:
                return None
            right = _linear_form(expr.rhs)
            if right is None:
                return None
            sign = 1 if expr.op == "add" else -1
            coeffs, const = dict(left[0]), left[1] + sign * right[1]
            for name, coeff in right[0].items():
                coeffs[name] = coeffs.get(name, 0) + sign * coeff
            return coeffs, const
        if expr.op == "mul":
            left = _linear_form(expr.lhs)
            if left is None:
                return None
            right = _linear_form(expr.rhs)
            if right is None:
                return None
            if left[0] and right[0]:
                return None  # var * var
            if not left[0]:
                scale, (coeffs, const) = left[1], right
            else:
                scale, (coeffs, const) = right[1], left
            return {n: scale * c for n, c in coeffs.items()}, scale * const
    return None


def _affine_bounds(
    expr: Expr, ranges: Mapping[str, Interval]
) -> Optional[Tuple[int, int]]:
    """Exact [lo, hi] bounds of an affine expression, else ``None``."""
    form = _linear_form(expr)
    if form is None:
        return None
    coeffs, const = form
    lo = hi = const
    for name, coeff in coeffs.items():
        if coeff == 0:
            continue
        interval = ranges.get(name)
        if interval is None:
            return None
        a, b = coeff * interval.lo, coeff * interval.hi
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _decide_cmp(
    cmp: Cmp, ranges: Mapping[str, Interval]
) -> Optional[bool]:
    """Decide an affine comparison by exact interval bounds."""
    bounds = _affine_bounds(BinOp("sub", cmp.lhs, cmp.rhs), ranges)
    if bounds is None:
        return None
    lo, hi = bounds
    if cmp.op == "lt":
        return True if hi < 0 else (False if lo >= 0 else None)
    if cmp.op == "le":
        return True if hi <= 0 else (False if lo > 0 else None)
    if cmp.op == "gt":
        return True if lo > 0 else (False if hi <= 0 else None)
    if cmp.op == "ge":
        return True if lo >= 0 else (False if hi < 0 else None)
    if cmp.op == "eq":
        if lo == 0 and hi == 0:
            return True
        return False if (hi < 0 or lo > 0) else None
    if cmp.op == "ne":
        if hi < 0 or lo > 0:
            return True
        return False if (lo == 0 and hi == 0) else None
    return None


def _prune_selects(expr: Expr, ranges: Mapping[str, Interval]) -> Expr:
    """Fold decidable selects and clamps with exact affine bounds.

    A fast, targeted subset of ``simplify_expr``: IfThenElse branches
    whose condition is an interval-decidable affine comparison are
    replaced by the surviving branch, and min/max clamps whose operand
    order is interval-decidable collapse to one operand. This is the
    fold that matters for transform closures (horizontal's concat-select
    and clamp scaffolding is all affine), at a fraction of the full
    interval-inference cost — the full simplifier only runs afterwards
    if non-affine foldables (floordiv/mod) remain.

    Subtrees containing no foldable node are returned untouched (one
    memoised postorder scan up front), so the rebuild + bounds cost is
    paid only along fold-bearing paths.
    """
    return _prune(expr, ranges, {})


def _has_folds(expr: Expr, memo: Dict[int, bool]) -> bool:
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    if isinstance(expr, (IfThenElse, Cmp)):
        result = True
    elif isinstance(expr, BinOp):
        result = (
            expr.op in _FOLD_OPS
            or _has_folds(expr.lhs, memo)
            or _has_folds(expr.rhs, memo)
        )
    elif isinstance(expr, Call):
        result = any(_has_folds(a, memo) for a in expr.args)
    elif isinstance(expr, TensorRead):
        result = any(_has_folds(i, memo) for i in expr.indices)
    elif isinstance(expr, Reduce):
        result = _has_folds(expr.body, memo)
    else:
        result = False
    memo[id(expr)] = result
    return result


def _prune(
    expr: Expr, ranges: Mapping[str, Interval], memo: Dict[int, bool]
) -> Expr:
    if not _has_folds(expr, memo):
        return expr
    if isinstance(expr, IfThenElse):
        cond = _prune(expr.cond, ranges, memo)
        verdict = _decide_cmp(cond, ranges) if isinstance(cond, Cmp) else None
        if verdict is True:
            return _prune(expr.then_value, ranges, memo)
        if verdict is False:
            return _prune(expr.else_value, ranges, memo)
        return IfThenElse(
            cond,
            _prune(expr.then_value, ranges, memo),
            _prune(expr.else_value, ranges, memo),
        )
    if isinstance(expr, Reduce):
        inner = dict(ranges)
        for ax in expr.axes:
            inner[ax.name] = Interval(ax.dom.lo, ax.dom.hi - 1)
        return Reduce(expr.kind, _prune(expr.body, inner, memo), expr.axes)
    if isinstance(expr, BinOp):
        lhs = _prune(expr.lhs, ranges, memo)
        rhs = _prune(expr.rhs, ranges, memo)
        if expr.op in ("min", "max"):
            bounds = _affine_bounds(BinOp("sub", lhs, rhs), ranges)
            if bounds is not None:
                lo, hi = bounds
                if hi <= 0:
                    return lhs if expr.op == "min" else rhs
                if lo >= 0:
                    return rhs if expr.op == "min" else lhs
        return BinOp(expr.op, lhs, rhs)
    if isinstance(expr, Cmp):
        return Cmp(
            expr.op,
            _prune(expr.lhs, ranges, memo),
            _prune(expr.rhs, ranges, memo),
        )
    if isinstance(expr, Call):
        return Call(
            expr.func, tuple(_prune(a, ranges, memo) for a in expr.args)
        )
    if isinstance(expr, TensorRead):
        return TensorRead(
            expr.tensor,
            tuple(_prune(i, ranges, memo) for i in expr.indices),
        )
    return expr


class _ClosureBuilder:
    """Builds frontier-cut closures over one program view.

    Reads of tensors whose *name* is in the frontier stay symbolic; reads
    of produced non-frontier tensors are inlined exactly the way the
    vertical transform inlines them (axis substitution after a fresh
    renaming of the producer's reduce axes), recursively, so the closure
    is closed over frontier names + the output's own axes.
    """

    def __init__(
        self,
        view: ProgramView,
        frontier_names: Set[str],
        max_nodes: int = MAX_CLOSURE_NODES,
    ) -> None:
        self._producer: Dict[int, Tensor] = {
            id(node.tensor): node.tensor for node in view.nodes
        }
        self.frontier = frontier_names
        self.max_nodes = max_nodes
        self._suffix = itertools.count()
        # Per-producer caches: the reduce-renamed body and its reduce-axis
        # ranges. One unique suffix *per producer* (not per inline site) is
        # enough: the program is acyclic, so a producer's expansion never
        # contains another copy of itself — its binders can only meet
        # *other* producers' binders, which carry different suffixes.
        self._renamed: Dict[int, Tuple[Expr, Dict[str, Interval]]] = {}

    def _inline(self, tensor: Tensor) -> Expr:
        """Expand non-frontier reads one producer level per sweep.

        Each sweep substitutes producers' *raw* bodies and then folds the
        result with the interval simplifier before the next sweep — the
        same interleaving the vertical transform uses. The fold is what
        keeps closures linear: horizontal's concat-selects become
        statically decidable once a concrete consumer index lands in
        them, and without it a 3-way select chain k levels deep costs
        3^k copies.
        """
        op = tensor.op
        assert op is not None
        body = op.body
        while True:
            changed = False
            ranges = _ranges_for(op.axes, body)

            def visit(read: TensorRead) -> Optional[Expr]:
                nonlocal changed
                target = read.tensor
                if target.name in self.frontier:
                    return None
                if id(target) not in self._producer or target.op is None:
                    return None  # placeholders are inherently frontier
                changed = True
                cached = self._renamed.get(id(target))
                if cached is None:
                    renamed = rename_reduce_axes(
                        target.op.body, f"$q{next(self._suffix)}"
                    )
                    cached = (renamed, _ranges_for((), renamed))
                    self._renamed[id(target)] = cached
                renamed, reduce_ranges = cached
                mapping = {
                    ax.name: idx
                    for ax, idx in zip(target.op.axes, read.indices)
                }
                inner = substitute_vars(renamed, mapping)
                # Fold at the inline site (clamped indices land inside the
                # producer body during substitution, making its concat-
                # selects decidable); folding here, with only the inlined
                # subtree in hand, keeps cost proportional to the subtree
                # and stops 3-way select chains costing 3^depth copies.
                # The site ranges are the sweep body's ranges plus the
                # producer's own (cached) reduce ranges — the substituted
                # index expressions are subtrees of the sweep body, so
                # their reduce variables are already covered.
                if _foldable(inner):
                    site = {**ranges, **reduce_ranges}
                    inner = _prune_selects(inner, site)
                    if _foldable(inner):
                        inner = simplify_expr(inner, site)
                return inner

            body = replace_tensor_reads(body, visit)
            if not changed:
                return body
            if count_nodes(body) > self.max_nodes:
                raise ClosureBudgetExceeded(
                    f"closure of {tensor.name} exceeds "
                    f"{self.max_nodes} nodes"
                )

    def closure(self, tensor: Tensor) -> Closure:
        expr = self._inline(tensor)
        axes = tuple(tensor.op.axes)
        return Closure(axes, expr, _ranges_for(axes, expr))


# ---- canonicalization -------------------------------------------------------

_COMMUTATIVE = ("add", "mul", "max", "min")
_CMP_FLIP = {"gt": "lt", "ge": "le"}


def _rename_bound(closure: Closure) -> Expr:
    """Positional alpha-renaming of spatial and reduce variables.

    Spatial axes become ``%i0..``; reduce axes are renamed ``%r0..`` in
    pre-order, so two structurally matching expressions receive matching
    names regardless of what the transforms called their axes.
    """
    mapping = {
        ax.name: Var(f"%i{k}") for k, ax in enumerate(closure.axes)
    }
    expr = substitute_vars(closure.expr, mapping)
    counter = itertools.count()

    def rename(node: Expr) -> Expr:
        if isinstance(node, Reduce):
            submap: Dict[str, Expr] = {}
            new_axes = []
            for ax in node.axes:
                name = f"%r{next(counter)}"
                submap[ax.name] = Var(name)
                new_axes.append(IterVar(Var(name), ax.dom, kind="reduce"))
            body = substitute_vars(node.body, submap)
            return Reduce(node.kind, rename(body), tuple(new_axes))
        if isinstance(node, BinOp):
            return BinOp(node.op, rename(node.lhs), rename(node.rhs))
        if isinstance(node, Cmp):
            return Cmp(node.op, rename(node.lhs), rename(node.rhs))
        if isinstance(node, Call):
            return Call(node.func, tuple(rename(a) for a in node.args))
        if isinstance(node, TensorRead):
            return TensorRead(
                node.tensor, tuple(rename(i) for i in node.indices)
            )
        if isinstance(node, IfThenElse):
            return IfThenElse(
                rename(node.cond),
                rename(node.then_value),
                rename(node.else_value),
            )
        return node

    return rename(expr)


def _flatten(op: str, expr: Expr) -> List[Expr]:
    if isinstance(expr, BinOp) and expr.op == op:
        return _flatten(op, expr.lhs) + _flatten(op, expr.rhs)
    return [expr]


def _affine_key(expr: Expr) -> Optional[str]:
    """Affine normal form of a (sub)expression, when it has one.

    ``i + 1 + 0*j`` and ``1 + i`` normalize to the same key, and offset
    round-trips like ``(v + 8) - 8`` fold away even when they sit inside
    non-affine contexts (floordiv/mod splits, data-dependent reads) —
    those contexts fall back to the structural key but their affine
    *arguments* still normalize.
    """
    # Cheap pre-check before paying for free_vars + linearize: anything
    # but Var / Const / {add,sub,mul} cannot be affine. (var*var still
    # passes and is rejected by linearize itself.)
    for node in walk(expr):
        if isinstance(node, (Var, Const)):
            continue
        if isinstance(node, BinOp) and node.op in ("add", "sub", "mul"):
            continue
        return None
    names = sorted(free_vars(expr))
    try:
        coeffs, const = linearize(expr, names)
    except TEError:
        return None
    terms = [
        f"{coeffs[name]}*{name}" for name in names if coeffs.get(name, 0)
    ]
    return f"aff({const}" + ("".join("+" + t for t in terms)) + ")"


def _sum_nf(expr: Expr) -> Tuple[Dict[str, float], float]:
    """Sum normal form: linear combination of atom keys plus a constant.

    Folds constant round-trips through *non-affine* atoms — ``(X - 16) +
    16`` where ``X`` contains a mod — which neither the interval
    simplifier nor affine linearization can reach.
    """
    if isinstance(expr, Const) and not isinstance(expr.value, bool):
        return {}, float(expr.value)
    if isinstance(expr, BinOp):
        if expr.op in ("add", "sub"):
            sign = 1.0 if expr.op == "add" else -1.0
            lt, lc = _sum_nf(expr.lhs)
            rt, rc = _sum_nf(expr.rhs)
            terms = dict(lt)
            for key, coeff in rt.items():
                terms[key] = terms.get(key, 0.0) + sign * coeff
            return (
                {k: v for k, v in terms.items() if v != 0.0},
                lc + sign * rc,
            )
        if expr.op == "mul":
            lt, lc = _sum_nf(expr.lhs)
            rt, rc = _sum_nf(expr.rhs)
            if not lt:
                return (
                    {k: lc * v for k, v in rt.items() if lc * v != 0.0},
                    lc * rc,
                )
            if not rt:
                return (
                    {k: rc * v for k, v in lt.items() if rc * v != 0.0},
                    lc * rc,
                )
    return {_atom_key(expr): 1.0}, 0.0


def _atom_key(expr: Expr) -> str:
    """Key a sum-normal-form atom (no affine/sum re-attempt on BinOps)."""
    if isinstance(expr, BinOp):
        if expr.op in _COMMUTATIVE:
            parts = sorted(_expr_key(e) for e in _flatten(expr.op, expr))
            return f"({expr.op} {' '.join(parts)})"
        return f"({expr.op} {_expr_key(expr.lhs)} {_expr_key(expr.rhs)})"
    return _expr_key(expr)


def _expr_key(expr: Expr) -> str:
    """Canonical structural key: maximal affine subexpressions in affine
    normal form, non-affine add/sub/mul chains in sum normal form,
    commutative chains sorted, comparisons polarity-normalized, constants
    compared by value."""
    if isinstance(expr, (Var, BinOp)):
        affine = _affine_key(expr)
        if affine is not None:
            return affine
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, bool):
            return f"c{int(value)}"
        return f"c{float(value)!r}"
    if isinstance(expr, Var):
        return f"v{expr.name}"  # non-linearizable (unreachable in practice)
    if isinstance(expr, BinOp):
        if expr.op in ("add", "sub", "mul"):
            terms, const = _sum_nf(expr)
            if not terms:
                return f"c{const!r}"
            if const == 0.0 and len(terms) == 1:
                (key, coeff), = terms.items()
                if coeff == 1.0:
                    return key
            parts = " ".join(
                f"{coeff!r}*{key}" for key, coeff in sorted(terms.items())
            )
            return f"(sum c{const!r} {parts})"
        return _atom_key(expr)
    if isinstance(expr, Cmp):
        op, lhs, rhs = expr.op, expr.lhs, expr.rhs
        if op in _CMP_FLIP:
            op, lhs, rhs = _CMP_FLIP[op], rhs, lhs
        lk, rk = _expr_key(lhs), _expr_key(rhs)
        if op in ("eq", "ne") and rk < lk:
            lk, rk = rk, lk
        return f"(cmp-{op} {lk} {rk})"
    if isinstance(expr, Call):
        args = " ".join(_expr_key(a) for a in expr.args)
        return f"({expr.func} {args})"
    if isinstance(expr, TensorRead):
        indices = " ".join(_expr_key(i) for i in expr.indices)
        return f"(read {expr.tensor.name} {indices})"
    if isinstance(expr, Reduce):
        axes = " ".join(
            f"{ax.name}:[{ax.dom.lo},{ax.dom.hi})" for ax in expr.axes
        )
        return f"(reduce-{expr.kind} [{axes}] {_expr_key(expr.body)})"
    if isinstance(expr, IfThenElse):
        return (
            f"(select {_expr_key(expr.cond)} {_expr_key(expr.then_value)} "
            f"{_expr_key(expr.else_value)})"
        )
    raise TEError(f"cannot canonicalize node {type(expr).__name__}")


def canonical_key(closure: Closure) -> str:
    """The closure's canonical form, used for structural proof."""
    expr = closure.expr
    singles: Dict[str, Expr] = {
        name: Const(iv.lo, "int32")
        for name, iv in closure.ranges.items()
        if iv.lo == iv.hi
    }
    if singles:
        # A variable with a one-point domain *is* that point. Fold it so
        # a side whose clamp already collapsed (an extent-1 concat member
        # folds min(max(i,0),0) to 0) keys identically to a side that
        # kept the free index.
        expr = substitute_vars(expr, singles)
    if _foldable(expr):
        expr = simplify_expr(expr, closure.ranges)
    renamed = _rename_bound(Closure(closure.axes, expr, closure.ranges))
    return _expr_key(renamed)


def _structurally_equal(a: Expr, b: Expr) -> bool:
    """Exact structural equality with reads compared by tensor *name*.

    The cheap fast path: transforms rebuild kept tensors, so ``==`` on
    bodies fails (TensorRead compares tensors by identity) even when the
    text is unchanged.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, TensorRead):
        return (
            a.tensor.name == b.tensor.name
            and len(a.indices) == len(b.indices)
            and all(
                _structurally_equal(x, y)
                for x, y in zip(a.indices, b.indices)
            )
        )
    if isinstance(a, Const):
        return a.value == b.value
    if isinstance(a, Var):
        return a.name == b.name
    if isinstance(a, BinOp):
        return (
            a.op == b.op
            and _structurally_equal(a.lhs, b.lhs)
            and _structurally_equal(a.rhs, b.rhs)
        )
    if isinstance(a, Cmp):
        return (
            a.op == b.op
            and _structurally_equal(a.lhs, b.lhs)
            and _structurally_equal(a.rhs, b.rhs)
        )
    if isinstance(a, Call):
        return (
            a.func == b.func
            and len(a.args) == len(b.args)
            and all(
                _structurally_equal(x, y) for x, y in zip(a.args, b.args)
            )
        )
    if isinstance(a, Reduce):
        return (
            a.kind == b.kind
            and len(a.axes) == len(b.axes)
            and all(
                x.name == y.name and x.dom == y.dom
                for x, y in zip(a.axes, b.axes)
            )
            and _structurally_equal(a.body, b.body)
        )
    if isinstance(a, IfThenElse):
        return (
            _structurally_equal(a.cond, b.cond)
            and _structurally_equal(a.then_value, b.then_value)
            and _structurally_equal(a.else_value, b.else_value)
        )
    return False


# ---- pointwise refutation ---------------------------------------------------


def _hash_feed(salt: str, name: str, idx: Tuple[int, ...], dtype: str) -> float:
    """Deterministic pseudo-random feed value for one tensor element.

    Exactly representable in float64 (multiples of 1/64), process- and
    run-stable (crc32, not ``hash``), dtype-respecting so int/bool index
    tensors produce legal indices.
    """
    h = zlib.crc32(f"{salt}|{name}|{idx}".encode())
    if dtype == "bool":
        return float(h & 1)
    if dtype.startswith("int") or dtype.startswith("uint"):
        return float(h % 8)
    return ((h % 1024) - 512) / 64.0


class _FeedStore:
    """Lazy per-(tensor, element) feed values shared by both evaluations.

    ``overrides`` replays a stored counterexample; ``reads`` records what
    was actually consumed, which becomes the counterexample feed.
    """

    def __init__(
        self,
        salt: str = "",
        overrides: Optional[
            Mapping[Tuple[str, Tuple[int, ...]], float]
        ] = None,
        perturb: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.salt = salt
        self.overrides = dict(overrides or {})
        self.perturb = dict(perturb or {})
        self.reads: Dict[Tuple[str, Tuple[int, ...]], float] = {}

    def value(self, name: str, idx: Tuple[int, ...], dtype: str) -> float:
        key = (name, idx)
        if key in self.overrides:
            value = self.overrides[key]
        else:
            value = _hash_feed(self.salt, name, idx, dtype)
            if name in self.perturb:
                value += self.perturb[name]
        self.reads[key] = value
        return value


class _PointEvaluator:
    """Scalar evaluation of a closure at one output coordinate."""

    def __init__(
        self, feeds: _FeedStore, reduce_limit: int = MAX_REDUCE_POINTS
    ) -> None:
        self.feeds = feeds
        self.reduce_limit = reduce_limit

    def eval(self, expr: Expr, env: Dict[str, float]) -> float:
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise TEError(f"unbound variable {expr.name!r}") from None
        if isinstance(expr, BinOp):
            a = self.eval(expr.lhs, env)
            b = self.eval(expr.rhs, env)
            return self._binop(expr.op, a, b)
        if isinstance(expr, Cmp):
            a = self.eval(expr.lhs, env)
            b = self.eval(expr.rhs, env)
            return float(
                {
                    "lt": a < b,
                    "le": a <= b,
                    "gt": a > b,
                    "ge": a >= b,
                    "eq": a == b,
                    "ne": a != b,
                }[expr.op]
            )
        if isinstance(expr, Call):
            args = [self.eval(a, env) for a in expr.args]
            return float(_CALL_FN[expr.func](*args))
        if isinstance(expr, IfThenElse):
            if self.eval(expr.cond, env):
                return self.eval(expr.then_value, env)
            return self.eval(expr.else_value, env)
        if isinstance(expr, TensorRead):
            idx = tuple(int(self.eval(i, env)) for i in expr.indices)
            dtype = getattr(expr.tensor, "dtype", "float32")
            return self.feeds.value(expr.tensor.name, idx, dtype)
        if isinstance(expr, Reduce):
            points = 1
            for ax in expr.axes:
                points *= ax.dom.extent
            if points > self.reduce_limit:
                raise RefutationBudgetExceeded(
                    f"reduction domain of {points} points exceeds the "
                    f"pointwise budget ({self.reduce_limit})"
                )
            acc = expr.init
            names = [ax.name for ax in expr.axes]
            saved = {n: env[n] for n in names if n in env}
            for coords in itertools.product(
                *(range(ax.dom.lo, ax.dom.hi) for ax in expr.axes)
            ):
                for name, value in zip(names, coords):
                    env[name] = float(value)
                value = self.eval(expr.body, env)
                if expr.kind == "sum":
                    acc += value
                elif expr.kind == "max":
                    acc = max(acc, value)
                else:
                    acc = min(acc, value)
            for name in names:
                env.pop(name, None)
            env.update(saved)
            return acc
        raise TEError(f"cannot evaluate node {type(expr).__name__}")

    @staticmethod
    def _binop(op: str, a: float, b: float) -> float:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            return a / b
        if op == "floordiv":
            return float(math.floor(a / b))
        if op == "mod":
            return a - b * math.floor(a / b)
        if op == "max":
            return max(a, b)
        if op == "min":
            return min(a, b)
        if op == "pow":
            return a ** b
        raise TEError(f"unknown binop {op!r}")


def evaluate_closure(
    closure: Closure,
    coordinates: Sequence[int],
    feeds: _FeedStore,
) -> float:
    """Evaluate one closure at one output coordinate."""
    env = {
        ax.name: float(c) for ax, c in zip(closure.axes, coordinates)
    }
    return _PointEvaluator(feeds).eval(closure.expr, env)


def _close(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


def _candidate_coords(
    shape: Sequence[int], samples: int = 8
) -> List[Tuple[int, ...]]:
    """Deterministic probe coordinates: origin, far corner, midpoint, then
    hash-scattered interior points."""
    if not shape:
        return [()]
    coords = [
        tuple(0 for _ in shape),
        tuple(e - 1 for e in shape),
        tuple(e // 2 for e in shape),
    ]
    for t in range(samples):
        coords.append(
            tuple(
                zlib.crc32(f"probe|{t}|{k}".encode()) % e
                for k, e in enumerate(shape)
            )
        )
    seen: Set[Tuple[int, ...]] = set()
    unique = []
    for c in coords:
        if c not in seen:
            seen.add(c)
            unique.append(c)
    return unique


def refute_closures(
    before: Closure,
    after: Closure,
    output: str,
    overrides: Optional[
        Mapping[Tuple[str, Tuple[int, ...]], float]
    ] = None,
) -> Optional[Counterexample]:
    """Bounded concrete search for a pointwise divergence.

    Returns a minimized counterexample, or ``None`` when no divergence is
    found within the probe budget (the caller reports ``unknown``).
    """
    shape = tuple(ax.extent for ax in before.axes)

    def values_at(coord: Tuple[int, ...]) -> Tuple[float, float, _FeedStore]:
        store = _FeedStore(overrides=overrides)
        b = evaluate_closure(before, coord, store)
        a = evaluate_closure(after, coord, store)
        return b, a, store

    def differs(coord: Tuple[int, ...]) -> bool:
        b, a, _ = values_at(coord)
        return not _close(b, a)

    witness: Optional[Tuple[int, ...]] = None
    for coord in _candidate_coords(shape):
        if differs(coord):
            witness = coord
            break
    if witness is None:
        return None

    # Greedy minimization toward the origin: per axis, try 0 then halving.
    coord = list(witness)
    changed = True
    while changed:
        changed = False
        for k in range(len(coord)):
            current = coord[k]
            for trial in (0, current // 2):
                if trial >= current:
                    continue
                attempt = tuple(
                    trial if i == k else coord[i] for i in range(len(coord))
                )
                if differs(attempt):
                    coord[k] = trial
                    changed = True
                    break

    final = tuple(coord)
    b, a, store = values_at(final)
    entries = sorted(
        (name, idx, value) for (name, idx), value in store.reads.items()
    )
    truncated = len(entries) > MAX_FEED_ENTRIES
    return Counterexample(
        output=output,
        coordinates=final,
        before_value=b,
        after_value=a,
        feeds=tuple(entries[:MAX_FEED_ENTRIES]),
        truncated=truncated,
    )


# ---- TE-level transforms (horizontal / vertical) ----------------------------


def _tensors_by_name(view: ProgramView) -> Dict[str, Tensor]:
    named: Dict[str, Tensor] = {}
    for t in view.inputs:
        named[t.name] = t
    for node in view.nodes:
        named[node.tensor.name] = node.tensor
    return named


class _PairProver:
    """Shared state for proving one transform's matched pairs in order.

    The name maps and closure builders persist across pairs so per-pair
    work is proportional to the pair, not the program (builders also keep
    their per-tensor foldability cache warm).
    """

    def __init__(
        self, before_view: ProgramView, after_view: ProgramView
    ) -> None:
        self.before_view = before_view
        self.after_view = after_view
        self.before_named = _tensors_by_name(before_view)
        self.after_named = _tensors_by_name(after_view)
        self.frontier = {t.name for t in before_view.inputs} | {
            t.name for t in after_view.inputs
        }
        self._before_builder = _ClosureBuilder(before_view, self.frontier)
        self._after_builder = _ClosureBuilder(after_view, self.frontier)

    def closures(self, name: str) -> Tuple[Closure, Closure]:
        return (
            self._before_builder.closure(self.before_named[name]),
            self._after_builder.closure(self.after_named[name]),
        )

    def prove(
        self, name: str
    ) -> Tuple[bool, Optional[Tuple[Closure, Closure]]]:
        """Prove one matched tensor pair equal over the proved frontier.

        Returns (proved, closures); closures are returned only when the
        proof failed, so the caller can run the refutation search.
        """
        b_tensor = self.before_named[name]
        a_tensor = self.after_named[name]
        if _structurally_equal(b_tensor.op.body, a_tensor.op.body):
            return True, None
        b_closure, a_closure = self.closures(name)
        if canonical_key(b_closure) == canonical_key(a_closure):
            return True, None
        return False, (b_closure, a_closure)


def _te_pairs(
    before_view: ProgramView, after_view: ProgramView
) -> List[str]:
    """Names produced by both programs at the same shape, after order."""
    before_named = {
        n.tensor.name: n.tensor for n in before_view.nodes
    }
    pairs = []
    for node in after_view.nodes:
        other = before_named.get(node.tensor.name)
        if other is not None and tuple(other.shape) == tuple(
            node.tensor.shape
        ):
            pairs.append(node.tensor.name)
    return pairs


def certify_te_transform(
    before: ProgramLike,
    after: ProgramLike,
    transform: str,
    refute: bool = True,
) -> EquivalenceCertificate:
    """Certify one TE-level rewrite (``horizontal`` / ``vertical``).

    Matched tensors are proved pairwise in ``after`` program order; each
    proved name joins the frontier, so later proofs cut their closures at
    already-certified tensors instead of re-expanding to placeholders.
    """
    before_view, after_view = as_view(before), as_view(after)
    subject = after_view.name

    missing = [
        out.name
        for out in before_view.outputs
        if out.name not in {o.name for o in after_view.outputs}
    ]
    if missing:
        return EquivalenceCertificate(
            transform, subject, REFUTED, 0,
            detail=f"transform dropped output(s): {', '.join(missing)}",
        )

    prover = _PairProver(before_view, after_view)
    obligations = 0
    for name in _te_pairs(before_view, after_view):
        try:
            proved, closures = prover.prove(name)
        except ClosureBudgetExceeded as exc:
            return EquivalenceCertificate(
                transform, subject, UNKNOWN, obligations, detail=str(exc)
            )
        if proved:
            prover.frontier.add(name)
            obligations += 1
            continue
        b_closure, a_closure = closures
        if refute:
            try:
                cx = refute_closures(b_closure, a_closure, name)
            except RefutationBudgetExceeded as exc:
                return EquivalenceCertificate(
                    transform, subject, UNKNOWN, obligations,
                    detail=f"{name}: canonical forms differ; {exc}",
                )
            if cx is not None:
                return EquivalenceCertificate(
                    transform, subject, REFUTED, obligations,
                    detail=f"{name}: pointwise divergence",
                    counterexample=cx,
                )
        return EquivalenceCertificate(
            transform, subject, UNKNOWN, obligations,
            detail=(
                f"{name}: canonical forms differ but no concrete "
                "divergence found within the probe budget"
            ),
        )
    return EquivalenceCertificate(transform, subject, PROVED, obligations)


# ---- plan-level transforms --------------------------------------------------


def _weight_ids(program) -> Set[int]:
    return {
        id(t)
        for t in program.inputs
        if getattr(t, "role", None) == "weight"
    }


def _hoist_closure(
    view: ProgramView, tensor: Tensor
) -> Closure:
    frontier = {t.name for t in view.inputs}
    return _ClosureBuilder(view, frontier).closure(tensor)


def _certify_hoist(program, opt) -> EquivalenceCertificate:
    """Hoisted steps may transitively read only weight placeholders."""
    subject = program.name
    view = as_view(program)
    allowed = _weight_ids(program) | {
        id(node.tensor) for node in opt.hoisted_nodes
    }
    obligations = 0
    for node in opt.hoisted_nodes:
        for read in node.inputs:
            obligations += 1
            if id(read) in allowed:
                continue
            # A non-weight input feeds the hoisted subgraph: its value is
            # cached across requests, so two requests that differ at that
            # input observe the first request's bytes. Demonstrate.
            try:
                closure = _hoist_closure(view, node.tensor)
            except ClosureBudgetExceeded as exc:
                return EquivalenceCertificate(
                    "hoist", subject, UNKNOWN, obligations,
                    detail=f"{node.name} reads non-weight {read.name}; {exc}",
                )
            coord = tuple(0 for _ in closure.axes)
            base_store = _FeedStore()
            perturbed_store = _FeedStore(perturb={read.name: 1.0})
            try:
                base = evaluate_closure(closure, coord, base_store)
                shifted = evaluate_closure(closure, coord, perturbed_store)
            except RefutationBudgetExceeded as exc:
                return EquivalenceCertificate(
                    "hoist", subject, UNKNOWN, obligations,
                    detail=f"{node.name} reads non-weight {read.name}; {exc}",
                )
            if _close(base, shifted):
                return EquivalenceCertificate(
                    "hoist", subject, UNKNOWN, obligations,
                    detail=(
                        f"{node.name} reads non-weight {read.name} but no "
                        "divergence found within the probe budget"
                    ),
                )
            entries = sorted(
                (name, idx, value)
                for (name, idx), value in base_store.reads.items()
            )
            cx = Counterexample(
                output=node.name,
                coordinates=coord,
                before_value=base,
                after_value=shifted,
                feeds=tuple(entries[:MAX_FEED_ENTRIES]),
                truncated=len(entries) > MAX_FEED_ENTRIES,
            )
            return EquivalenceCertificate(
                "hoist", subject, REFUTED, obligations,
                detail=(
                    f"{node.name} hoisted but transitively reads "
                    f"non-weight input {read.name} (second request with "
                    f"{read.name} shifted by +1 observes a stale value)"
                ),
                counterexample=cx,
            )
    return EquivalenceCertificate("hoist", subject, PROVED, obligations)


def _group_frontier(group) -> Set[str]:
    return {t.name for t in group.reads}


def _stale_tensor(
    stale: Dict[int, Tensor], tensor: Tensor
) -> Tensor:
    if id(tensor) not in stale:
        stale[id(tensor)] = placeholder(
            tensor.shape, dtype=tensor.dtype, name=f"stale${tensor.name}"
        )
    return stale[id(tensor)]


def _sequential_group_closure(group, order) -> Closure:
    """The value a fused group computes when its members execute in
    ``order``: reads of not-yet-computed members resolve to ``stale$``
    placeholders (the uninitialized scratch bytes the runtime would read).
    """
    member_ids = {id(m.tensor) for m in group.members}
    computed: Dict[int, Expr] = {}
    stale: Dict[int, Tensor] = {}
    suffix = itertools.count()
    for member in order:
        op = member.tensor.op

        def visit(read: TensorRead) -> Optional[Expr]:
            target = read.tensor
            if id(target) in computed:
                inner = rename_reduce_axes(
                    computed[id(target)], f"$g{next(suffix)}"
                )
                mapping = {
                    ax.name: idx
                    for ax, idx in zip(target.op.axes, read.indices)
                }
                return substitute_vars(inner, mapping)
            if id(target) in member_ids:
                return TensorRead(
                    _stale_tensor(stale, target), read.indices
                )
            return None

        computed[id(member.tensor)] = replace_tensor_reads(op.body, visit)
    expr = computed[id(group.terminal.tensor)]
    axes = tuple(group.terminal.tensor.op.axes)
    return Closure(axes, expr, _ranges_for(axes, expr))


def _certify_fusion(program, opt) -> EquivalenceCertificate:
    """Fused groups must compute the terminal's program semantics."""
    subject = program.name
    view = as_view(program)
    obligations = 0
    for group in opt.groups:
        if len(group.members) < 2:
            continue
        obligations += 1
        frontier = _group_frontier(group)
        try:
            reference = _ClosureBuilder(view, frontier).closure(
                group.terminal.tensor
            )
            sequential = _sequential_group_closure(group, group.members)
        except ClosureBudgetExceeded as exc:
            return EquivalenceCertificate(
                "fusion", subject, UNKNOWN, obligations,
                detail=f"group {group.name}: {exc}",
            )
        if canonical_key(reference) == canonical_key(sequential):
            # Interior liveness: deleting a fused interior's buffer is
            # only sound when nothing outside the group reads it.
            leaked = _fusion_leak(program, opt, group)
            if leaked is None:
                continue
            member, outsider = leaked
            cx = _stale_read_counterexample(
                view, outsider.tensor, member.tensor
            )
            return EquivalenceCertificate(
                "fusion", subject, REFUTED, obligations,
                detail=(
                    f"group {group.name}: interior {member.name} is "
                    f"still read by {outsider.name} outside the group "
                    "but its buffer is deleted"
                ),
                counterexample=cx,
            )
        try:
            cx = refute_closures(
                reference, sequential, group.terminal.name
            )
        except RefutationBudgetExceeded as exc:
            return EquivalenceCertificate(
                "fusion", subject, UNKNOWN, obligations,
                detail=f"group {group.name}: {exc}",
            )
        if cx is not None:
            return EquivalenceCertificate(
                "fusion", subject, REFUTED, obligations,
                detail=(
                    f"group {group.name}: composing members in the "
                    "recorded order does not reproduce the terminal "
                    "(reads-before-write resolve to stale scratch)"
                ),
                counterexample=cx,
            )
        return EquivalenceCertificate(
            "fusion", subject, UNKNOWN, obligations,
            detail=(
                f"group {group.name}: canonical forms differ but no "
                "concrete divergence found within the probe budget"
            ),
        )
    return EquivalenceCertificate("fusion", subject, PROVED, obligations)


def _fusion_leak(program, opt, group):
    """An (interior member, outside consumer) pair, if any leaks.

    A consumer outside *this* group is still sound when its own group also
    carries the member as an interior — the measured duplication pass
    recomputes a cheap map inside every consumer's group, so no group ever
    reads the deleted buffer.
    """
    member_ids = {id(m.tensor) for m in group.members}
    for member in group.members[:-1]:
        if program.is_output(member.tensor):
            return member, member  # outputs must never be interiors
        for consumer in program.consumers(member.tensor):
            if id(consumer.tensor) in member_ids:
                continue
            homes = [
                g
                for g in opt.groups
                if any(m.tensor is consumer.tensor for m in g.members)
            ]
            if homes and all(
                any(m.tensor is member.tensor for m in h.members[:-1])
                for h in homes
            ):
                continue  # every home recomputes the member internally
            return member, consumer
    return None


def _stale_read_counterexample(
    view: ProgramView, reader: Tensor, gone: Tensor
) -> Optional[Counterexample]:
    """Counterexample for a reader whose operand's buffer is gone: the
    reader's true value vs the value computed over stale bytes."""
    frontier = {t.name for t in view.inputs} | {
        node.tensor.name for node in view.nodes
        if node.tensor is not reader
    }
    try:
        reference = _ClosureBuilder(view, frontier).closure(reader)
    except ClosureBudgetExceeded:
        return None
    stale: Dict[int, Tensor] = {}

    def visit(read: TensorRead) -> Optional[Expr]:
        if read.tensor is gone:
            return TensorRead(_stale_tensor(stale, read.tensor), read.indices)
        return None

    stale_expr = replace_tensor_reads(reference.expr, visit)
    stale_closure = Closure(
        reference.axes, stale_expr, _ranges_for(reference.axes, stale_expr)
    )
    try:
        return refute_closures(reference, stale_closure, reader.name)
    except RefutationBudgetExceeded:
        return None


def _certify_elision(program, opt) -> EquivalenceCertificate:
    """In-place elision: the reused operand must be dead at the writer."""
    subject = program.name
    view = as_view(program)
    position_of: Dict[int, int] = {}
    for group in opt.groups:
        for member in group.members:
            position_of[id(member.tensor)] = group.position
    obligations = 0
    for position, operand in sorted(opt.elided.items()):
        obligations += 1
        writer_group = next(
            g for g in opt.groups if g.position == position
        )
        late = [
            consumer
            for consumer in program.consumers(operand)
            if position_of.get(id(consumer.tensor), -1) > position
        ]
        if program.is_output(operand):
            late.append(writer_group.terminal)
        if not late:
            continue
        reader = late[0]
        # The late reader's bytes now hold the writer's terminal value.
        cx = _overwritten_read_counterexample(
            view, reader.tensor, operand, writer_group.terminal.tensor
        )
        detail = (
            f"step {writer_group.name} writes in place over {operand.name} "
            f"but {reader.name} still reads it afterwards"
        )
        if cx is None:
            return EquivalenceCertificate(
                "elision", subject, UNKNOWN, obligations,
                detail=detail + " (no concrete divergence found)",
            )
        return EquivalenceCertificate(
            "elision", subject, REFUTED, obligations,
            detail=detail, counterexample=cx,
        )
    return EquivalenceCertificate("elision", subject, PROVED, obligations)


def _overwritten_read_counterexample(
    view: ProgramView, reader: Tensor, operand: Tensor, writer: Tensor
) -> Optional[Counterexample]:
    """Reader's true value vs its value when reads of ``operand`` observe
    the writer's output (what the shared bytes actually hold)."""
    if tuple(operand.shape) != tuple(writer.shape):
        return None
    frontier = {t.name for t in view.inputs} | {
        node.tensor.name for node in view.nodes if node.tensor is not reader
    }
    builder = _ClosureBuilder(view, frontier)
    try:
        reference = builder.closure(reader)
        writer_frontier = frontier - {writer.name}
        writer_closure = _ClosureBuilder(
            view, writer_frontier | {operand.name}
        ).closure(writer)
    except ClosureBudgetExceeded:
        return None
    suffix = itertools.count()

    def visit(read: TensorRead) -> Optional[Expr]:
        if read.tensor is not operand:
            return None
        inner = rename_reduce_axes(
            writer_closure.expr, f"$e{next(suffix)}"
        )
        mapping = {
            ax.name: idx
            for ax, idx in zip(writer_closure.axes, read.indices)
        }
        return substitute_vars(inner, mapping)

    overwritten = replace_tensor_reads(reference.expr, visit)
    after = Closure(
        reference.axes, overwritten, _ranges_for(reference.axes, overwritten)
    )
    try:
        return refute_closures(reference, after, reader.name)
    except RefutationBudgetExceeded:
        return None


def _certify_tiling(program, opt) -> EquivalenceCertificate:
    """Block tiling: exact row-partition cover + per-read alignment.

    The partition and the read classes are re-derived here independently
    of ``runtime.tiling`` (the certifier must not trust the code under
    test), summarised per chain as (reduce op set, axis set, row
    partition).
    """
    subject = program.name
    view = as_view(program)
    obligations = 0
    for chain in opt.tiled_chains:
        rows = chain.rows
        ranges = list(chain.block_ranges)
        obligations += 1

        bad_row: Optional[int] = None
        reason = ""
        covered = [0] * rows
        for lo, hi in ranges:
            if lo >= hi or lo < 0 or hi > rows:
                reason = f"degenerate block [{lo}, {hi}) over {rows} rows"
                bad_row = max(0, min(lo, rows - 1))
                break
            for r in range(lo, hi):
                covered[r] += 1
        if bad_row is None:
            for r, count in enumerate(covered):
                if count == 0:
                    bad_row = r
                    reason = f"row {r} is covered by no block"
                    break
                if count > 1:
                    bad_row = r
                    reason = f"row {r} is written by {count} blocks"
                    break
        if bad_row is not None:
            terminal = chain.terminal.tensor
            cx = None
            if reason.endswith("no block"):
                # The uncovered terminal row is never written: replaying
                # the tiled plan serves whatever bytes the arena held.
                coord = (bad_row,) + tuple(
                    0 for _ in tuple(terminal.shape)[1:]
                )
                cx = _pin_row(view, terminal, coord)
            return EquivalenceCertificate(
                "tiling", subject, REFUTED, obligations,
                detail=(
                    f"chain {chain.terminal.name}: block partition "
                    f"{ranges} does not exactly cover [0, {rows}): {reason}"
                ),
                counterexample=cx,
            )

        # Per-member read classes, re-derived: the leading row axis must
        # either index reads exactly (aligned) or not at all (invariant).
        for node in chain.member_nodes:
            op = node.tensor.op
            row_var = op.axes[0].name
            for read in collect_reads(op.body):
                obligations += 1
                cls = _read_class(read, row_var, rows)
                if cls == "poison":
                    return EquivalenceCertificate(
                        "tiling", subject, REFUTED, obligations,
                        detail=(
                            f"chain {chain.terminal.name}: member "
                            f"{node.name} reads {read.tensor.name} with a "
                            "row-dependent non-aligned index; block slabs "
                            "would read out of their row slice"
                        ),
                        counterexample=_stale_read_counterexample(
                            view, node.tensor, read.tensor
                        ),
                    )
    return EquivalenceCertificate("tiling", subject, PROVED, obligations)


def _pin_row(
    view: ProgramView, tensor: Tensor, coord: Tuple[int, ...]
) -> Optional[Counterexample]:
    """Rebuild a stale-read counterexample at a specific coordinate."""
    frontier = {t.name for t in view.inputs} | {
        node.tensor.name for node in view.nodes if node.tensor is not tensor
    }
    try:
        reference = _ClosureBuilder(view, frontier).closure(tensor)
    except ClosureBudgetExceeded:
        return None
    stale: Dict[int, Tensor] = {}
    stale_read = TensorRead(
        _stale_tensor(stale, tensor),
        tuple(ax.var for ax in reference.axes),
    )
    after = Closure(
        reference.axes, stale_read, _ranges_for(reference.axes, stale_read)
    )
    store = _FeedStore()
    try:
        b = evaluate_closure(reference, coord, store)
        a = evaluate_closure(after, coord, store)
    except RefutationBudgetExceeded:
        return None
    if _close(b, a):
        return None
    entries = sorted(
        (name, idx, value) for (name, idx), value in store.reads.items()
    )
    return Counterexample(
        output=tensor.name,
        coordinates=coord,
        before_value=b,
        after_value=a,
        feeds=tuple(entries[:MAX_FEED_ENTRIES]),
        truncated=len(entries) > MAX_FEED_ENTRIES,
    )


def _read_class(read: TensorRead, row: str, rows: int) -> str:
    """Independent re-derivation of the tiler's ALIGNED/INVARIANT/POISON
    read classification."""
    used: Set[str] = set()
    for i in read.indices:
        used |= free_vars(i)
    if row not in used:
        return "invariant"
    first = read.indices[0] if read.indices else None
    rest: Set[str] = set()
    for i in read.indices[1:]:
        rest |= free_vars(i)
    shape = tuple(getattr(read.tensor, "shape", ()))
    if (
        isinstance(first, Var)
        and first.name == row
        and row not in rest
        and shape
        and shape[0] == rows
    ):
        return "aligned"
    return "poison"


def _certify_matmul(program, opt) -> EquivalenceCertificate:
    """Matmul specialization: re-derive the einsum spec from the Reduce.

    ``optimize_plan`` additionally gates every specialization behind a
    plan-time differential check; this certificate proves the *pattern*
    (full-extent sum contraction of a two-read product) statically, so it
    also covers paper-scale plans the executor cannot run.
    """
    subject = program.name
    obligations = 0
    for group in opt.groups:
        pattern = match_matmul(group.terminal.tensor)
        if pattern is None:
            continue
        obligations += 1
        derived = _derive_einsum(group.terminal.tensor)
        if derived is None:
            return EquivalenceCertificate(
                "matmul-specialize", subject, UNKNOWN, obligations,
                detail=(
                    f"{group.terminal.name}: matched contraction does not "
                    "re-derive to a full-extent sum of a two-read product"
                ),
            )
        if derived != _canonical_formula(
            list(pattern.lhs_spec),
            list(pattern.rhs_spec),
            list(pattern.out_spec),
        ):
            return EquivalenceCertificate(
                "matmul-specialize", subject, UNKNOWN, obligations,
                detail=(
                    f"{group.terminal.name}: pattern formula "
                    f"{pattern.einsum_formula} disagrees with the "
                    f"independently derived contraction"
                ),
            )
    return EquivalenceCertificate(
        "matmul-specialize", subject, PROVED, obligations
    )


def _canonical_formula(
    lhs: Sequence[str], rhs: Sequence[str], out: Sequence[str]
) -> str:
    """Rename spec axis tokens by first appearance so two derivations of
    the same contraction compare equal (tokens are single spec characters
    on the pattern side, TE axis names on the derived side)."""
    mapping: Dict[str, str] = {}
    alphabet = "abcdefghijklmnopqrstuvwxyz"

    def remap(tokens: Sequence[str]) -> str:
        chars = []
        for token in tokens:
            if token not in mapping:
                mapping[token] = alphabet[len(mapping)]
            chars.append(mapping[token])
        return "".join(chars)

    return f"{remap(out)}|{remap(lhs)}|{remap(rhs)}"


def _derive_einsum(tensor: Tensor) -> Optional[str]:
    """Independently lift a Reduce body back to an einsum contraction."""
    op = tensor.op
    body = op.body
    if not isinstance(body, Reduce) or body.kind != "sum":
        return None
    inner = body.body
    if not (
        isinstance(inner, BinOp)
        and inner.op == "mul"
        and isinstance(inner.lhs, TensorRead)
        and isinstance(inner.rhs, TensorRead)
    ):
        return None
    extents = {ax.name: ax.extent for ax in op.axes}
    extents.update({ax.name: ax.extent for ax in body.axes})

    def spec_of(read: TensorRead) -> Optional[List[str]]:
        names = []
        for pos, index in enumerate(read.indices):
            if not isinstance(index, Var) or index.name not in extents:
                return None
            if read.tensor.shape[pos] != extents[index.name]:
                return None  # not a full-extent sweep
            names.append(index.name)
        return names

    lhs = spec_of(inner.lhs)
    rhs = spec_of(inner.rhs)
    if lhs is None or rhs is None:
        return None
    out_names = [ax.name for ax in op.axes]
    used = set(lhs + rhs)
    if not set(out_names) <= used:
        return None  # a spatial axis the reads never touch
    reduce_names = {ax.name for ax in body.axes}
    if used - set(out_names) != reduce_names:
        return None
    return _canonical_formula(lhs, rhs, out_names)


def certify_plan_optimization(
    program, opt
) -> List[EquivalenceCertificate]:
    """Certify one :class:`~repro.runtime.plan_opt.PlanOptimization`.

    Emits one certificate per pass family — hoist, fusion, elision,
    tiling, matmul specialization — including proved zero-obligation
    certificates for families the plan did not exercise, so downstream
    consumers can assert the full set is present.
    """
    return [
        _certify_hoist(program, opt),
        _certify_fusion(program, opt),
        _certify_elision(program, opt),
        _certify_tiling(program, opt),
        _certify_matmul(program, opt),
    ]


# ---- batched lowering -------------------------------------------------------


def certify_batched_lowering(
    program, batch_size: int
) -> EquivalenceCertificate:
    """Lane-invariance of the batched plan's shared precomputed state.

    Batched plans precompute one gather grid / einsum contraction per step
    and drive every lane through it; that is sound iff no index expression
    reads a tensor (data-dependent indexing would differ per lane) and
    contraction formulas are the unbatched specs behind an ellipsis.
    """
    subject = f"{program.name}@batch{batch_size}"
    obligations = 0
    for node in program.nodes:
        body = node.tensor.op.body
        for read in collect_reads(body):
            for position, index in enumerate(read.indices):
                obligations += 1
                inner = collect_reads(index)
                if not inner:
                    continue
                witness = inner[0]
                coord = tuple(0 for _ in witness.indices)
                dtype = getattr(witness.tensor, "dtype", "int32")
                lane0 = _hash_feed("lane0", witness.tensor.name, coord, dtype)
                lane1 = _hash_feed("lane1", witness.tensor.name, coord, dtype)
                cx = Counterexample(
                    output=node.name,
                    coordinates=coord,
                    before_value=lane0,
                    after_value=lane1,
                    feeds=(
                        (witness.tensor.name, coord, lane0),
                        (witness.tensor.name, coord, lane1),
                    ),
                )
                return EquivalenceCertificate(
                    "batched-lowering", subject, REFUTED, obligations,
                    detail=(
                        f"{node.name} reads {read.tensor.name} with a "
                        f"data-dependent index (position {position} reads "
                        f"{witness.tensor.name}); two lanes feeding "
                        "different index values cannot share one "
                        "precomputed gather grid"
                    ),
                    counterexample=cx,
                )
        pattern = match_matmul(node.tensor)
        if pattern is not None:
            obligations += 1
            batched = (
                f"...{pattern.lhs_spec},...{pattern.rhs_spec}"
                f"->...{pattern.out_spec}"
            )
            expected = "...{},...{}->...{}".format(
                pattern.lhs_spec, pattern.rhs_spec, pattern.out_spec
            )
            if batched != expected:
                return EquivalenceCertificate(
                    "batched-lowering", subject, REFUTED, obligations,
                    detail=f"{node.name}: batched formula drift",
                )
    return EquivalenceCertificate(
        "batched-lowering", subject, PROVED, obligations
    )


def _probe_feed_array(tensor: Tensor, lane: Optional[int]):
    """Deterministic feed array for the binding probe.

    ``lane=None`` builds the shared (weight) array; per-lane arrays get a
    lane-salted stream so every lane is distinguishable.
    """
    import numpy as np

    seed = zlib.crc32(
        f"bind|{tensor.name}|{'shared' if lane is None else lane}".encode()
    )
    rng = np.random.default_rng(seed)
    if tensor.dtype == "bool":
        return rng.integers(0, 2, size=tensor.shape).astype(bool)
    if tensor.dtype.startswith("int") or tensor.dtype.startswith("uint"):
        hi = max(2, min(8, min(tensor.shape) if tensor.shape else 8))
        return rng.integers(0, hi, size=tensor.shape).astype(tensor.dtype)
    return rng.standard_normal(tensor.shape).astype(tensor.dtype)


def certify_batched_binding(plan) -> Optional[EquivalenceCertificate]:
    """Probe the batch binding layer with distinguishable lane feeds.

    Binds one batch where every ``input`` placeholder differs per lane and
    every ``weight`` placeholder is the *same array object* across lanes
    (exercising the zero-stride broadcast fast path), then checks each
    bound lane holds exactly that request's feed. Returns ``None`` when
    the probe would exceed :data:`MAX_PROBE_ELEMENTS` (paper scale); the
    static :func:`certify_batched_lowering` obligations still apply there.
    """
    import numpy as np

    program = plan.program
    batch = plan.batch_size
    subject = f"{program.name}@batch{batch}"
    inputs = sorted(program.inputs, key=lambda t: t.name)
    if sum(t.num_elements for t in inputs) * batch > MAX_PROBE_ELEMENTS:
        return None

    shared = {
        id(t): _probe_feed_array(t, None)
        for t in inputs
        if getattr(t, "role", None) == "weight"
    }
    feeds_list = []
    for lane in range(batch):
        feeds = {}
        for t in inputs:
            if id(t) in shared:
                feeds[t] = shared[id(t)]
            else:
                feeds[t] = _probe_feed_array(t, lane)
        feeds_list.append(feeds)

    bound = plan.bind_batch(feeds_list)
    obligations = 0
    for t in inputs:
        if id(t) not in bound:
            continue
        stacked = bound[id(t)]
        for lane in range(batch):
            obligations += 1
            expected = plan._bind_one(t, feeds_list[lane][t])
            got = np.asarray(stacked[lane])
            if np.array_equal(got, np.asarray(expected)):
                continue
            diff = np.argwhere(np.asarray(expected) != got)
            where = tuple(int(x) for x in diff[0]) if len(diff) else ()
            want = float(np.asarray(expected)[where]) if where or expected.ndim == 0 else float(expected)
            have = float(got[where]) if where or got.ndim == 0 else float(got)
            cx = Counterexample(
                output=t.name,
                coordinates=(lane,) + where,
                before_value=want,
                after_value=have,
                feeds=((t.name, where, want),),
            )
            return EquivalenceCertificate(
                "batched-binding", subject, REFUTED, obligations,
                detail=(
                    f"lane {lane} of bound placeholder {t.name} does not "
                    "hold that request's feed (broadcast/stack defect in "
                    "the binding layer)"
                ),
                counterexample=cx,
            )
    return EquivalenceCertificate(
        "batched-binding", subject, PROVED, obligations
    )


# ---- drivers ----------------------------------------------------------------


def certify_plan(plan) -> CertificationReport:
    """Certify one built :class:`~repro.runtime.executor.ExecutionPlan`."""
    report = CertificationReport(subject=plan.program.name)
    if getattr(plan, "optimization", None) is not None:
        report.extend(
            certify_plan_optimization(plan.program, plan.optimization)
        )
    batch = getattr(plan, "batch_size", None)
    if batch:
        report.add(certify_batched_lowering(plan.program, batch))
        probe = certify_batched_binding(plan)
        if probe is not None:
            report.add(probe)
    return report


def gate_certificates(
    certificates: Sequence[EquivalenceCertificate],
    stage: str,
    unknown: str = "warn",
) -> None:
    """Compile-gate contract: refutations always raise; unknowns raise
    only under the ``fail`` policy (``SouffleOptions.certify_unknown``)."""
    refuted = [c for c in certificates if c.refuted]
    if refuted:
        first = refuted[0]
        message = (
            f"equivalence certification refuted after {stage}: "
            f"{first.render()}"
        )
        raise VerificationError(message)
    if unknown == "fail":
        unknowns = [c for c in certificates if c.status == UNKNOWN]
        if unknowns:
            raise VerificationError(
                f"equivalence certification inconclusive after {stage}: "
                f"{unknowns[0].render()}"
            )


def certify_model(
    model,
    level: int = 4,
    batch_size: Optional[int] = None,
    cache=None,
    max_workers: Optional[int] = 1,
    tile: bool = True,
) -> CertificationReport:
    """The ``repro certify`` backbone: compile with certification gates on
    and statically certify the optimized plan + batched lowering.

    Everything here works at paper scale — the TE certificates come from
    the compile's front half, the plan certificates from the static
    planner (no evaluation grid is materialised).
    """
    from repro.core.config import SouffleOptions
    from repro.core.souffle import SouffleCompiler
    from repro.runtime.plan_opt import plan_optimization

    compiler = SouffleCompiler(
        options=SouffleOptions.from_level(level, certify=True),
        cache=cache,
        max_workers=max_workers,
    )
    module = compiler.compile(model)
    report = CertificationReport(subject=module.name)
    report.extend(module.certificates)
    program = module.program
    opt = plan_optimization(program, batch_size=batch_size, tile=tile)
    report.extend(certify_plan_optimization(program, opt))
    report.add(
        certify_batched_lowering(program, batch_size if batch_size else 8)
    )
    return report


# ---- counterexample replay --------------------------------------------------


def replay_certificate(
    certificate: EquivalenceCertificate,
    before: Optional[ProgramLike] = None,
    after: Optional[ProgramLike] = None,
    program=None,
    optimization=None,
    plan=None,
) -> Tuple[float, float]:
    """Recompute a refuted certificate's diverging values from its stored
    counterexample feed.

    Pass the same artifacts the certifier saw (``before``/``after`` views
    for TE transforms, ``program`` + ``optimization`` for plan passes,
    ``plan`` for batched binding); returns ``(before_value, after_value)``
    which must reproduce the stored pair — the test suite's definition of
    "replayable".
    """
    cx = certificate.counterexample
    if cx is None:
        raise VerificationError(
            f"certificate for {certificate.subject} carries no counterexample"
        )
    transform = certificate.transform

    if transform in ("horizontal", "vertical"):
        closures = _te_closures_for(before, after, cx.output)
        return _replay_closures(closures, cx)

    if transform == "hoist":
        view = as_view(program)
        node = next(
            n for n in optimization.hoisted_nodes if n.name == cx.output
        )
        closure = _hoist_closure(view, node.tensor)
        bad = _first_nonweight_input(program, optimization, node)
        base = evaluate_closure(
            closure, cx.coordinates, _FeedStore(overrides=cx.feed_map())
        )
        shifted = evaluate_closure(
            closure, cx.coordinates,
            _FeedStore(perturb={bad.name: 1.0}),
        )
        return base, shifted

    if transform == "fusion":
        view = as_view(program)
        group = next(
            g
            for g in optimization.groups
            if len(g.members) > 1 and g.terminal.name == cx.output
        )
        reference = _ClosureBuilder(
            view, _group_frontier(group)
        ).closure(group.terminal.tensor)
        sequential = _sequential_group_closure(group, group.members)
        return _replay_closures((reference, sequential), cx)

    if transform == "elision":
        view = as_view(program)
        reader = next(
            n.tensor for n in view.nodes if n.tensor.name == cx.output
        )
        position, operand = next(
            (pos, op_t)
            for pos, op_t in sorted(optimization.elided.items())
            if any(
                c.tensor.name == cx.output
                for c in program.consumers(op_t)
            )
        )
        writer = next(
            g for g in optimization.groups if g.position == position
        ).terminal.tensor
        pair = _elision_closures(view, reader, operand, writer)
        return _replay_closures(pair, cx)

    if transform == "tiling":
        view = as_view(program)
        tensor = next(
            n.tensor for n in view.nodes if n.tensor.name == cx.output
        )
        frontier = {t.name for t in view.inputs} | {
            n.tensor.name for n in view.nodes if n.tensor is not tensor
        }
        reference = _ClosureBuilder(view, frontier).closure(tensor)
        stale: Dict[int, Tensor] = {}
        stale_read = TensorRead(
            _stale_tensor(stale, tensor),
            tuple(ax.var for ax in reference.axes),
        )
        after_closure = Closure(
            reference.axes, stale_read,
            _ranges_for(reference.axes, stale_read),
        )
        return _replay_closures((reference, after_closure), cx)

    if transform == "batched-binding":
        import numpy as np

        tensor = next(
            t for t in plan.program.inputs if t.name == cx.output
        )
        lane = cx.coordinates[0]
        where = cx.coordinates[1:]
        inputs = sorted(plan.program.inputs, key=lambda t: t.name)
        shared = {
            id(t): _probe_feed_array(t, None)
            for t in inputs
            if getattr(t, "role", None) == "weight"
        }
        feeds_list = [
            {
                t: shared[id(t)] if id(t) in shared
                else _probe_feed_array(t, b)
                for t in inputs
            }
            for b in range(plan.batch_size)
        ]
        bound = plan.bind_batch(feeds_list)
        expected = np.asarray(
            plan._bind_one(tensor, feeds_list[lane][tensor])
        )[where]
        got = np.asarray(bound[id(tensor)][lane])[where]
        return float(expected), float(got)

    if transform == "batched-lowering":
        name, coord, _ = cx.feeds[0]
        dtype = "int32"
        return (
            _hash_feed("lane0", name, coord, dtype),
            _hash_feed("lane1", name, coord, dtype),
        )

    raise VerificationError(
        f"cannot replay certificates for transform {transform!r}"
    )


def _replay_closures(
    closures: Tuple[Closure, Closure], cx: Counterexample
) -> Tuple[float, float]:
    before_cl, after_cl = closures
    store = _FeedStore(overrides=cx.feed_map())
    b = evaluate_closure(before_cl, cx.coordinates, store)
    a = evaluate_closure(after_cl, cx.coordinates, store)
    return b, a


def _te_closures_for(
    before: ProgramLike, after: ProgramLike, name: str
) -> Tuple[Closure, Closure]:
    """Rebuild the failing pair's closures with the same frontier the
    certifier reached when it refuted ``name``."""
    before_view, after_view = as_view(before), as_view(after)
    prover = _PairProver(before_view, after_view)
    for pair_name in _te_pairs(before_view, after_view):
        if pair_name == name:
            return prover.closures(name)
        proved, _ = prover.prove(pair_name)
        if proved:
            prover.frontier.add(pair_name)
    raise VerificationError(f"tensor {name!r} is not a matched pair")


def _elision_closures(
    view: ProgramView, reader: Tensor, operand: Tensor, writer: Tensor
) -> Tuple[Closure, Closure]:
    frontier = {t.name for t in view.inputs} | {
        node.tensor.name for node in view.nodes if node.tensor is not reader
    }
    reference = _ClosureBuilder(view, frontier).closure(reader)
    writer_closure = _ClosureBuilder(
        view, (frontier - {writer.name}) | {operand.name}
    ).closure(writer)
    suffix = itertools.count()

    def visit(read: TensorRead) -> Optional[Expr]:
        if read.tensor is not operand:
            return None
        inner = rename_reduce_axes(writer_closure.expr, f"$e{next(suffix)}")
        mapping = {
            ax.name: idx
            for ax, idx in zip(writer_closure.axes, read.indices)
        }
        return substitute_vars(inner, mapping)

    overwritten = replace_tensor_reads(reference.expr, visit)
    return reference, Closure(
        reference.axes, overwritten, _ranges_for(reference.axes, overwritten)
    )


def _first_nonweight_input(program, optimization, node):
    allowed = _weight_ids(program) | {
        id(n.tensor) for n in optimization.hoisted_nodes
    }
    for read in node.inputs:
        if id(read) not in allowed:
            return read
    raise VerificationError(
        f"hoisted node {node.name} has no non-weight input to replay"
    )
