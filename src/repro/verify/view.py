"""A lenient view of a TE program for verification.

:class:`~repro.graph.te_program.TEProgram` validates eagerly in its
constructor (use-before-def, dangling reads, duplicate producers all raise
:class:`~repro.errors.AnalysisError`), which is the right behaviour for the
compiler pipeline but useless for a *verifier*: the whole point is to
accept a possibly-broken program and report every defect as a structured
diagnostic. :class:`ProgramView` is the unchecked counterpart the passes
operate on — the same ``inputs`` / ``nodes`` / ``outputs`` triple with the
validation deferred to the well-formedness pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.graph.te_program import TENode, TEProgram
from repro.te.tensor import Tensor


@dataclass
class ProgramView:
    """An unchecked ``inputs`` / ``nodes`` / ``outputs`` program triple."""

    name: str
    inputs: List[Tensor] = field(default_factory=list)
    nodes: List[TENode] = field(default_factory=list)
    outputs: List[Tensor] = field(default_factory=list)

    @classmethod
    def from_program(cls, program: TEProgram) -> "ProgramView":
        return cls(
            name=program.name,
            inputs=list(program.inputs),
            nodes=list(program.nodes),
            outputs=list(program.outputs),
        )

    @classmethod
    def from_parts(
        cls,
        inputs: Sequence[Tensor],
        tensors: Sequence[Tensor],
        outputs: Sequence[Tensor],
        name: str = "<view>",
    ) -> "ProgramView":
        """Build a view straight from tensors (mutation-test helper).

        ``tensors`` are the compute tensors in intended execution order;
        each is wrapped in a :class:`TENode` without any validation.
        """
        nodes = [
            TENode(index=i, tensor=t, op_name=t.name, op_type="compute")
            for i, t in enumerate(tensors)
        ]
        return cls(name=name, inputs=list(inputs), nodes=nodes,
                   outputs=list(outputs))

    def is_output(self, tensor: Tensor) -> bool:
        return any(tensor is out for out in self.outputs)

    def __len__(self) -> int:
        return len(self.nodes)


ProgramLike = Union[TEProgram, ProgramView]


def as_view(program: ProgramLike) -> ProgramView:
    """Coerce a checked program or a raw view into a :class:`ProgramView`."""
    if isinstance(program, ProgramView):
        return program
    return ProgramView.from_program(program)
