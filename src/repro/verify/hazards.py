"""Arena-hazard pass: a static race detector over the memory plan.

The execution engine serves every intermediate from one preallocated arena
packed by :class:`~repro.runtime.memory_planner.MemoryPlan`. This pass
re-derives, per step, the byte-intervals read and written on that arena and
reports:

* intermediates with no arena assignment (the step would have nowhere to
  write);
* WAR hazards — a step whose output bytes overlap one of its own operand
  buffers (the executor writes through ``out=`` while reading the operand);
* WAW / cross-step aliasing — two tensors whose live ranges conflict under
  the plan's ``exclusive_writes`` semantics sharing bytes;
* liveness drift — a plan whose recorded live ranges disagree with a fresh
  :func:`repro.analysis.liveness.live_ranges` computation (a stale plan).

It supersedes the executor's former ad-hoc aliasing assertions: the
:class:`~repro.runtime.executor.ExecutionPlan` now runs this pass at plan
time and raises :class:`~repro.errors.PlanningError` from its errors.

:func:`check_schedule_cover` extends the pass to *concurrent* execution:
given a task-graph dependency table (successor lists over step positions),
it certifies that every hazardous step pair the memory plan knows about —
RAW through a produced tensor, WAR/WAW through overlapping arena bytes —
is ordered by a dependency path. The graph executor runs it at plan time,
so a dependency table that could let two racing steps run concurrently is
rejected before a single request executes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.liveness import LiveRange
from repro.runtime.memory_planner import MemoryPlan, _conflicts
from repro.te.tensor import Tensor
from repro.verify.diagnostics import (
    Diagnostic,
    Location,
    PASS_ARENA_HAZARD,
    error,
    warning,
)
from repro.verify.view import ProgramLike, as_view

Sizer = Callable[[Tensor], int]


def _recompute_live(view) -> Dict[int, LiveRange]:
    """Lenient liveness recomputation straight off the view (no validation)."""
    end = len(view.nodes)
    result: Dict[int, LiveRange] = {}
    # A tiled chain's blocks are several nodes writing one tensor; the
    # tensor is defined at the *first* writer (earliest block).
    producer_index: Dict[int, int] = {}
    for n in view.nodes:
        producer_index.setdefault(id(n.tensor), n.index)
    last_use: Dict[int, int] = {}
    for node in view.nodes:
        for operand in node.inputs:
            key = id(operand)
            last_use[key] = max(last_use.get(key, node.index), node.index)
    for tensor in view.inputs + [n.tensor for n in view.nodes]:
        key = id(tensor)
        def_index = producer_index.get(key, -1)
        use = last_use.get(key, def_index)
        if view.is_output(tensor):
            use = end
        result[key] = LiveRange(tensor, def_index, use)
    return result


def check_arena(
    program: ProgramLike,
    plan: MemoryPlan,
    sizer: Optional[Sizer] = None,
    require_exclusive_writes: bool = True,
    inplace: Optional[Iterable[Tuple[int, int]]] = None,
) -> List[Diagnostic]:
    """Run the arena-hazard pass for one program + memory plan.

    ``require_exclusive_writes`` reflects the *consumer's* semantics: the
    numpy executor writes a step's output while reading its operands, so
    operand/result overlap is an error even if the plan itself was packed
    with relaxed (GPU in-place) rules; pass ``False`` to model a backend
    that tolerates in-place reuse, which downgrades those to warnings.

    ``inplace`` is an allowlist of ``(writer tensor id, operand tensor id)``
    pairs for which operand/result sharing is *deliberate* — the plan
    optimizer's in-place elision, where the step fully evaluates its value
    into temporaries before the final arena write and the operand dies at
    that step. Allowlisted pairs skip the WAR check and use relaxed
    (boundary-exclusive) overlap in the pairwise check; all other hazards
    still fire.
    """
    view = as_view(program)
    diags: List[Diagnostic] = []
    allow = frozenset(inplace) if inplace else frozenset()

    byte_range: Dict[int, Tuple[int, int]] = {}
    assignment_of = {id(t): a for t, a in plan.assignments.items()}
    for tensor, a in plan.assignments.items():
        nbytes = sizer(tensor) if sizer is not None else a.nbytes
        byte_range[id(tensor)] = (a.offset, a.offset + nbytes)

    fresh = _recompute_live(view)

    # ---- coverage + liveness drift --------------------------------------
    for node in view.nodes:
        tensor = node.tensor
        if id(tensor) not in assignment_of:
            if not view.is_output(tensor):
                diags.append(error(
                    PASS_ARENA_HAZARD,
                    Location("step", node.name, f"step {node.index}"),
                    "intermediate has no arena assignment",
                    "re-plan memory for this program before executing",
                ))
            continue
        if view.is_output(tensor):
            diags.append(warning(
                PASS_ARENA_HAZARD, Location("step", node.name),
                "program output occupies arena bytes (outputs live in "
                "caller-owned buffers)",
                "exclude outputs from the memory plan",
            ))

    for tensor, a in plan.assignments.items():
        live = fresh.get(id(tensor))
        if live is None:
            diags.append(warning(
                PASS_ARENA_HAZARD, Location("tensor", tensor.name),
                "arena assignment for a tensor that is not part of the "
                "program",
                "re-plan memory for this program",
            ))
            continue
        if (live.def_index != a.live.def_index
                or live.last_use != a.live.last_use):
            diags.append(error(
                PASS_ARENA_HAZARD, Location("tensor", tensor.name),
                f"plan liveness [{a.live.def_index}, {a.live.last_use}] is "
                f"stale: the program's live range is "
                f"[{live.def_index}, {live.last_use}]",
                "the plan was computed for a different program revision; "
                "re-run the memory planner",
            ))

    # ---- step-level WAR: output bytes vs operand bytes ------------------
    for node in view.nodes:
        out_range = byte_range.get(id(node.tensor))
        if out_range is None:
            continue
        for operand in node.inputs:
            in_range = byte_range.get(id(operand))
            if in_range is None or operand is node.tensor:
                continue
            if (id(node.tensor), id(operand)) in allow:
                continue
            if out_range[0] < in_range[1] and in_range[0] < out_range[1]:
                loc = Location("step", node.name, f"step {node.index}")
                message = (
                    f"WAR hazard: step writes {node.name} at bytes "
                    f"[{out_range[0]}, {out_range[1]}) while reading "
                    f"operand {operand.name} at [{in_range[0]}, "
                    f"{in_range[1]})"
                )
                if require_exclusive_writes:
                    diags.append(error(
                        PASS_ARENA_HAZARD, loc,
                        message + "; in-place execution would corrupt "
                        "results",
                        "pack the plan with exclusive_writes=True",
                    ))
                else:
                    diags.append(warning(
                        PASS_ARENA_HAZARD, loc,
                        message + " (legal only for backends with in-place "
                        "semantics)",
                    ))

    # ---- pairwise aliasing under the plan's own conflict rules ----------
    items = list(plan.assignments.items())
    for i, (tensor_a, a) in enumerate(items):
        ra = byte_range[id(tensor_a)]
        live_a = fresh.get(id(tensor_a), a.live)
        for tensor_b, b in items[i + 1:]:
            rb = byte_range[id(tensor_b)]
            if not (ra[0] < rb[1] and rb[0] < ra[1]):
                continue
            live_b = fresh.get(id(tensor_b), b.live)
            if ((id(tensor_a), id(tensor_b)) in allow
                    or (id(tensor_b), id(tensor_a)) in allow):
                conflict = live_a.overlaps(live_b)
            else:
                conflict = _conflicts(live_a, live_b, plan.exclusive_writes
                                      or require_exclusive_writes)
            if conflict:
                first, second = (
                    (tensor_a, tensor_b)
                    if live_a.def_index <= live_b.def_index
                    else (tensor_b, tensor_a)
                )
                diags.append(error(
                    PASS_ARENA_HAZARD,
                    Location("tensor", second.name),
                    f"WAW/aliasing hazard: {second.name} shares bytes with "
                    f"{first.name} while both are live "
                    f"({tensor_a.name} [{ra[0]}, {ra[1]}) vs "
                    f"{tensor_b.name} [{rb[0]}, {rb[1]}))",
                    "their live ranges conflict; give them disjoint "
                    "arena intervals",
                ))

    diags.extend(_check_scratch(plan))
    return diags


def _check_scratch(plan: MemoryPlan) -> List[Diagnostic]:
    """Validate tiled-chain scratch layouts (see ``runtime.tiling``).

    Every chain's block runs carve its intermediates from one per-worker
    scratch buffer of ``plan.scratch_bytes``; two intermediates of the same
    chain are live simultaneously within a block run, so any overlap — or
    a block reaching outside the buffer — would corrupt results exactly
    like an arena aliasing bug.
    """
    diags: List[Diagnostic] = []
    total = getattr(plan, "scratch_bytes", 0)
    chains = getattr(plan, "scratch_chains", None) or {}
    for chain_id, entries in chains.items():
        spans: List[Tuple[int, int, str]] = []
        for name, offset, nbytes in entries:
            if offset < 0 or offset + nbytes > total:
                diags.append(error(
                    PASS_ARENA_HAZARD, Location("scratch", name),
                    f"scratch block for {name} [{offset}, "
                    f"{offset + nbytes}) exceeds the chain-{chain_id} "
                    f"scratch buffer of {total} bytes",
                    "re-run the tiling pass; its layout is corrupt",
                ))
                continue
            spans.append((offset, offset + nbytes, name))
        spans.sort()
        for (_, a_end, a_name), (b_off, b_end, b_name) in zip(
            spans, spans[1:]
        ):
            if b_off < a_end:
                diags.append(error(
                    PASS_ARENA_HAZARD, Location("scratch", b_name),
                    f"scratch blocks alias: {b_name} overlaps {a_name} "
                    f"inside chain {chain_id} "
                    f"(both live for the whole block run)",
                    "give chain intermediates disjoint scratch offsets",
                ))
    return diags


def hazard_pairs(
    program: ProgramLike,
    plan: MemoryPlan,
    sizer: Optional[Sizer] = None,
) -> List[Tuple[int, int, str]]:
    """Every step pair a concurrent schedule must order, with its cause.

    Returns ``(earlier position, later position, kind)`` triples where
    ``kind`` is ``"raw"`` (the later step reads the earlier step's output
    tensor) or ``"bytes"`` (the two steps touch overlapping arena byte
    ranges through different tensors — the WAR/WAW reuse pairs serial
    replay orders implicitly). Positions are the view's node indices, i.e.
    serial-replay order. Read-read sharing is not a hazard.
    """
    view = as_view(program)
    # A tensor may have several writers: a tiled chain's blocks each write a
    # disjoint row slice of the chain terminal. Writers of the *same* tensor
    # never pair with each other (disjoint bytes by construction — the
    # scratch check validates the layout), but every reader must wait for
    # *all* of them.
    producer: Dict[int, List[int]] = {}
    readers: Dict[int, List[int]] = {}
    for node in view.nodes:
        producer.setdefault(id(node.tensor), []).append(node.index)
        for operand in node.inputs:
            readers.setdefault(id(operand), []).append(node.index)

    pairs: Dict[Tuple[int, int], str] = {}

    def require(a: int, b: int, kind: str) -> None:
        if a == b:
            return
        pair = (a, b) if a < b else (b, a)
        # RAW is the stronger (data) requirement; keep it over "bytes".
        if pairs.get(pair) != "raw":
            pairs[pair] = kind

    for key, writers in producer.items():
        for i in writers:
            for j in readers.get(key, ()):
                if j != i:
                    require(i, j, "raw")

    intervals = []
    for tensor, a in plan.assignments.items():
        nbytes = sizer(tensor) if sizer is not None else a.nbytes
        intervals.append((a.offset, a.offset + nbytes, id(tensor)))
    intervals.sort()
    active: List[Tuple[int, int]] = []  # (end, tensor id)
    for start, end, t_key in intervals:
        active = [item for item in active if item[0] > start]
        wts = producer.get(t_key, ())
        for _, u_key in active:
            wus = producer.get(u_key, ())
            for wt in wts:
                for wu in wus:
                    require(wt, wu, "bytes")
                for r in readers.get(u_key, ()):
                    require(wt, r, "bytes")
            for wu in wus:
                for r in readers.get(t_key, ()):
                    require(wu, r, "bytes")
        active.append((end, t_key))

    return [(i, j, kind) for (i, j), kind in sorted(pairs.items())]


def check_schedule_cover(
    program: ProgramLike,
    plan: MemoryPlan,
    successors: List[Tuple[int, ...]],
    sizer: Optional[Sizer] = None,
) -> List[Diagnostic]:
    """Certify a dependency table orders every hazardous step pair.

    ``successors`` maps each step position to the positions that must wait
    for it (the task graph's edge lists; edges must point forward in
    position order). For every :func:`hazard_pairs` requirement ``(i, j)``
    the pass demands a dependency *path* from ``i`` to ``j`` — reachability
    is computed with descendant bitmasks in one reverse sweep, so the check
    stays cheap even at paper scale. An uncovered pair means the executor
    could run both steps concurrently (or out of order) and corrupt the
    arena; each one is reported as an error diagnostic.
    """
    view = as_view(program)
    diags: List[Diagnostic] = []
    n = len(view.nodes)
    if len(successors) != n:
        diags.append(error(
            PASS_ARENA_HAZARD, Location("schedule", "dependency-table"),
            f"dependency table has {len(successors)} entries for a "
            f"{n}-step program",
            "rebuild the task graph for this plan",
        ))
        return diags

    for i, out in enumerate(successors):
        for j in out:
            if j <= i:
                diags.append(error(
                    PASS_ARENA_HAZARD,
                    Location("schedule", view.nodes[i].name, f"step {i}"),
                    f"backward successor edge {i} -> {j}; edges must "
                    "point forward in serial-replay order",
                    "task-graph positions must form a topological order",
                ))

    # Descendant bitmasks: one reverse sweep suffices because (checked
    # above) every edge points forward in position order.
    desc = [0] * n
    for i in range(n - 1, -1, -1):
        mask = 1 << i
        for j in successors[i]:
            if i < j < n:
                mask |= desc[j]
        desc[i] = mask

    kind_names = {
        "raw": "RAW (reads its output)",
        "bytes": "WAR/WAW (overlapping arena bytes)",
    }
    for i, j, kind in hazard_pairs(view, plan, sizer):
        if not (desc[i] >> j) & 1:
            diags.append(error(
                PASS_ARENA_HAZARD,
                Location("schedule", view.nodes[j].name, f"step {j}"),
                f"unordered hazard: steps {i} ({view.nodes[i].name}) and "
                f"{j} ({view.nodes[j].name}) form a "
                f"{kind_names[kind]} pair but no dependency path orders "
                "them; a concurrent schedule may race",
                "add a successor edge (or path) from the earlier step to "
                "the later one",
            ))
    return diags
