"""repro — a from-scratch reproduction of Souffle (ASPLOS 2024).

"Optimizing Deep Learning Inference via Global Analysis and Tensor
Expressions": a top-down DNN inference compiler that lowers whole models to
tensor expressions, analyses the global tensor dependency graph, partitions
it into resource-feasible subprograms, applies semantic-preserving
horizontal/vertical TE transformations, and emits merged kernels with
grid-synchronisation, instruction pipelining and on-chip tensor reuse.

Quick start::

    from repro import compile_model, get_model, profile_module

    module = compile_model(get_model("bert"), level=4)
    report = profile_module(module)
    print(report.render())
"""

from repro.cache import CompileCache, ModuleCache, ScheduleCache
from repro.core.config import SouffleOptions
from repro.core.souffle import SouffleCompiler, compile_model
from repro.gpu.device import GPUSpec, a100_40gb, v100_16gb
from repro.graph.builder import GraphBuilder
from repro.graph.lowering import lower_graph
from repro.models import get_model
from repro.runtime.executor import ExecutionPlan
from repro.runtime.module import CompiledModule
from repro.runtime.profiler import ProfileReport, profile_module
from repro.runtime.session import InferenceSession

__version__ = "0.1.0"

__all__ = [
    "CompileCache",
    "CompiledModule",
    "ExecutionPlan",
    "GPUSpec",
    "InferenceSession",
    "GraphBuilder",
    "ModuleCache",
    "ProfileReport",
    "ScheduleCache",
    "SouffleCompiler",
    "SouffleOptions",
    "a100_40gb",
    "compile_model",
    "get_model",
    "lower_graph",
    "profile_module",
    "v100_16gb",
    "__version__",
]
