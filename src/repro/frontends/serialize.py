"""Model (de)serialisation: a portable ONNX-like JSON graph format.

The paper's Souffle "is compatible with TensorFlow and ONNX models"; the
frontend's job is only to deliver an operator graph. This module provides
that interchange point for this reproduction: any :class:`repro.graph.Graph`
round-trips through a self-contained JSON document, so models can be
exported, versioned, inspected or produced by external converters.

Format (version 1):

.. code-block:: json

    {
      "format": "repro-graph",
      "version": 1,
      "name": "bert",
      "nodes": [
        {"name": "x", "op": "input", "shape": [128, 768],
         "dtype": "float16", "inputs": [], "attrs": {}},
        ...
      ],
      "outputs": ["l11_ln2"]
    }

Attribute values are restricted to JSON-representable scalars and (nested)
lists; tuples are normalised to lists on save and restored to tuples on
load (operator attrs like ``perm`` and ``pad_width`` are tuples in-memory).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.errors import LoweringError
from repro.graph.graph import Graph
from repro.graph.op import OpNode

FORMAT_NAME = "repro-graph"
FORMAT_VERSION = 1


def _attr_to_json(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_attr_to_json(v) for v in value]
    if isinstance(value, list):
        return [_attr_to_json(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise LoweringError(
        f"attribute value {value!r} of type {type(value).__name__} is not "
        "serialisable"
    )


def _attr_from_json(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_attr_from_json(v) for v in value)
    return value


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Serialise a graph to a JSON-compatible dictionary."""
    nodes: List[Dict[str, Any]] = []
    for node in graph.nodes:
        nodes.append(
            {
                "name": node.name,
                "op": node.op_type,
                "shape": list(node.shape),
                "dtype": node.dtype,
                "inputs": [parent.name for parent in node.inputs],
                "attrs": {k: _attr_to_json(v) for k, v in node.attrs.items()},
            }
        )
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": nodes,
        "outputs": [node.name for node in graph.outputs],
    }


def graph_from_dict(document: Dict[str, Any]) -> Graph:
    """Reconstruct a graph from its dictionary form."""
    if document.get("format") != FORMAT_NAME:
        raise LoweringError(
            f"not a {FORMAT_NAME} document: format={document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise LoweringError(
            f"unsupported {FORMAT_NAME} version {document.get('version')!r}"
        )

    by_name: Dict[str, OpNode] = {}
    for spec in document["nodes"]:
        name = spec["name"]
        if name in by_name:
            raise LoweringError(f"duplicate node name {name!r}")
        try:
            inputs = [by_name[parent] for parent in spec["inputs"]]
        except KeyError as missing:
            raise LoweringError(
                f"node {name!r} references unknown input {missing}"
            ) from None
        by_name[name] = OpNode(
            op_type=spec["op"],
            inputs=inputs,
            shape=tuple(spec["shape"]),
            dtype=spec.get("dtype", "float32"),
            attrs={k: _attr_from_json(v) for k, v in spec.get("attrs", {}).items()},
            name=name,
        )

    try:
        outputs = [by_name[name] for name in document["outputs"]]
    except KeyError as missing:
        raise LoweringError(f"unknown output node {missing}") from None
    return Graph(outputs, name=document.get("name", "model"))


def save_graph(graph: Graph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle, indent=1)


def load_graph(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path) as handle:
        return graph_from_dict(json.load(handle))


def dumps(graph: Graph) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph))


def loads(text: str) -> Graph:
    """Deserialise a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
