"""Model frontends: graph interchange for external model producers."""

from repro.frontends.serialize import (
    dumps,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads,
    save_graph,
)

__all__ = [
    "dumps",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "loads",
    "save_graph",
]
