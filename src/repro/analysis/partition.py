"""Resource-aware TE program partitioning (paper Sec. 5.4, Algorithm 1 l.2-9).

Souffle generates the largest kernels the grid-synchronisation constraint
allows: every block of a kernel containing a ``grid.sync()`` must be
co-resident on the device (one wave). The partitioner walks the TE program
in BFS/topological order, obtains each compute-intensive TE's schedule from
the schedule oracle (Ansor), and starts a new subprogram whenever adding a
TE would violate ``max_grid * max_occ < C`` or the max-blocks-per-wave bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.characterize import (
    COMPUTE_INTENSIVE,
    TECharacter,
    characterize_program,
)
from repro.errors import AnalysisError
from repro.gpu.device import GPUSpec
from repro.graph.te_program import TENode, TEProgram
from repro.schedule.ansor import AnsorScheduler
from repro.schedule.schedule import TESchedule


@dataclass
class Subprogram:
    """A contiguous group of TEs mapped to one GPU kernel."""

    index: int
    nodes: List[TENode] = field(default_factory=list)
    ci_nodes: List[TENode] = field(default_factory=list)
    sync_feasible: bool = True  # all blocks co-resident -> grid.sync legal

    @property
    def names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def __repr__(self) -> str:
        return (
            f"<Subprogram {self.index}: {len(self.nodes)} TEs, "
            f"{len(self.ci_nodes)} compute-intensive, "
            f"sync={'yes' if self.sync_feasible else 'no'}>"
        )


@dataclass
class PartitionResult:
    """Subprograms plus the analysis artifacts partitioning produced."""

    subprograms: List[Subprogram]
    schedules: Dict[TENode, TESchedule]
    characters: Dict[TENode, TECharacter]

    @property
    def num_subprograms(self) -> int:
        return len(self.subprograms)

    def subprogram_of(self, node: TENode) -> Subprogram:
        for sub in self.subprograms:
            if node in sub.nodes:
                return sub
        raise AnalysisError(f"TE {node.name} not assigned to any subprogram")


class Partitioner:
    """Greedy BFS partitioner with the paper's analytical resource model."""

    def __init__(self, device: GPUSpec, scheduler: Optional[AnsorScheduler] = None,
                 max_tes_per_subprogram: int = 50000) -> None:
        self.device = device
        self.scheduler = scheduler or AnsorScheduler(device)
        # Safety valve: a subprogram is one kernel; merging unboundedly many
        # TEs into one function stops paying off and blows up codegen. The
        # paper's kernels hold tens of TEs (e.g. 24 kernels for BERT).
        self.max_tes_per_subprogram = max_tes_per_subprogram

    def partition(self, program: TEProgram,
                  characters: Optional[Dict[TENode, TECharacter]] = None
                  ) -> PartitionResult:
        """Split ``program`` into subprograms satisfying the sync constraint."""
        chars = characters or characterize_program(program)
        schedules: Dict[TENode, TESchedule] = {}
        subprograms: List[Subprogram] = []

        current = Subprogram(0)
        for node in program:  # program order is a BFS-compatible topological order
            is_ci = chars[node].kind == COMPUTE_INTENSIVE
            if is_ci:
                sched = self.scheduler.schedule(node)
                schedules[node] = sched
                if current.ci_nodes and not self._fits(
                    [schedules[n] for n in current.ci_nodes] + [sched]
                ):
                    subprograms.append(current)
                    current = Subprogram(len(subprograms))
            elif len(current.nodes) >= self.max_tes_per_subprogram:
                subprograms.append(current)
                current = Subprogram(len(subprograms))
            current.nodes.append(node)
            if is_ci:
                current.ci_nodes.append(node)
                current.sync_feasible = self._fits(
                    [schedules[n] for n in current.ci_nodes]
                )
        if current.nodes:
            subprograms.append(current)
        return PartitionResult(subprograms, schedules, chars)

    # ---- the analytical model (Sec. 5.4 "Partitioning algorithm") ----------

    def _fits(self, schedules: Sequence[TESchedule]) -> bool:
        """Resource feasibility of co-scheduling these compute-intensive TEs
        in one merged kernel.

        The merged function declares each TE's staging buffers (Fig. 2's
        accumulating ``shared SI0[..], SW0[..], ... SI2[..], SW2[..]``), so
        the per-block occupancy is the *sum* of the TEs' shared-memory
        footprints. The paper's constraint ``max_grid * max_occ < C`` is then
        checked against the device-wide capacity, together with the
        max-blocks-per-wave bound required for grid synchronisation.
        """
        if not schedules:
            return True
        max_grid = max(s.grid_blocks for s in schedules)
        occupancy = sum(s.shared_mem_per_block for s in schedules)
        if occupancy > self.device.shared_mem_per_sm:
            return False
        if max_grid * occupancy >= self.device.total_shared_mem:
            return False
        threads = max(s.threads_per_block for s in schedules)
        regs = max(s.regs_per_thread for s in schedules)
        wave_limit = self.device.max_blocks_per_wave(threads, occupancy, regs)
        return max_grid <= wave_limit
