"""Identifying data-reuse opportunities (paper Sec. 5.1).

Traverses the TE tensor-dependency graph, gathers tensors accessed by more
than one TE and records the sharing set ``s(t_i) = {op_j, ..., op_k}``.

Two flavours, matching the paper:

* **spatial reuse** — a tensor consumed by TEs with *no* data dependence
  between them (e.g. BERT's QKV GEMMs sharing the input activations); guides
  horizontal transformation (Sec. 6.1);
* **temporal reuse** — a tensor used more than once by *dependent* TEs
  (e.g. the output of arithmetic operator A1 feeding both R1 and A2 in
  Fig. 1, or LSTM weights reused every time step); guides the tensor-reuse
  optimisation (Sec. 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.dependence import independent, reachability_masks
from repro.graph.te_program import TENode, TEProgram
from repro.te.tensor import Tensor


@dataclass(frozen=True)
class ReuseOpportunity:
    """A tensor shared by multiple TEs."""

    tensor: Tensor
    consumers: Tuple[TENode, ...]
    kind: str  # "spatial" | "temporal"

    def __repr__(self) -> str:
        names = ", ".join(n.name for n in self.consumers)
        return f"<{self.kind} reuse of {self.tensor.name} by [{names}]>"


@dataclass
class ReuseAnalysis:
    """Result of the reuse pass: the SR and TR sets of Algorithm 1."""

    spatial: List[ReuseOpportunity] = field(default_factory=list)
    temporal: List[ReuseOpportunity] = field(default_factory=list)

    def sharing_set(self) -> Dict[str, List[str]]:
        """``{tensor name: [consumer TE names]}`` over both kinds."""
        out: Dict[str, List[str]] = {}
        for opp in self.spatial + self.temporal:
            out[opp.tensor.name] = [n.name for n in opp.consumers]
        return out

    def temporal_tensors(self) -> List[Tensor]:
        return [opp.tensor for opp in self.temporal]

    def spatial_tensors(self) -> List[Tensor]:
        return [opp.tensor for opp in self.spatial]


def find_reuse(program: TEProgram) -> ReuseAnalysis:
    """Classify every multiply-consumed tensor as spatial or temporal reuse.

    A shared tensor whose consumers are pairwise independent is a spatial
    reuse opportunity; if any pair of consumers is dependent the tensor is a
    temporal reuse opportunity (its value stays live across dependent TEs and
    is worth caching on-chip).
    """
    masks = reachability_masks(program)
    analysis = ReuseAnalysis()
    for tensor in program.tensors:
        consumers = program.consumers(tensor)
        if len(consumers) < 2:
            continue
        pairwise_independent = True
        for i, a in enumerate(consumers):
            for b in consumers[i + 1 :]:
                if not independent(masks, a, b):
                    pairwise_independent = False
                    break
            if not pairwise_independent:
                break
        kind = "spatial" if pairwise_independent else "temporal"
        opportunity = ReuseOpportunity(tensor, tuple(consumers), kind)
        if pairwise_independent:
            analysis.spatial.append(opportunity)
        else:
            analysis.temporal.append(opportunity)
    return analysis
