"""TE characterisation: memory- vs compute-intensive (paper Sec. 5.3).

The ratio divides arithmetic instructions by the number of tensor elements
read and written; a TE with ratio below the threshold (3, as in the paper)
is memory-intensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.errors import AnalysisError
from repro.graph.te_program import TENode, TEProgram
from repro.te.patterns import count_arith_ops
from repro.te.tensor import Tensor, dtype_bytes
from repro.te.traversal import input_tensors

MEMORY_INTENSIVE = "memory-intensive"
COMPUTE_INTENSIVE = "compute-intensive"

# Paper Sec. 5.3: "the classification threshold is empirically set to 3".
DEFAULT_THRESHOLD = 3.0

# Default cache budget for the plan optimizer's block-level tiling pass
# (runtime.tiling): one chain block — scratch intermediates plus its slices
# of row-aligned externals — should fit a per-core last-level-cache share.
# 4 MiB is a conservative slice of a contemporary server CPU's L2+L3;
# callers override via ``plan_optimization(tile_budget=...)``.
CACHE_BUDGET_BYTES = 4 << 20


@dataclass(frozen=True)
class TECharacter:
    """Characterisation record for one TE."""

    node: TENode
    arith_ops: int          # total arithmetic instructions
    elements_accessed: int  # tensor elements read + written
    ratio: float
    kind: str

    @property
    def is_compute_intensive(self) -> bool:
        return self.kind == COMPUTE_INTENSIVE


def te_flops(tensor: Tensor) -> int:
    """Total arithmetic operations to materialise ``tensor``."""
    if tensor.op is None:
        raise AnalysisError(f"{tensor.name} is a placeholder")
    return tensor.num_elements * count_arith_ops(tensor.op.body)


def _classify_ops(expr) -> int:
    """Arithmetic-instruction count per evaluation, at *classification*
    granularity (Sec. 5.3):

    * every intrinsic is one instruction (a ``tanh`` is one MUFU op);
    * address computation inside reads is excluded (a reshape moves bytes);
    * comparisons/selects are predication, not arithmetic, and only one
      select branch executes per element (count the heavier one).
    """
    from repro.te.expr import BinOp, Call, Cmp, IfThenElse, Reduce, TensorRead

    if isinstance(expr, TensorRead):
        return 0
    if isinstance(expr, Cmp):
        return 0
    if isinstance(expr, BinOp):
        return 1 + _classify_ops(expr.lhs) + _classify_ops(expr.rhs)
    if isinstance(expr, Call):
        return 1 + sum(_classify_ops(a) for a in expr.args)
    if isinstance(expr, IfThenElse):
        return max(_classify_ops(expr.then_value), _classify_ops(expr.else_value))
    if isinstance(expr, Reduce):
        domain = 1
        for ax in expr.axes:
            domain *= ax.extent
        return domain * (1 + _classify_ops(expr.body))
    return 0


def te_classify_ops(tensor: Tensor) -> int:
    """Total classification-granularity instruction count for one TE."""
    if tensor.op is None:
        raise AnalysisError(f"{tensor.name} is a placeholder")
    return tensor.num_elements * _classify_ops(tensor.op.body)


def te_elements_accessed(tensor: Tensor) -> int:
    """Tensor elements read (whole accessed input tensors) plus written."""
    if tensor.op is None:
        raise AnalysisError(f"{tensor.name} is a placeholder")
    read = sum(t.num_elements for t in input_tensors(tensor.op.body))
    return read + tensor.num_elements


def te_footprint_bytes(tensor: Tensor) -> int:
    """Bytes of all accessed tensors (inputs + output), used by cost models."""
    if tensor.op is None:
        raise AnalysisError(f"{tensor.name} is a placeholder")
    read = sum(t.size_bytes for t in input_tensors(tensor.op.body))
    return read + tensor.size_bytes


def step_cost_features(nodes) -> tuple:
    """Static (bytes, flops) features of one plan step's member nodes.

    Unbatched: callers scale by the lane count of the shape bucket they
    record under. Used by the measured cost model's fitted fallback when no
    profile row exists for a step key.
    """
    bytes_ = sum(te_footprint_bytes(n.tensor) for n in nodes)
    flops = sum(te_classify_ops(n.tensor) for n in nodes)
    return (int(bytes_), int(flops))


def characterize_te(node: TENode, threshold: float = DEFAULT_THRESHOLD) -> TECharacter:
    """Classify one TE as memory- or compute-intensive."""
    arith = te_classify_ops(node.tensor)
    accessed = te_elements_accessed(node.tensor)
    ratio = arith / max(accessed, 1)
    kind = COMPUTE_INTENSIVE if ratio >= threshold else MEMORY_INTENSIVE
    return TECharacter(node, arith, accessed, ratio, kind)


def characterize_program(
    program: TEProgram, threshold: float = DEFAULT_THRESHOLD
) -> Dict[TENode, TECharacter]:
    """Characterise every TE, memoising identical structures by shape/type."""
    result: Dict[TENode, TECharacter] = {}
    # Structural memoisation: TEs lowered from the same kind of operator with
    # the same shapes always characterise identically. This keeps the pass
    # linear for models like LSTM with thousands of identical cells.
    cache: Dict[tuple, tuple] = {}
    for node in program:
        key = _structure_key(node)
        if key in cache:
            arith, accessed = cache[key]
        else:
            arith = te_classify_ops(node.tensor)
            accessed = te_elements_accessed(node.tensor)
            cache[key] = (arith, accessed)
        ratio = arith / max(accessed, 1)
        kind = COMPUTE_INTENSIVE if ratio >= threshold else MEMORY_INTENSIVE
        result[node] = TECharacter(node, arith, accessed, ratio, kind)
    return result


def _structure_key(node: TENode) -> tuple:
    """Memoisation key: TEs with equal keys characterise and schedule
    identically. Includes per-element op counts so structurally different
    bodies with matching shapes (e.g. softmax's exp vs its div) never
    collide."""
    from repro.te.patterns import count_memory_reads

    tensor = node.tensor
    assert tensor.op is not None
    input_shapes = tuple(
        (t.shape, t.dtype) for t in input_tensors(tensor.op.body)
    )
    reduce_extents = tuple(ax.extent for ax in tensor.op.reduce_axes)
    fingerprint = (
        count_arith_ops(tensor.op.body),
        _classify_ops(tensor.op.body),
        count_memory_reads(tensor.op.body),
    )
    return (node.op_type, tensor.shape, tensor.dtype, input_shapes,
            reduce_extents, fingerprint)


def compute_intensive_nodes(
    chars: Dict[TENode, TECharacter]
) -> List[TENode]:
    """The CI set of Algorithm 1."""
    return [n for n, c in chars.items() if c.kind == COMPUTE_INTENSIVE]


def memory_intensive_nodes(
    chars: Dict[TENode, TECharacter]
) -> List[TENode]:
    """The MI set of Algorithm 1."""
    return [n for n, c in chars.items() if c.kind == MEMORY_INTENSIVE]
