"""Intra-TE element-wise dependence analysis (paper Sec. 5.2).

Classifies each TE as *one-relies-on-one* (no reduction axis: every output
element depends on exactly one element per input read) or
*one-relies-on-many* (a reduction axis: each output element depends on the
whole reduction domain), and extracts the quasi-affine output->input index
maps where they exist. Relations render in the paper's polyhedral notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.graph.te_program import TENode, TEProgram
from repro.te.affine import AffineMap, try_extract_read_map
from repro.te.expr import Reduce
from repro.te.tensor import Tensor
from repro.te.traversal import collect_reads, contains_reduce

ONE_RELIES_ON_ONE = "one-relies-on-one"
ONE_RELIES_ON_MANY = "one-relies-on-many"


def classify_te(tensor: Tensor) -> str:
    """Dependence category of a compute tensor (Sec. 5.2)."""
    if tensor.op is None:
        raise AnalysisError(f"{tensor.name} is a placeholder, not a TE")
    if contains_reduce(tensor.op.body):
        return ONE_RELIES_ON_MANY
    return ONE_RELIES_ON_ONE


@dataclass(frozen=True)
class ElementRelation:
    """Element-wise dependence of one output tensor on one input tensor.

    For one-relies-on-one reads with a quasi-affine index function, ``affine``
    holds the output->input :class:`AffineMap` (Eq. 1). For one-relies-on-many
    TEs, ``reduce_extents`` lists the reduction domain sizes.
    """

    output: Tensor
    input: Tensor
    kind: str
    affine: Optional[AffineMap] = None
    reduce_extents: Tuple[int, ...] = ()

    def to_polyhedral(self) -> str:
        """Render in the paper's notation, e.g.
        ``{O[i0,i1] -> I[i0,rk] : 0<=rk<64}``."""
        out_vars = [f"i{d}" for d in range(self.output.ndim)]
        bounds = " and ".join(
            f"0<={v}<{e}" for v, e in zip(out_vars, self.output.shape)
        )
        if self.kind == ONE_RELIES_ON_MANY:
            rvars = [f"r{d}" for d in range(len(self.reduce_extents))]
            rbounds = ", ".join(
                f"0<={v}<{e}" for v, e in zip(rvars, self.reduce_extents)
            )
            return (
                f"{{{self.output.name}[{','.join(out_vars)}] -> "
                f"{{{self.input.name}[...], [{rbounds}]}} : {bounds}}}"
            )
        if self.affine is not None:
            from repro.te.expr import Var

            exprs = self.affine.rebuild_indices([Var(v) for v in out_vars])
            idx = ",".join(repr(e) for e in exprs)
        else:
            idx = "non-affine"
        return (
            f"{{{self.output.name}[{','.join(out_vars)}] -> "
            f"{self.input.name}[{idx}] : {bounds}}}"
        )


def te_relations(node: TENode) -> List[ElementRelation]:
    """All (output, input) element relations for one TE."""
    tensor = node.tensor
    assert tensor.op is not None
    kind = classify_te(tensor)
    body = tensor.op.body
    reduce_extents: Tuple[int, ...] = ()
    if isinstance(body, Reduce):
        reduce_extents = tuple(ax.extent for ax in body.axes)

    relations: List[ElementRelation] = []
    seen: set = set()
    for read in collect_reads(body):
        key = id(read.tensor)
        if key in seen:
            continue
        seen.add(key)
        affine = None
        if kind == ONE_RELIES_ON_ONE:
            affine = try_extract_read_map(read, tensor.op.axes)
        relations.append(
            ElementRelation(
                output=tensor,
                input=read.tensor,  # type: ignore[arg-type]
                kind=kind,
                affine=affine,
                reduce_extents=reduce_extents,
            )
        )
    return relations


def program_relations(program: TEProgram) -> Dict[TENode, List[ElementRelation]]:
    """Element relations for every TE in a program."""
    return {node: te_relations(node) for node in program}


def reachability_masks(program: TEProgram) -> Dict[TENode, int]:
    """Ancestor sets as bitmasks: bit ``i`` set in ``mask[n]`` iff TE ``i`` is
    a (transitive) producer of ``n``. Computed in one topological sweep; used
    for the independence tests behind spatial-reuse detection and horizontal
    transformation."""
    masks: Dict[TENode, int] = {}
    for node in program:
        mask = 0
        for producer in program.node_producers(node):
            mask |= masks[producer] | (1 << producer.index)
        masks[node] = mask
    return masks


def depends_on(
    masks: Dict[TENode, int], consumer: TENode, producer: TENode
) -> bool:
    """Whether ``consumer`` transitively reads ``producer``'s output."""
    return bool(masks[consumer] >> producer.index & 1)


def independent(masks: Dict[TENode, int], a: TENode, b: TENode) -> bool:
    """No dataflow in either direction between two TEs."""
    return not depends_on(masks, a, b) and not depends_on(masks, b, a)
