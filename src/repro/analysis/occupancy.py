"""Closed-form occupancy estimation for TE-program partitioning.

Paper Sec. 9 ("Cost model for TE program partitioning"): "Souffle extracts
tensor information by compiling the raw TE program. This can be improved by
building a cost model to estimate occupancy from the TE program."

This module is that improvement: per-TE launch-dimension and
register/shared-memory estimates derived *directly from TE structure* —
no schedule search — so the partitioner can place subprogram boundaries in
O(#TEs). The estimates intentionally mirror the shapes the real scheduler
produces (tile sizes snap to the same alignment rules), so partitions match
the search-based ones on the evaluation models; `FastPartitioner` plugs
them into the same greedy BFS algorithm of Sec. 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.characterize import (
    COMPUTE_INTENSIVE,
    TECharacter,
    characterize_program,
)
from repro.analysis.partition import PartitionResult, Subprogram
from repro.gpu.device import GPUSpec
from repro.graph.te_program import TENode, TEProgram
from repro.schedule.ansor import _ceil_div, contraction_dims
from repro.te.expr import Reduce
from repro.te.tensor import dtype_bytes


@dataclass(frozen=True)
class OccupancyEstimate:
    """Predicted resource footprint of one TE's kernel code."""

    grid_blocks: int
    threads_per_block: int
    shared_mem_per_block: int
    regs_per_thread: int

    def blocks_per_wave(self, device: GPUSpec) -> int:
        return device.max_blocks_per_wave(
            self.threads_per_block, self.shared_mem_per_block,
            self.regs_per_thread,
        )


def estimate_occupancy(node: TENode, device: GPUSpec) -> OccupancyEstimate:
    """Estimate launch dims and occupancy from TE structure alone."""
    from repro.schedule.roller import construct_rtile

    tensor = node.tensor
    assert tensor.op is not None
    dims = contraction_dims(node)
    bytes_el = dtype_bytes(tensor.dtype)

    if dims is not None and dims.m * max(dims.n, 1) >= 256 and dims.k >= 8:
        # Contraction: saturation-aware aligned tiles — the same rTile shape
        # the schedulers converge to, obtained without any search.
        ti, tj, tk = construct_rtile(device, dims, bytes_el)
        use_tc = tensor.dtype == "float16"
        if use_tc:
            threads = min(max((ti // 16) * (tj // 16), 1) * 32,
                          device.max_threads_per_block)
            regs = 96
        else:
            threads = max(64, min((ti * tj) // 16, device.max_threads_per_block))
            regs = 64
        smem = (ti * tk + tk * tj) * bytes_el * 2
        blocks = dims.batch * _ceil_div(dims.m, ti) * _ceil_div(max(dims.n, 1), tj)
        return OccupancyEstimate(blocks, threads, smem, regs)

    if isinstance(tensor.op.body, Reduce):
        out_elems = tensor.num_elements
        threads = 256
        if out_elems >= 128:
            blocks = _ceil_div(out_elems, threads // device.warp_size)
        else:
            reduce_size = 1
            for ax in tensor.op.body.axes:
                reduce_size *= ax.extent
            blocks = max(1, min(_ceil_div(reduce_size, 2048),
                                2 * device.sm_count))
        blocks = min(blocks, device.max_blocks_per_wave(threads, 0))
        return OccupancyEstimate(blocks, threads, threads * bytes_el, 32)

    elems = tensor.num_elements
    threads = 256
    blocks = max(1, _ceil_div(elems, threads * 4))
    blocks = min(blocks, device.max_blocks_per_wave(threads, 0))
    return OccupancyEstimate(blocks, threads, 0, 24)


class FastPartitioner:
    """Sec. 5.4's greedy BFS partitioning driven by the cost model.

    Produces the same :class:`PartitionResult` shape as
    :class:`repro.analysis.partition.Partitioner` but with an empty schedule
    map — the kernel builder schedules TEs lazily afterwards — so the
    partitioning phase itself never invokes the schedule search.
    """

    def __init__(self, device: GPUSpec,
                 max_tes_per_subprogram: int = 50000) -> None:
        self.device = device
        self.max_tes_per_subprogram = max_tes_per_subprogram
        self.estimates: Dict[TENode, OccupancyEstimate] = {}

    def partition(self, program: TEProgram,
                  characters: Optional[Dict[TENode, TECharacter]] = None
                  ) -> PartitionResult:
        chars = characters or characterize_program(program)
        subprograms = []
        current = Subprogram(0)
        current_estimates = []

        for node in program:
            is_ci = chars[node].kind == COMPUTE_INTENSIVE
            if is_ci:
                estimate = estimate_occupancy(node, self.device)
                self.estimates[node] = estimate
                if current_estimates and not self._fits(
                    current_estimates + [estimate]
                ):
                    subprograms.append(current)
                    current = Subprogram(len(subprograms))
                    current_estimates = []
            elif len(current.nodes) >= self.max_tes_per_subprogram:
                subprograms.append(current)
                current = Subprogram(len(subprograms))
                current_estimates = []
            current.nodes.append(node)
            if is_ci:
                current.ci_nodes.append(node)
                current_estimates.append(self.estimates[node])
                current.sync_feasible = self._fits(current_estimates)
        if current.nodes:
            subprograms.append(current)
        return PartitionResult(subprograms, {}, chars)

    def _fits(self, estimates) -> bool:
        """Same analytical constraint as the search-based partitioner."""
        if not estimates:
            return True
        max_grid = max(e.grid_blocks for e in estimates)
        occupancy = sum(e.shared_mem_per_block for e in estimates)
        if occupancy > self.device.shared_mem_per_sm:
            return False
        if max_grid * occupancy >= self.device.total_shared_mem:
            return False
        threads = max(e.threads_per_block for e in estimates)
        regs = max(e.regs_per_thread for e in estimates)
        wave = self.device.max_blocks_per_wave(threads, occupancy, regs)
        return max_grid <= wave
