"""Tensor live ranges across the TE program.

The paper's global analysis "captures essential information such as tensor
shapes and live ranges across operator boundaries" (Sec. 1). Live ranges
feed the LRU shared-memory cache (Sec. 6.5) and memory planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.te_program import TEProgram
from repro.te.tensor import Tensor


@dataclass(frozen=True)
class LiveRange:
    """Definition and last-use positions of a tensor, in TE program order.

    ``def_index`` is -1 for placeholders (live from the start);
    ``last_use`` is the index of the final consuming TE, or the program
    length for model outputs (live until the end).
    """

    tensor: Tensor
    def_index: int
    last_use: int

    @property
    def span(self) -> int:
        return self.last_use - max(self.def_index, 0)

    def live_at(self, index: int) -> bool:
        """Whether the tensor's value must exist when TE ``index`` runs."""
        return self.def_index < index <= self.last_use

    def overlaps(self, other: "LiveRange") -> bool:
        return not (
            self.last_use <= other.def_index or other.last_use <= self.def_index
        )


def live_ranges(program: TEProgram) -> Dict[Tensor, LiveRange]:
    """Live range of every tensor in the program."""
    result: Dict[Tensor, LiveRange] = {}
    end = len(program)
    for tensor in program.tensors:
        producer = program.producer(tensor)
        def_index = producer.index if producer is not None else -1
        consumers = program.consumers(tensor)
        last_use = max((c.index for c in consumers), default=def_index)
        if program.is_output(tensor):
            last_use = end
        result[tensor] = LiveRange(tensor, def_index, last_use)
    return result


def peak_live_bytes(program: TEProgram) -> int:
    """Maximum bytes simultaneously live at any program point.

    A simple sweep used by memory-planning reports and tests.
    """
    ranges = live_ranges(program)
    events: List[tuple] = []
    for lr in ranges.values():
        start = max(lr.def_index, 0)
        events.append((start, lr.tensor.size_bytes))
        events.append((lr.last_use + 1, -lr.tensor.size_bytes))
    events.sort(key=lambda pair: pair[0])
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak
