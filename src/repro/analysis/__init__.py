"""Global computation-graph analysis (paper Sec. 5)."""

from repro.analysis.characterize import (
    COMPUTE_INTENSIVE,
    DEFAULT_THRESHOLD,
    MEMORY_INTENSIVE,
    TECharacter,
    characterize_program,
    characterize_te,
    compute_intensive_nodes,
    memory_intensive_nodes,
    te_elements_accessed,
    te_flops,
    te_footprint_bytes,
)
from repro.analysis.dependence import (
    ONE_RELIES_ON_MANY,
    ONE_RELIES_ON_ONE,
    ElementRelation,
    classify_te,
    depends_on,
    independent,
    program_relations,
    reachability_masks,
    te_relations,
)
from repro.analysis.liveness import LiveRange, live_ranges, peak_live_bytes
from repro.analysis.occupancy import (
    FastPartitioner,
    OccupancyEstimate,
    estimate_occupancy,
)
from repro.analysis.partition import PartitionResult, Partitioner, Subprogram
from repro.analysis.reuse import ReuseAnalysis, ReuseOpportunity, find_reuse

__all__ = [
    "COMPUTE_INTENSIVE",
    "FastPartitioner",
    "OccupancyEstimate",
    "estimate_occupancy",
    "DEFAULT_THRESHOLD",
    "ElementRelation",
    "LiveRange",
    "MEMORY_INTENSIVE",
    "ONE_RELIES_ON_MANY",
    "ONE_RELIES_ON_ONE",
    "PartitionResult",
    "Partitioner",
    "ReuseAnalysis",
    "ReuseOpportunity",
    "Subprogram",
    "TECharacter",
    "characterize_program",
    "characterize_te",
    "classify_te",
    "compute_intensive_nodes",
    "depends_on",
    "find_reuse",
    "independent",
    "live_ranges",
    "memory_intensive_nodes",
    "peak_live_bytes",
    "program_relations",
    "reachability_masks",
    "te_flops",
    "te_elements_accessed",
    "te_footprint_bytes",
    "te_relations",
]
