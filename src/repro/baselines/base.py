"""Shared skeleton for the six baseline compilers (paper Sec. 7.2).

Every baseline follows the same bottom-up recipe: lower the model to TEs,
form kernels with its own fusion rules, and schedule each kernel. Subclasses
customise two hooks:

* :meth:`make_groups` — the fusion strategy (which TEs share a kernel);
* :meth:`tune_kernel` — codegen-quality adjustments (e.g. TensorRT's
  hand-optimised GEMMs, IREE's weak direct convolution), applied as
  per-kernel efficiency overrides on the analytic model.

The efficiency numbers encode the qualitative codegen properties the paper
reports for each system (Sec. 8.1, Table 1); EXPERIMENTS.md documents them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.characterize import TECharacter, characterize_program
from repro.core.grouping import epilogue_groups, singleton_groups
from repro.gpu.device import GPUSpec, a100_40gb
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.graph.te_program import TENode, TEProgram
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.schedule.ansor import AnsorScheduler
from repro.tir.build import BuiltKernel, build_kernel


class BaselineCompiler:
    """Bottom-up compiler skeleton; subclasses define the fusion rules."""

    name = "baseline"

    def __init__(self, device: Optional[GPUSpec] = None) -> None:
        self.device = device or a100_40gb()

    # ---- hooks ---------------------------------------------------------------

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        """Kernel grouping strategy; default is one kernel per TE."""
        return singleton_groups(program)

    def tune_kernel(self, built: BuiltKernel, nodes: List[TENode]) -> None:
        """Per-kernel codegen-quality adjustment; default none."""

    # ---- driver ----------------------------------------------------------------

    def compile(self, model: Union[Graph, TEProgram]) -> CompiledModule:
        stats = CompileStats()
        with PhaseTimer(stats, "lowering"):
            program = lower_graph(model) if isinstance(model, Graph) else model
        with PhaseTimer(stats, "analysis"):
            chars = characterize_program(program)
        scheduler = AnsorScheduler(self.device)
        with PhaseTimer(stats, "grouping"):
            groups = self.make_groups(program, chars)
        kernels: List[BuiltKernel] = []
        schedules: Dict[TENode, object] = {}
        with PhaseTimer(stats, "codegen"):
            for index, group in enumerate(groups):
                built = build_kernel(
                    name=f"{program.name}_{self.name}_k{index}",
                    nodes=group,
                    program=program,
                    chars=chars,
                    schedules=schedules,  # type: ignore[arg-type]
                    scheduler=scheduler,
                    device=self.device,
                    allow_sync=False,
                )
                self.tune_kernel(built, group)
                kernels.append(built)
        stats.schedule_trials = scheduler.search_trials
        return CompiledModule(
            name=program.name,
            compiler=self.name,
            program=program,
            kernels=kernels,
            device=self.device,
            stats=stats,
        )
