"""TVM + Ansor baseline (paper Sec. 7.2).

Ansor auto-schedules each fused subgraph; TVM's fusion is classic
producer-consumer epilogue fusion: elementwise operators fold into the
kernel of their (compute-intensive or reduction) producer. This is the
paper's ablation starting point V0 (Table 4).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import ANSOR_RULES, epilogue_groups
from repro.graph.te_program import TENode, TEProgram


class AnsorCompiler(BaselineCompiler):
    """TVM's fusion + Ansor's schedule search (our schedule oracle)."""

    name = "ansor"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return epilogue_groups(program, chars, ANSOR_RULES)
