"""Rammer / NNFusion baseline (paper Sec. 7.2, 8.4).

Rammer's contribution is spatio-temporal co-scheduling: independent
operators (rTasks) at the same dependency level share one kernel and run on
different blocks — the wavefront execution of Fig. 7(a). Its limits, per
the paper: "Rammer relies on hand-crafted rules ... can only merge sibling
operators", "does not perform element-wise data dependence analysis or reuse
tensor buffers", so weight tensors reload every wavefront.

Modelled as: epilogue fusion, then a wavefront merge of independent groups
at equal dependency levels into combined kernels.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import ANSOR_RULES, epilogue_groups, wavefront_merge
from repro.graph.te_program import TENode, TEProgram


class RammerCompiler(BaselineCompiler):
    """Holistic rTask co-scheduling of independent operators."""

    name = "rammer"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        groups = epilogue_groups(program, chars, ANSOR_RULES)
        return wavefront_merge(program, groups)
