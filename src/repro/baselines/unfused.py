"""The unfused reference: one kernel per TE (Fig. 5a)."""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import singleton_groups
from repro.graph.te_program import TENode, TEProgram


class UnfusedCompiler(BaselineCompiler):
    """Every TE becomes its own kernel launch; no fusion at all."""

    name = "unfused"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return singleton_groups(program)
