"""The six baseline compilers of the paper's evaluation (Sec. 7.2)."""

from repro.baselines.base import BaselineCompiler
from repro.baselines.ansor import AnsorCompiler
from repro.baselines.apollo import ApolloCompiler
from repro.baselines.iree import IREECompiler
from repro.baselines.rammer import RammerCompiler
from repro.baselines.tensorrt import TensorRTCompiler
from repro.baselines.unfused import UnfusedCompiler
from repro.baselines.xla import XLACompiler

ALL_BASELINES = {
    "xla": XLACompiler,
    "ansor": AnsorCompiler,
    "tensorrt": TensorRTCompiler,
    "rammer": RammerCompiler,
    "apollo": ApolloCompiler,
    "iree": IREECompiler,
}

__all__ = [
    "ALL_BASELINES",
    "AnsorCompiler",
    "ApolloCompiler",
    "BaselineCompiler",
    "IREECompiler",
    "RammerCompiler",
    "TensorRTCompiler",
    "UnfusedCompiler",
    "XLACompiler",
]
