"""TensorFlow XLA baseline (paper Sec. 7.2, 8.1).

XLA fuses point-wise and reduction operators on its HLO IR, but maps
compute-intensive operators (GEMM, conv) to cuBLAS/cuDNN *library calls*:
"XLA leverages libraries such as cuBLAS ... it faces limitations in fusing
compute-intensive operators with memory-intensive counterparts" and "XLA's
fusion heuristic cannot fuse two consecutive reduction operators".

Modelled as: no elementwise fusion into compute-intensive kernels (they are
opaque library calls, which do run at well-tuned efficiency), ordinary
fusion among memory-bound operators.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import XLA_RULES, epilogue_groups
from repro.graph.te_program import TENode, TEProgram
from repro.tir.build import BuiltKernel

# cuBLAS/cuDNN library kernels: hand-tuned, better than generic codegen.
LIBRARY_COMPUTE_EFFICIENCY = 0.70


class XLACompiler(BaselineCompiler):
    """Rule-based HLO fusion with library calls for contractions."""

    name = "xla"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return epilogue_groups(program, chars, XLA_RULES)

    def tune_kernel(self, built: BuiltKernel, nodes: List[TENode]) -> None:
        if built.spec.fp16_flops or built.spec.is_compute_bound_hint:
            built.spec.compute_efficiency = LIBRARY_COMPUTE_EFFICIENCY
