"""IREE (MLIR) baseline (paper Sec. 7.2, 8.1).

IREE lowers through the linalg dialect with parametric tile-and-fuse:
producer-consumer fusion only. Per the paper it "cannot fuse
computation-intensive operators (e.g., batch_matmul) to reduce GPU global
memory accesses", misses GEMM+softmax fusion, and its generated code is far
from vendor quality — most dramatically on convolution-heavy models
(ResNeXt runs 314.8ms under IREE vs 4.4ms under Souffle, Table 3).

Modelled as: epilogue fusion of elementwise TEs into their producers (that
is exactly tile-and-fuse), with reduced kernel efficiencies — severe for
direct convolutions, moderate for contractions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import ANSOR_RULES, FusionRules, epilogue_groups
from repro.graph.te_program import TENode, TEProgram
from repro.tir.build import BuiltKernel

IREE_RULES = FusionRules(elem_into_ci=True, elem_into_reduce=True,
                         elem_into_elem=True)

# linalg-generated SIMT code: no tensor-core pipelining comparable to
# hand-written kernels; direct conv lowering is its known weak spot.
IREE_COMPUTE_EFFICIENCY = 0.35
IREE_CONV_COMPUTE_EFFICIENCY = 0.01
IREE_BANDWIDTH_EFFICIENCY = 0.60

_CONV_OPS = {"conv2d", "depthwise_conv2d"}


class IREECompiler(BaselineCompiler):
    """MLIR linalg tile-and-fuse pipeline."""

    name = "iree"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return epilogue_groups(program, chars, IREE_RULES)

    def tune_kernel(self, built: BuiltKernel, nodes: List[TENode]) -> None:
        built.spec.bandwidth_efficiency = IREE_BANDWIDTH_EFFICIENCY
        if any(n.op_type in _CONV_OPS for n in nodes):
            built.spec.compute_efficiency = IREE_CONV_COMPUTE_EFFICIENCY
        elif built.spec.total_flops:
            built.spec.compute_efficiency = IREE_COMPUTE_EFFICIENCY
