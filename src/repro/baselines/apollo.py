"""Apollo baseline (paper Sec. 7.2, Table 1).

Apollo fuses within sub-graph partitions using loop-fusion rules, but per
the paper: it "can only merge two reductions with the same tile size",
"does not support schedules with global synchronization", and its generated
compute kernels are markedly slower than vendor libraries (Table 1: 61.1us
of compute-kernel time vs TensorRT's 31.3us on the same subgraph, and more
global memory traffic: 27.8MB vs 16.5MB).

Modelled as: fusion among memory-bound elementwise neighbours only
(reductions and contractions each anchor their own kernels), with its own
codegen's lower compute and bandwidth efficiency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import APOLLO_RULES, epilogue_groups
from repro.graph.te_program import TENode, TEProgram
from repro.tir.build import BuiltKernel

# Apollo's own polyhedral codegen: no hand-tuned tensor-core pipelines.
APOLLO_COMPUTE_EFFICIENCY = 0.30
APOLLO_BANDWIDTH_EFFICIENCY = 0.55


class ApolloCompiler(BaselineCompiler):
    """Partition-based fusion of memory-bound operators."""

    name = "apollo"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return epilogue_groups(program, chars, APOLLO_RULES)

    def tune_kernel(self, built: BuiltKernel, nodes: List[TENode]) -> None:
        built.spec.compute_efficiency = APOLLO_COMPUTE_EFFICIENCY
        built.spec.bandwidth_efficiency = APOLLO_BANDWIDTH_EFFICIENCY
