"""NVIDIA TensorRT baseline (paper Sec. 7.2, Table 1).

TensorRT combines hand-crafted fusion rules (elementwise epilogues fold into
the preceding GEMM/conv) with closed-source, heavily hand-optimised kernels
— "TensorRT has been specifically tuned for Transformer-based models with
close-sourced, hand-optimized low-level operator implementations (like
GEMM)" (Sec. 2.2). Its limits are rule coverage: GEMMs and reductions stay
in separate kernels, and there is no cross-kernel data reuse.

Modelled as: Ansor-style epilogue fusion plus elevated per-kernel efficiency
(the hand-tuned kernels), which reproduces Table 1's pattern — TensorRT's
compute kernels are *faster* than Souffle's, yet end-to-end it loses on
memory-intensive kernels and launch overhead.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.characterize import TECharacter
from repro.baselines.base import BaselineCompiler
from repro.core.grouping import TENSORRT_RULES, epilogue_groups
from repro.graph.te_program import TENode, TEProgram
from repro.tir.build import BuiltKernel

# Hand-optimised closed-source kernels: best-in-class efficiencies.
HAND_TUNED_COMPUTE_EFFICIENCY = 0.80
HAND_TUNED_BANDWIDTH_EFFICIENCY = 0.88
# ... except on narrow-contraction convolutions: TensorRT's kernel library
# covers grouped bottlenecks (ResNeXt's cardinality-64, K=36 contractions)
# poorly — the paper measures TensorRT *slowest of all* on ResNeXt
# (24.82 ms, Table 3).
NARROW_CONV_EFFICIENCY = 0.10
NARROW_K_THRESHOLD = 64


def _is_grouped_conv(tensor) -> bool:
    """Grouped convolutions index input channels as ``(f // fpg) * cpg + rc``
    — a floordiv inside a read index marks them."""
    from repro.te.expr import BinOp, TensorRead
    from repro.te.traversal import walk

    if tensor.op is None:
        return False
    for node in walk(tensor.op.body):
        if isinstance(node, TensorRead):
            for index in node.indices:
                for sub in walk(index):
                    if isinstance(sub, BinOp) and sub.op == "floordiv":
                        return True
    return False


class TensorRTCompiler(BaselineCompiler):
    """Vendor inference engine: great kernels, fixed fusion boundaries."""

    name = "tensorrt"

    def make_groups(
        self, program: TEProgram, chars: Dict[TENode, TECharacter]
    ) -> List[List[TENode]]:
        return epilogue_groups(program, chars, TENSORRT_RULES)

    def tune_kernel(self, built: BuiltKernel, nodes: List[TENode]) -> None:
        from repro.schedule.ansor import contraction_dims
        from repro.te.patterns import is_reduction

        built.spec.compute_efficiency = HAND_TUNED_COMPUTE_EFFICIENCY
        built.spec.bandwidth_efficiency = HAND_TUNED_BANDWIDTH_EFFICIENCY
        for node in nodes:
            if node.op_type == "conv2d" and is_reduction(node.tensor):
                dims = contraction_dims(node)
                narrow = dims is not None and dims.k < NARROW_K_THRESHOLD
                if narrow or _is_grouped_conv(node.tensor):
                    built.spec.compute_efficiency = NARROW_CONV_EFFICIENCY
                    break
