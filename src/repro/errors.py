"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch compiler failures without swallowing unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TEError(ReproError):
    """Malformed tensor expression (bad shape, index arity, dtype, ...)."""


class LoweringError(ReproError):
    """An operator could not be lowered to tensor expressions."""


class AnalysisError(ReproError):
    """Global analysis failed (cyclic graph, unknown tensor, ...)."""


class TransformError(ReproError):
    """A TE transformation was requested on TEs it does not apply to."""


class ScheduleError(ReproError):
    """Schedule construction or auto-scheduling failed."""


class ResourceError(ScheduleError):
    """A schedule exceeds device resources (shared memory, registers, grid)."""


class CodegenError(ReproError):
    """TensorIR construction or kernel merging failed."""


class ExecutionError(ReproError):
    """Functional execution of a compiled module failed."""


class PlanningError(ReproError):
    """Execution-plan construction failed (overlapping arena layout, ...)."""


class VerificationError(ReproError):
    """The static verifier found errors (see ``repro.verify``)."""


class UnsupportedOperatorError(LoweringError):
    """Operator has no TE lowering (paper Sec. 6.7: e.g. TopK, Conditional)."""
