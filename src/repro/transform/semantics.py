"""Semantic-equivalence checking for TE transformations.

The paper's transformations are semantics-preserving by construction; this
module provides the differential validator the test suite (and cautious
users) run: evaluate the original and transformed programs on random inputs
and compare outputs element-wise. Transformed programs keep the original
placeholder objects and output arity, so one feed dictionary drives both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TransformError
from repro.graph.te_program import TEProgram
from repro.te.evaluator import Evaluator
from repro.te.tensor import Tensor


@dataclass
class EquivalenceReport:
    """Outcome of a differential check."""

    equivalent: bool
    max_abs_error: float
    worst_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _random_feed(rng: np.random.Generator, tensor: Tensor,
                 scale: float) -> np.ndarray:
    """One feed respecting the placeholder's declared dtype.

    Integer placeholders (embedding ids, masks) get small integers and
    booleans get 0/1 — feeding them gaussians would index out of range or
    break predicate semantics. Float16 values are rounded through the
    storage dtype so both evaluation paths see representable numbers.
    """
    dtype = np.dtype(tensor.dtype)
    if dtype == np.bool_:
        return rng.integers(0, 2, size=tensor.shape).astype(np.float64)
    if np.issubdtype(dtype, np.integer):
        return rng.integers(-8, 9, size=tensor.shape).astype(np.float64)
    values = rng.standard_normal(tensor.shape) * scale
    if dtype == np.float16:
        return values.astype(np.float16).astype(np.float64)
    return values


def random_feeds(
    program: TEProgram, seed: int = 0, scale: float = 1.0
) -> Dict[Tensor, np.ndarray]:
    """Deterministic random inputs for every placeholder."""
    rng = np.random.default_rng(seed)
    return {
        tensor: _random_feed(rng, tensor, scale)
        for tensor in program.inputs
    }


def check_equivalent(
    original: TEProgram,
    transformed: TEProgram,
    seed: int = 0,
    atol: float = 1e-8,
    rtol: float = 1e-6,
) -> EquivalenceReport:
    """Differentially test that two programs compute the same outputs."""
    if len(original.outputs) != len(transformed.outputs):
        raise TransformError(
            f"output arity changed: {len(original.outputs)} -> "
            f"{len(transformed.outputs)}"
        )
    if set(map(id, original.inputs)) != set(map(id, transformed.inputs)):
        raise TransformError("transformation changed the program inputs")

    feeds = random_feeds(original, seed=seed)
    eval_original = Evaluator(feeds)
    eval_transformed = Evaluator(feeds)

    worst = 0.0
    worst_name: Optional[str] = None
    for out_original, out_transformed in zip(
        original.outputs, transformed.outputs
    ):
        a = eval_original.value_of(out_original)
        b = eval_transformed.value_of(out_transformed)
        if a.shape != b.shape:
            return EquivalenceReport(False, float("inf"), out_original.name)
        err = float(np.max(np.abs(a - b))) if a.size else 0.0
        if err > worst:
            worst, worst_name = err, out_original.name
        if not np.allclose(a, b, atol=atol, rtol=rtol):
            return EquivalenceReport(False, err, out_original.name)
    return EquivalenceReport(True, worst, worst_name)


def assert_equivalent(
    original: TEProgram, transformed: TEProgram, seed: int = 0,
    atol: float = 1e-8, rtol: float = 1e-6,
) -> None:
    """Raise :class:`TransformError` if the programs disagree."""
    report = check_equivalent(original, transformed, seed=seed, atol=atol,
                              rtol=rtol)
    if not report:
        raise TransformError(
            f"transformation changed semantics: output "
            f"{report.worst_output} differs by {report.max_abs_error:.3e}"
        )
