"""Semantic-preserving TE transformations (paper Sec. 6)."""

from repro.transform.horizontal import (
    HorizontalReport,
    horizontal_transform,
)
from repro.transform.semantics import (
    EquivalenceReport,
    assert_equivalent,
    check_equivalent,
    random_feeds,
)
from repro.transform.simplify import (
    Interval,
    Simplifier,
    infer_interval,
    ranges_for_tensor,
    simplify_expr,
    simplify_tensor_body,
)
from repro.transform.vertical import VerticalReport, vertical_transform

__all__ = [
    "EquivalenceReport",
    "HorizontalReport",
    "Interval",
    "Simplifier",
    "VerticalReport",
    "assert_equivalent",
    "check_equivalent",
    "horizontal_transform",
    "infer_interval",
    "random_feeds",
    "ranges_for_tensor",
    "simplify_expr",
    "simplify_tensor_body",
    "vertical_transform",
]
