"""Vertical TE transformation (paper Sec. 6.2).

Chains of TEs connected by *one-relies-on-one* dependence collapse into a
single semantic-preserving TE by substituting producer bodies into consumer
bodies — the TE-level realisation of composing the quasi-affine index maps
(Eq. 2). The Fig. 4 example (relu -> strided_slice -> permute) reduces three
TEs to one.

Two inlining forms keep the "Reduce only at top level" invariant:

* an **elementwise producer** inlines into any consumer (including into a
  reduction body), provided it has a single consuming TE;
* a **reduction producer** inlines into a consumer that is a *pure memory
  op* (its body is a single read of the producer), which re-indexes the
  reduction's output — this is what eliminates reshape/transpose kernels
  after GEMMs (Sec. 2.3 "eventually eliminates all element-wise memory
  operators").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.te_program import TENode, TEProgram
from repro.te.expr import Expr, Reduce, TensorRead
from repro.te.patterns import count_arith_ops
from repro.te.tensor import ComputeOp, Tensor
from repro.te.traversal import (
    contains_reduce,
    count_nodes,
    free_vars,
    replace_tensor_reads,
    substitute_vars,
    walk,
)
from repro.transform.common import rebuild
from repro.transform.simplify import Interval, simplify_expr

# Inlined bodies beyond this size stop being profitable to duplicate.
DEFAULT_MAX_BODY_NODES = 600


@dataclass
class VerticalReport:
    """What the pass did: (producer, consumer) pairs that were fused."""

    inlined: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def num_inlined(self) -> int:
        return len(self.inlined)


def _is_pure_memory_body(body: Expr, producer: Tensor) -> bool:
    """Body is exactly one read of ``producer`` (reshape/transpose/slice)."""
    return isinstance(body, TensorRead) and body.tensor is producer


def _recompute_amplification(consumer: Tensor, producer: Tensor) -> float:
    """How many times each producer element would be recomputed if inlined.

    A consumer evaluates its body once per output element, times the
    reduction domain if the read sits under a reduce. Amplification 1 means
    the inlined producer still runs exactly once per element (e.g. a scale
    folded into the following row-sum); a GEMV re-reading an activation K
    times per output amplifies K-fold — the schedule-propagation path
    (Sec. 6.3) handles those instead of inlining.
    """
    assert consumer.op is not None
    domain = 1
    for node in walk(consumer.op.body):
        if isinstance(node, Reduce):
            for ax in node.axes:
                domain *= ax.extent
    evaluations = consumer.num_elements * domain
    return evaluations / max(producer.num_elements, 1)


def _is_index_remap_only(body: Expr) -> bool:
    """Producer body performs no data arithmetic (only index remapping)."""
    return count_arith_ops(body, include_index_math=False) == 0


def _ranges_for(node_axes, body: Expr) -> Dict[str, Interval]:
    ranges = {
        ax.name: Interval(ax.dom.lo, ax.dom.hi - 1) for ax in node_axes
    }
    for sub in walk(body):
        if isinstance(sub, Reduce):
            for ax in sub.axes:
                ranges[ax.name] = Interval(ax.dom.lo, ax.dom.hi - 1)
    return ranges


def vertical_transform(
    program: TEProgram,
    groups: Optional[Dict[TENode, int]] = None,
    max_body_nodes: int = DEFAULT_MAX_BODY_NODES,
) -> Tuple[TEProgram, VerticalReport]:
    """Fuse one-relies-on-one chains across the whole program.

    ``groups`` (TE -> subprogram id) restricts fusion to within a subprogram,
    matching Algorithm 1 which transforms per-partition.
    """
    report = VerticalReport()
    consumer_count: Dict[int, int] = {}
    consumer_of: Dict[int, TENode] = {}
    for node in program:
        for tensor in node.inputs:
            consumer_count[id(tensor)] = consumer_count.get(id(tensor), 0) + 1
            consumer_of[id(tensor)] = node

    # old tensor -> rebuilt tensor (kept nodes)
    kept: Dict[int, Tensor] = {}
    # old tensor -> (axes, rewritten body) available for substitution
    inline_def: Dict[int, Tuple[tuple, Expr]] = {}
    # name of node whose op identity a memory-op consumer should adopt
    adopted_identity: Dict[int, Tuple[str, str]] = {}

    new_nodes: List[TENode] = []
    for node in program:
        old = node.tensor
        assert old.op is not None
        original_body = old.op.body
        adopted: Optional[Tuple[str, str]] = None

        def redirect(read: TensorRead) -> Optional[Expr]:
            nonlocal adopted
            target = read.tensor
            definition = inline_def.get(id(target))
            if definition is not None:
                axes, body = definition
                mapping = {ax.name: idx for ax, idx in zip(axes, read.indices)}
                if contains_reduce(body):
                    adopted = adopted_identity.get(id(target))
                return substitute_vars(body, mapping)
            replacement = kept.get(id(target))
            if replacement is not None and replacement is not target:
                return TensorRead(replacement, read.indices)
            return None

        body = replace_tensor_reads(original_body, redirect)
        body = simplify_expr(body, _ranges_for(old.op.axes, body))

        # Decide whether this (rewritten) TE should be inlined downstream.
        single_consumer = consumer_count.get(id(old), 0) == 1
        same_group = True
        if groups is not None and single_consumer:
            consumer = consumer_of[id(old)]
            same_group = groups.get(node) == groups.get(consumer)
        inlinable = (
            single_consumer
            and same_group
            and not program.is_output(old)
            and count_nodes(body) <= max_body_nodes
        )
        if inlinable:
            consumer = consumer_of[id(old)]
            assert consumer.tensor.op is not None
            if not contains_reduce(body):
                # Elementwise producer: inlinable unless inlining would
                # recompute each element many times (arithmetic body read
                # repeatedly under a consumer's reduction axis). Pure index
                # remaps are always free to fold (transpose into GEMM reads).
                if _recompute_amplification(consumer.tensor, old) > 1.0:
                    inlinable = _is_index_remap_only(body)
            else:
                # Reduction: only into a pure memory-op consumer.
                inlinable = _is_pure_memory_body(consumer.tensor.op.body, old)

        if inlinable:
            inline_def[id(old)] = (old.op.axes, body)
            identity = adopted or (node.op_name, node.op_type)
            adopted_identity[id(old)] = identity
            report.inlined.append(
                (node.name, consumer_of[id(old)].name)
            )
            continue

        new_tensor = Tensor(
            old.shape, dtype=old.dtype, name=old.name,
            op=ComputeOp(old.op.axes, body),
        )
        kept[id(old)] = new_tensor
        op_name, op_type = adopted or (node.op_name, node.op_type)
        new_nodes.append(TENode(len(new_nodes), new_tensor, op_name, op_type))

    outputs = [kept[id(out)] for out in program.outputs]
    return rebuild(program, new_nodes, outputs), report
