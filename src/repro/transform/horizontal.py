"""Horizontal TE transformation (paper Sec. 6.1, Fig. 3).

Independent TEs that consume a common input tensor (the spatial-reuse sets
from Sec. 5.1) and share one computation structure merge into a single TE:
their outputs concatenate along one axis and an ``if_then_else`` predicate
selects the branch, so the shared input is loaded once inside one kernel and
SIMD parallelism increases. For reduction TEs the reduction is hoisted: all
branches must share the reduction signature, producing
``sum(select(i < n0, bodyA, bodyB))`` exactly as in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependence import independent, reachability_masks
from repro.analysis.reuse import find_reuse
from repro.graph.te_program import TENode, TEProgram
from repro.te.expr import (
    Const,
    Expr,
    IterVar,
    Range,
    Reduce,
    TensorRead,
    Var,
    if_then_else,
    maximum,
    minimum,
)
from repro.te.tensor import ComputeOp, Tensor, spatial_axis
from repro.te.traversal import replace_tensor_reads, substitute_vars
from repro.transform.common import rebuild

MAX_BRANCHES = 16


@dataclass
class HorizontalReport:
    """Merged groups: list of (merged name, member names)."""

    merged: List[Tuple[str, List[str]]] = field(default_factory=list)

    @property
    def num_merged_groups(self) -> int:
        return len(self.merged)


def _reduce_signature(tensor: Tensor) -> Optional[Tuple[str, Tuple[int, ...]]]:
    assert tensor.op is not None
    body = tensor.op.body
    if isinstance(body, Reduce):
        return (body.kind, tuple(ax.extent for ax in body.axes))
    return None


def _mergeable(a: Tensor, b: Tensor) -> Optional[int]:
    """Concat axis if ``a`` and ``b`` can merge, else ``None``."""
    if a.ndim != b.ndim or a.dtype != b.dtype:
        return None
    if _reduce_signature(a) != _reduce_signature(b):
        return None
    diff = [d for d in range(a.ndim) if a.shape[d] != b.shape[d]]
    if len(diff) > 1:
        return None
    return diff[0] if diff else a.ndim - 1


def _clamped(var_expr: Expr, offset: int, extent: int, full_extent: int) -> Expr:
    index: Expr = var_expr if offset == 0 else var_expr - offset
    if offset == 0 and extent == full_extent:
        return index
    return minimum(maximum(index, 0), extent - 1)


def _merged_shape(members: List[TENode], axis: int) -> Tuple[int, ...]:
    out_shape = list(members[0].tensor.shape)
    out_shape[axis] = sum(m.tensor.shape[axis] for m in members)
    return tuple(out_shape)


def _build_merged_op(
    members: List[TENode],
    bodies: List[Expr],
    axis: int,
    name: str,
) -> ComputeOp:
    """Build the concatenated ComputeOp from (possibly rewritten) member
    bodies."""
    first = members[0].tensor
    assert first.op is not None
    out_shape = _merged_shape(members, axis)
    new_axes = [
        spatial_axis(extent, f"h{d}_{name}") for d, extent in enumerate(out_shape)
    ]
    new_vars = [ax.var for ax in new_axes]

    signature = _reduce_signature(first)
    common_reduce: List[IterVar] = []
    if signature is not None:
        kind, extents = signature
        common_reduce = [
            IterVar(Var(f"hr{d}_{name}"), Range(0, extent), kind="reduce")
            for d, extent in enumerate(extents)
        ]

    branches: List[Tuple[int, int, Expr]] = []  # (offset, extent, inner body)
    offset = 0
    for member, body in zip(members, bodies):
        tensor = member.tensor
        assert tensor.op is not None
        mapping: Dict[str, Expr] = {}
        extent = tensor.shape[axis]
        for d, ax in enumerate(tensor.op.axes):
            if d == axis:
                mapping[ax.name] = _clamped(
                    new_vars[d], offset, extent, out_shape[d]
                )
            else:
                mapping[ax.name] = new_vars[d]
        if isinstance(body, Reduce):
            for common, own in zip(common_reduce, body.axes):
                mapping[own.name] = common.var
            inner = substitute_vars(body.body, mapping)
        else:
            inner = substitute_vars(body, mapping)
        branches.append((offset, extent, inner))
        offset += extent

    merged: Optional[Expr] = None
    for off, extent, inner in reversed(branches):
        if merged is None:
            merged = inner
        else:
            merged = if_then_else(new_vars[axis] < off + extent, inner, merged)
    assert merged is not None
    if signature is not None:
        merged = Reduce(signature[0], merged, tuple(common_reduce))
    return ComputeOp(tuple(new_axes), merged)


def _merge_members(members: List[TENode], axis: int, name: str) -> Tensor:
    """Build the concatenated TE for a validated member group (used directly
    by tests and by single-group callers)."""
    first = members[0].tensor
    bodies = []
    for member in members:
        assert member.tensor.op is not None
        bodies.append(member.tensor.op.body)
    op = _build_merged_op(members, bodies, axis, name)
    return Tensor(
        _merged_shape(members, axis), dtype=first.dtype, name=name, op=op
    )


@dataclass
class _MergeGroup:
    members: List[TENode]
    axis: int
    name: str


def _apply_merges(program: TEProgram, merges: List[_MergeGroup]) -> TEProgram:
    """Rebuild the program replacing every merge group by one TE each.

    Groups are disjoint and no member reads another selected group's member
    (the finder guarantees both). Each merged tensor object is created
    up-front (so reads can redirect to it immediately) but its body is built
    lazily at the group's last member, from the members' *rewritten* bodies —
    replacements of upstream nodes thus propagate into the merged TE.
    """
    merged_tensors: Dict[int, Tuple[Tensor, int, int]] = {}
    group_of_member: Dict[TENode, _MergeGroup] = {}
    merged_of_group: Dict[int, Tensor] = {}
    for merge in merges:
        merged = Tensor(
            _merged_shape(merge.members, merge.axis),
            dtype=merge.members[0].tensor.dtype,
            name=merge.name,
        )
        merged_of_group[id(merge)] = merged
        offset = 0
        for member in merge.members:
            merged_tensors[id(member.tensor)] = (merged, merge.axis, offset)
            offset += member.tensor.shape[merge.axis]
            group_of_member[member] = merge

    replaced: Dict[int, Tensor] = {}
    new_nodes: List[TENode] = []
    pending_bodies: Dict[int, List[Expr]] = {id(m): [] for m in merges}

    def redirect(read: TensorRead) -> Optional[Expr]:
        target = read.tensor
        entry = merged_tensors.get(id(target))
        if entry is not None:
            merged, axis, offset = entry
            indices = list(read.indices)
            if offset:
                indices[axis] = indices[axis] + offset
            return TensorRead(merged, tuple(indices))
        replacement = replaced.get(id(target))
        if replacement is not None:
            return TensorRead(replacement, read.indices)
        return None

    for node in program:
        old = node.tensor
        assert old.op is not None
        body = replace_tensor_reads(old.op.body, redirect)
        merge = group_of_member.get(node)
        if merge is not None:
            bodies = pending_bodies[id(merge)]
            bodies.append(body)
            if node is merge.members[-1]:
                merged = merged_of_group[id(merge)]
                merged.op = _build_merged_op(
                    merge.members, bodies, merge.axis, merge.name
                )
                new_nodes.append(
                    TENode(len(new_nodes), merged, node.op_name, node.op_type)
                )
            continue
        if body is old.op.body:
            new_nodes.append(
                TENode(len(new_nodes), old, node.op_name, node.op_type)
            )
            continue
        new_tensor = Tensor(
            old.shape, dtype=old.dtype, name=old.name,
            op=ComputeOp(old.op.axes, body),
        )
        replaced[id(old)] = new_tensor
        new_nodes.append(
            TENode(len(new_nodes), new_tensor, node.op_name, node.op_type)
        )

    outputs = [replaced.get(id(out), out) for out in program.outputs]
    return rebuild(program, new_nodes, outputs)


def _find_groups(
    program: TEProgram,
    groups: Optional[Dict[str, int]],
    max_branches: int,
    serial_start: int,
) -> List[_MergeGroup]:
    """All mergeable spatial-reuse groups that can apply in one rebuild."""
    masks = reachability_masks(program)
    reuse = find_reuse(program)
    used: set = set()
    selected: List[_MergeGroup] = []
    member_tensor_ids: set = set()
    serial = serial_start

    for opportunity in reuse.spatial:
        members: List[TENode] = []
        axis: Optional[int] = None
        for node in opportunity.consumers:
            if node in used or program.is_output(node.tensor):
                continue
            if groups is not None and members:
                if groups.get(node.name) != groups.get(members[0].name):
                    continue
            if not members:
                members.append(node)
                continue
            candidate_axis = _mergeable(members[0].tensor, node.tensor)
            if candidate_axis is None:
                continue
            if axis is not None and candidate_axis != axis:
                continue
            if not all(independent(masks, node, m) for m in members):
                continue
            members.append(node)
            axis = candidate_axis
            if len(members) >= max_branches:
                break
        if len(members) < 2 or axis is None:
            continue
        # Batch safety: no member may read a tensor produced by a member of
        # an already-selected group (its redirect target would not exist when
        # this group's merged body is built). Such groups wait for the next
        # sweep.
        reads_selected = any(
            id(t) in member_tensor_ids for m in members for t in m.inputs
        )
        produces_read_by_selected = False  # disjointness via `used` below
        if reads_selected:
            continue
        members.sort(key=lambda n: n.index)
        selected.append(
            _MergeGroup(members, axis, f"hz{serial}_{members[0].name}")
        )
        serial += 1
        for member in members:
            used.add(member)
            member_tensor_ids.add(id(member.tensor))
    return selected


def horizontal_transform(
    program: TEProgram,
    groups: Optional[Dict[str, int]] = None,
    max_branches: int = MAX_BRANCHES,
) -> Tuple[TEProgram, HorizontalReport]:
    """Merge independent spatial-reuse TEs until none remain.

    ``groups`` maps TE *names* to subprogram ids so merging stays within a
    partition (names survive program rebuilding, node objects do not).
    Each sweep batches all non-interacting groups into one program rebuild;
    groups that read another group's members wait for the next sweep.
    """
    report = HorizontalReport()
    serial = 0
    while True:
        merges = _find_groups(program, groups, max_branches, serial)
        if not merges:
            return program, report
        serial += len(merges)
        for merge in merges:
            report.merged.append((merge.name, [m.name for m in merge.members]))
        program = _apply_merges(program, merges)
