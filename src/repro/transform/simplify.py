"""Expression simplification with interval arithmetic.

Vertical transformation substitutes producer bodies into consumers, which
leaves behind index algebra like ``((i*64 + j) // 64) % 64`` (from reshape
chains) and clamp/select scaffolding like ``min(max(v-off,0),n-1)`` under
always-true predicates (from concat/pad). This pass erases that residue
using value intervals derived from the iteration domains, keeping merged TE
bodies small and their dependence analysis precise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.te.expr import (
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    IfThenElse,
    IterVar,
    Reduce,
    TensorRead,
    Var,
)
from repro.te.tensor import Tensor
from repro.te.traversal import walk


@dataclass(frozen=True)
class Interval:
    """Closed integer interval [lo, hi]."""

    lo: int
    hi: int

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi


VarRanges = Dict[str, Interval]


def ranges_for_tensor(tensor: Tensor) -> VarRanges:
    """Iteration-variable intervals for one TE (spatial + reduce axes)."""
    ranges: VarRanges = {}
    if tensor.op is None:
        return ranges
    for ax in tensor.op.axes:
        ranges[ax.name] = Interval(ax.dom.lo, ax.dom.hi - 1)
    for node in walk(tensor.op.body):
        if isinstance(node, Reduce):
            for ax in node.axes:
                ranges[ax.name] = Interval(ax.dom.lo, ax.dom.hi - 1)
    return ranges


def infer_interval(expr: Expr, ranges: VarRanges) -> Optional[Interval]:
    """Best-effort value interval of an integer expression, or ``None``."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(expr.value, (int, float)):
            return None
        if isinstance(expr.value, float) and not expr.value.is_integer():
            return None
        v = int(expr.value)
        return Interval(v, v)
    if isinstance(expr, Var):
        return ranges.get(expr.name)
    if isinstance(expr, BinOp):
        lhs = infer_interval(expr.lhs, ranges)
        rhs = infer_interval(expr.rhs, ranges)
        if lhs is None or rhs is None:
            return None
        if expr.op == "add":
            return Interval(lhs.lo + rhs.lo, lhs.hi + rhs.hi)
        if expr.op == "sub":
            return Interval(lhs.lo - rhs.hi, lhs.hi - rhs.lo)
        if expr.op == "mul":
            corners = [
                lhs.lo * rhs.lo, lhs.lo * rhs.hi, lhs.hi * rhs.lo, lhs.hi * rhs.hi
            ]
            return Interval(min(corners), max(corners))
        if expr.op == "floordiv" and rhs.lo == rhs.hi and rhs.lo > 0:
            return Interval(lhs.lo // rhs.lo, lhs.hi // rhs.lo)
        if expr.op == "mod" and rhs.lo == rhs.hi and rhs.lo > 0:
            if lhs.lo >= 0 and lhs.hi < rhs.lo:
                return Interval(lhs.lo, lhs.hi)
            if lhs.lo >= 0:
                return Interval(0, rhs.lo - 1)
            return None
        if expr.op == "max":
            return Interval(max(lhs.lo, rhs.lo), max(lhs.hi, rhs.hi))
        if expr.op == "min":
            return Interval(min(lhs.lo, rhs.lo), min(lhs.hi, rhs.hi))
    return None


def _as_const(expr: Expr) -> Optional[float]:
    if isinstance(expr, Const):
        return expr.value
    return None


def _const(value: float) -> Const:
    if isinstance(value, float) and value.is_integer():
        return Const(int(value), "int32")
    if isinstance(value, int):
        return Const(value, "int32")
    return Const(value, "float32")


def _linear_terms(expr: Expr) -> Optional[Tuple[Dict[Expr, int], int]]:
    """Decompose into {atom: coeff} + const, where atoms are arbitrary
    non-additive sub-expressions. Supports +, -, and const multiplication."""
    if isinstance(expr, Const):
        if isinstance(expr.value, int):
            return {}, expr.value
        return None
    if isinstance(expr, BinOp):
        if expr.op in ("add", "sub"):
            left = _linear_terms(expr.lhs)
            right = _linear_terms(expr.rhs)
            if left is None or right is None:
                return None
            sign = 1 if expr.op == "add" else -1
            terms = dict(left[0])
            for atom, coeff in right[0].items():
                terms[atom] = terms.get(atom, 0) + sign * coeff
            return terms, left[1] + sign * right[1]
        if expr.op == "mul":
            lc, rc = _as_const(expr.lhs), _as_const(expr.rhs)
            if isinstance(lc, int):
                inner = _linear_terms(expr.rhs)
                if inner is None:
                    return None
                return {a: c * lc for a, c in inner[0].items()}, inner[1] * lc
            if isinstance(rc, int):
                inner = _linear_terms(expr.lhs)
                if inner is None:
                    return None
                return {a: c * rc for a, c in inner[0].items()}, inner[1] * rc
            return None
    return {expr: 1}, 0


def _rebuild_linear(terms: Dict[Expr, int], const: int) -> Expr:
    acc: Optional[Expr] = None
    for atom, coeff in terms.items():
        if coeff == 0:
            continue
        term = atom if coeff == 1 else BinOp("mul", _const(coeff), atom)
        acc = term if acc is None else BinOp("add", acc, term)
    if const != 0 or acc is None:
        c = _const(const)
        acc = c if acc is None else BinOp("add", acc, c)
    return acc


def _split_by_divisor(
    expr: Expr, divisor: int, ranges: VarRanges
) -> Optional[Tuple[Expr, Expr]]:
    """Split ``expr = q*divisor + r`` with ``r`` provably in [0, divisor).

    Returns (quotient_expr, remainder_expr) or ``None``.
    """
    decomposed = _linear_terms(expr)
    if decomposed is None:
        return None
    terms, const = decomposed
    q_terms: Dict[Expr, int] = {}
    r_terms: Dict[Expr, int] = {}
    for atom, coeff in terms.items():
        if coeff % divisor == 0:
            q_terms[atom] = coeff // divisor
        else:
            r_terms[atom] = coeff
    q_const, r_const = divmod(const, divisor) if const >= 0 else (0, const)
    if const < 0:
        r_const = const
        q_const = 0
    remainder = _rebuild_linear(r_terms, r_const)
    interval = infer_interval(remainder, ranges)
    if interval is None or not interval.within(0, divisor - 1):
        return None
    quotient = _rebuild_linear(q_terms, q_const)
    return quotient, remainder


class Simplifier:
    """Bottom-up simplification with a variable-range context."""

    def __init__(self, ranges: VarRanges) -> None:
        self.ranges = ranges

    def simplify(self, expr: Expr) -> Expr:
        if isinstance(expr, BinOp):
            return self._binop(
                BinOp(expr.op, self.simplify(expr.lhs), self.simplify(expr.rhs))
            )
        if isinstance(expr, Cmp):
            return self._cmp(
                Cmp(expr.op, self.simplify(expr.lhs), self.simplify(expr.rhs))
            )
        if isinstance(expr, Call):
            return Call(expr.func, tuple(self.simplify(a) for a in expr.args))
        if isinstance(expr, TensorRead):
            return TensorRead(
                expr.tensor, tuple(self.simplify(i) for i in expr.indices)
            )
        if isinstance(expr, Reduce):
            return Reduce(expr.kind, self.simplify(expr.body), expr.axes)
        if isinstance(expr, IfThenElse):
            return self._select(
                IfThenElse(
                    self.simplify(expr.cond),
                    self.simplify(expr.then_value),
                    self.simplify(expr.else_value),
                )
            )
        return expr

    # ---- node rules -------------------------------------------------------

    def _binop(self, expr: BinOp) -> Expr:
        lc, rc = _as_const(expr.lhs), _as_const(expr.rhs)
        if lc is not None and rc is not None:
            return self._fold(expr.op, lc, rc)

        if expr.op == "add":
            if lc == 0:
                return expr.rhs
            if rc == 0:
                return expr.lhs
        elif expr.op == "sub":
            if rc == 0:
                return expr.lhs
        elif expr.op == "mul":
            if lc == 1:
                return expr.rhs
            if rc == 1:
                return expr.lhs
            if lc == 0 or rc == 0:
                return Const(0, "int32")
        elif expr.op == "div":
            if rc == 1:
                return expr.lhs
        elif expr.op == "floordiv":
            if rc == 1:
                return expr.lhs
            if isinstance(rc, int) and rc > 1:
                split = _split_by_divisor(expr.lhs, rc, self.ranges)
                if split is not None:
                    return self.simplify(split[0])
        elif expr.op == "mod":
            if isinstance(rc, int) and rc > 1:
                split = _split_by_divisor(expr.lhs, rc, self.ranges)
                if split is not None:
                    return self.simplify(split[1])
        elif expr.op in ("max", "min"):
            li = infer_interval(expr.lhs, self.ranges)
            ri = infer_interval(expr.rhs, self.ranges)
            if li is not None and ri is not None:
                if expr.op == "max":
                    if li.lo >= ri.hi:
                        return expr.lhs
                    if ri.lo >= li.hi:
                        return expr.rhs
                else:
                    if li.hi <= ri.lo:
                        return expr.lhs
                    if ri.hi <= li.lo:
                        return expr.rhs
        return expr

    def _fold(self, op: str, a: float, b: float) -> Expr:
        import math

        both_int = isinstance(a, int) and isinstance(b, int)
        if op == "add":
            return _const(a + b)
        if op == "sub":
            return _const(a - b)
        if op == "mul":
            return _const(a * b)
        if op == "div":
            return _const(a / b) if b != 0 else _const(math.inf)
        if op == "floordiv":
            return _const(a // b) if b != 0 else _const(0)
        if op == "mod":
            return _const(a % b) if b != 0 else _const(0)
        if op == "max":
            return _const(max(a, b))
        if op == "min":
            return _const(min(a, b))
        if op == "pow":
            return _const(a ** b)
        raise AssertionError(op)

    def _cmp(self, expr: Cmp) -> Expr:
        li = infer_interval(expr.lhs, self.ranges)
        ri = infer_interval(expr.rhs, self.ranges)
        if li is not None and ri is not None:
            checks = {
                "lt": (li.hi < ri.lo, li.lo >= ri.hi),
                "le": (li.hi <= ri.lo, li.lo > ri.hi),
                "gt": (li.lo > ri.hi, li.hi <= ri.lo),
                "ge": (li.lo >= ri.hi, li.hi < ri.lo),
                "eq": (li.lo == li.hi == ri.lo == ri.hi, li.hi < ri.lo or li.lo > ri.hi),
                "ne": (li.hi < ri.lo or li.lo > ri.hi, li.lo == li.hi == ri.lo == ri.hi),
            }
            always, never = checks[expr.op]
            if always:
                return Const(1, "bool")
            if never:
                return Const(0, "bool")
        return expr

    def _select(self, expr: IfThenElse) -> Expr:
        cond = _as_const(expr.cond)
        if cond is not None:
            return expr.then_value if cond else expr.else_value
        # Product-of-predicates AND: if every factor folded to 1 the product
        # folds too (handled by _binop), so only the generic case remains.
        if expr.then_value == expr.else_value:
            return expr.then_value
        return expr


def simplify_expr(expr: Expr, ranges: VarRanges) -> Expr:
    """Simplify an expression under the given variable ranges."""
    return Simplifier(ranges).simplify(expr)


def simplify_tensor_body(tensor: Tensor) -> Expr:
    """Simplify a compute tensor's body under its own iteration domains."""
    assert tensor.op is not None
    return simplify_expr(tensor.op.body, ranges_for_tensor(tensor))
