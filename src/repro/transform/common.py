"""Shared machinery for program-rewriting transformations."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.errors import TransformError
from repro.graph.te_program import TENode, TEProgram
from repro.te.tensor import Tensor


def toposort_nodes(
    inputs: Sequence[Tensor], nodes: Sequence[TENode]
) -> List[TENode]:
    """Stable topological re-ordering of TE nodes.

    Transformations may place a merged node away from where its consumers
    sit; this restores producer-before-consumer order while preserving the
    original relative order wherever the DAG allows (Kahn's algorithm with an
    index-ordered frontier).
    """
    known_inputs = {id(t) for t in inputs}
    producer: Dict[int, TENode] = {id(n.tensor): n for n in nodes}
    position = {n: i for i, n in enumerate(nodes)}

    indegree: Dict[TENode, int] = {}
    dependents: Dict[TENode, List[TENode]] = {n: [] for n in nodes}
    for node in nodes:
        count = 0
        for tensor in node.inputs:
            src = producer.get(id(tensor))
            if src is not None and src is not node:
                count += 1
                dependents[src].append(node)
            elif src is None and id(tensor) not in known_inputs:
                raise TransformError(
                    f"TE {node.name} reads unknown tensor {tensor.name}"
                )
        indegree[node] = count

    import heapq

    frontier = [position[n] for n in nodes if indegree[n] == 0]
    heapq.heapify(frontier)
    by_position = list(nodes)
    ordered: List[TENode] = []
    while frontier:
        node = by_position[heapq.heappop(frontier)]
        ordered.append(node)
        for dep in dependents[node]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                heapq.heappush(frontier, position[dep])
    if len(ordered) != len(nodes):
        raise TransformError("cycle introduced by transformation")
    return ordered


def rebuild(
    program: TEProgram, nodes: Sequence[TENode], outputs: Sequence[Tensor]
) -> TEProgram:
    """Assemble a new TEProgram after a transformation, re-sorting and
    re-indexing nodes."""
    ordered = toposort_nodes(program.inputs, nodes)
    renumbered = [
        TENode(i, n.tensor, n.op_name, n.op_type) for i, n in enumerate(ordered)
    ]
    return TEProgram(program.name, program.inputs, renumbered, outputs)
