"""Command-line interface: compile, profile and inspect models.

Usage::

    python -m repro compile bert --level 4
    python -m repro compare mmoe
    python -m repro kernels lstm --limit 2
    python -m repro memory bert
    python -m repro export swin /tmp/swin.json
    python -m repro compile /tmp/swin.json      # compile an exported graph
    python -m repro compile-stats bert --cache-dir /tmp/cache --repeat 2
    python -m repro lint bert --strict          # static verification
    python -m repro lint bert --json            # machine-readable findings
    python -m repro certify bert --strict       # translation validation
    python -m repro plan-stats bert --batch 8   # plan-optimizer report

``compile`` and ``compile-stats`` honour ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) for the persistent compile cache
and ``--jobs`` for the parallel subprogram build pool.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.core.config import SouffleOptions
from repro.core.souffle import SouffleCompiler
from repro.frontends.serialize import load_graph, save_graph
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.models import PAPER_MODELS, TINY_MODELS, get_model
from repro.runtime.module import CompileStats
from repro.runtime.profiler import profile_module


def _resolve_model(spec: str) -> Graph:
    """A model name from the registry, or a path to an exported JSON graph."""
    if spec in PAPER_MODELS:
        return get_model(spec)
    if spec.endswith(".json"):
        return load_graph(spec)
    raise SystemExit(
        f"unknown model {spec!r}; choose one of {sorted(PAPER_MODELS)} or "
        "pass a .json graph file"
    )


def _compiler_from_args(args: argparse.Namespace,
                        validate: bool = False) -> SouffleCompiler:
    jobs = getattr(args, "jobs", 1)
    if jobs is not None and jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {jobs}")
    return SouffleCompiler(
        options=SouffleOptions.from_level(args.level, validate=validate),
        cache=getattr(args, "cache_dir", None),
        max_workers=None if jobs == 0 else jobs,
    )


def cmd_compile(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    compiler = _compiler_from_args(args, validate=args.validate)
    module = compiler.compile(graph)
    report = profile_module(module)
    print(report.render(top=args.top))
    print(f"\ncompile phases (s): "
          + ", ".join(f"{k}={v:.3f}"
                      for k, v in module.stats.phase_seconds.items()))
    return 0


def render_compile_stats(stats: CompileStats, top: int = 8) -> str:
    """Human-readable compile observability report (``compile-stats``)."""
    lines = ["compile phases:"]
    for phase, seconds in stats.phase_seconds.items():
        lines.append(f"  {phase:22s} {seconds:9.4f} s")
    lines.append(f"  {'total':22s} {stats.total_seconds:9.4f} s")
    if stats.subprogram_seconds:
        slowest = sorted(
            stats.subprogram_seconds.items(), key=lambda kv: -kv[1]
        )[:top]
        lines.append(
            f"subprograms: {len(stats.subprogram_seconds)} built, slowest:"
        )
        for name, seconds in slowest:
            lines.append(f"  {name:22s} {seconds:9.4f} s")
    if stats.schedule_cache_lookups:
        lines.append(
            f"schedule cache: {stats.schedule_cache_hits} hits / "
            f"{stats.schedule_cache_misses} misses "
            f"({stats.schedule_cache_hit_rate * 100:.1f}% hit rate)"
        )
    else:
        lines.append("schedule cache: disabled")
    lines.append(
        "module cache: " + ("hit" if stats.module_cache_hit else "miss")
    )
    lines.append(f"schedule trials: {stats.schedule_trials}")
    workers = f"parallel workers: {stats.parallel_workers}"
    if stats.parallel_fallback:
        workers += " (fell back to serial)"
    lines.append(workers)
    return "\n".join(lines)


def cmd_compile_stats(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    for attempt in range(1, args.repeat + 1):
        compiler = _compiler_from_args(args)
        start = time.perf_counter()
        module = compiler.compile(graph)
        wall = time.perf_counter() - start
        print(
            f"run {attempt}/{args.repeat}: {args.model} "
            f"[{module.compiler}] — {wall:.4f} s wall, "
            f"{module.kernel_calls} kernels"
        )
        print(render_compile_stats(module.stats, top=args.top))
        if attempt < args.repeat:
            print()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import ALL_BASELINES

    graph = _resolve_model(args.model)
    rows = [("souffle", profile_module(
        SouffleCompiler(options=SouffleOptions.from_level(args.level))
        .compile(graph)))]
    for name, compiler_cls in ALL_BASELINES.items():
        rows.append((name, profile_module(compiler_cls().compile(graph))))
    print(f"{'system':10s} {'ms':>10s} {'kernels':>8s} {'MB':>10s}")
    for name, report in sorted(rows, key=lambda r: r[1].total_time_ms):
        print(f"{name:10s} {report.total_time_ms:10.3f} "
              f"{report.kernel_calls:8d} {report.transfer_bytes / 1e6:10.2f}")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    module = SouffleCompiler(
        options=SouffleOptions.from_level(args.level)
    ).compile(graph)
    print(module.render_kernels(limit=args.limit))
    return 0


def cmd_memory(args: argparse.Namespace) -> int:
    from repro.runtime.memory_planner import plan_memory

    graph = _resolve_model(args.model)
    program = lower_graph(graph)
    plan = plan_memory(program)
    print(plan.render(top=args.top))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Measure plan-based serving throughput vs the interpretive evaluator."""
    import numpy as np

    from repro.runtime.session import InferenceSession
    from repro.transform.semantics import random_feeds

    if args.scale == "tiny":
        if args.model not in TINY_MODELS:
            raise SystemExit(
                f"unknown tiny model {args.model!r}; choose one of "
                f"{sorted(TINY_MODELS)} (or use --scale paper)"
            )
        graph = get_model(args.model, scale="tiny")
    else:
        graph = _resolve_model(args.model)

    module = _compiler_from_args(args).compile(graph)
    program = module.program
    feeds = random_feeds(program, seed=args.seed)
    buckets = {2, 4, 8}
    if args.batch > 1:
        buckets.add(args.batch)
    session = InferenceSession(
        program, name=graph.name, profile=True,
        batch_buckets=tuple(sorted(buckets)), tile=args.tile,
    )

    # Warm both paths once (plan construction, numpy caches).
    plan_out = session.run(feeds)
    interp_out = module.run_interpreted(feeds)
    exact = all(np.array_equal(a, b) for a, b in zip(plan_out, interp_out))

    start = time.perf_counter()
    for _ in range(args.calls):
        module.run_interpreted(feeds)
    interp_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(args.calls):
        session.run(feeds)
    plan_seconds = time.perf_counter() - start

    interp_rps = args.calls / interp_seconds
    plan_rps = args.calls / plan_seconds
    bench = {
        "benchmark": "serve-bench",
        "model": graph.name,
        "scale": args.scale,
        "calls": args.calls,
        "seed": args.seed,
        "interp_ms_per_req": interp_seconds / args.calls * 1e3,
        "plan_ms_per_req": plan_seconds / args.calls * 1e3,
        "plan_req_per_s": plan_rps,
        "speedup": interp_seconds / plan_seconds,
    }
    print(
        f"serve-bench: {graph.name} [{args.scale}] — {args.calls} calls, "
        f"outputs bit-identical: {exact}"
    )
    print(f"{'engine':14s} {'req/s':>10s} {'ms/req':>10s}")
    print(f"{'interpreter':14s} {interp_rps:10.1f} "
          f"{interp_seconds / args.calls * 1e3:10.3f}")
    print(f"{'plan replay':14s} {plan_rps:10.1f} "
          f"{plan_seconds / args.calls * 1e3:10.3f}")
    print(f"speedup: {interp_seconds / plan_seconds:.2f}x")

    if args.batch > 1:
        # Per-request feeds share the weight arrays (bound once, broadcast
        # across lanes) and vary the leading input, like real traffic.
        rng = np.random.default_rng(args.seed + 1)
        lead = program.inputs[0]
        requests = []
        for _ in range(args.calls):
            request = dict(feeds)
            request[lead] = feeds[lead] + rng.standard_normal(lead.shape) * 0.01
            requests.append(request)
        singles = [session.run(request) for request in requests]
        start = time.perf_counter()
        for request in requests:
            session.run(request)
        single_seconds = time.perf_counter() - start
        chunks = [requests[i:i + args.batch]
                  for i in range(0, len(requests), args.batch)]
        batched = [outs for chunk in chunks for outs in session.run_batch(chunk)]
        exact_batch = all(
            np.array_equal(got, want)
            for outs, ref in zip(batched, singles)
            for got, want in zip(outs, ref)
        )
        start = time.perf_counter()
        for chunk in chunks:
            session.run_batch(chunk)
        batch_seconds = time.perf_counter() - start
        print(
            f"\nbatched replay (batch {args.batch}): "
            f"{args.calls / batch_seconds:.1f} req/s, "
            f"{batch_seconds / args.calls * 1e3:.3f} ms/req, "
            f"{single_seconds / batch_seconds:.2f}x vs single requests, "
            f"bit-identical: {exact_batch}"
        )
        bench["batched"] = {
            "batch": args.batch,
            "req_per_s": args.calls / batch_seconds,
            "ms_per_req": batch_seconds / args.calls * 1e3,
            "speedup_vs_single": single_seconds / batch_seconds,
            "bit_identical": exact_batch,
        }
        exact = exact and exact_batch

    if args.replicas > 0:
        exact = _serve_bench_sharded(args, graph, feeds) and exact

    if args.concurrency > 0:
        import threading

        server = session.serve(
            max_batch_size=args.batch if args.batch > 1 else 8,
            max_queue_delay_ms=2.0,
        )
        per_worker = max(1, args.calls // args.concurrency)
        failures = []

        def client() -> None:
            try:
                for _ in range(per_worker):
                    server.run(feeds, timeout=120)
            except Exception as exc:  # noqa: BLE001 — reported below
                failures.append(exc)

        workers = [threading.Thread(target=client)
                   for _ in range(args.concurrency)]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        served_seconds = time.perf_counter() - start
        server.stop()
        if failures:
            raise SystemExit(f"batching server request failed: {failures[0]}")
        total = per_worker * args.concurrency
        print(
            f"\nbatching server ({args.concurrency} client threads): "
            f"{total / served_seconds:.1f} req/s, "
            f"mean batch {server.mean_batch_size:.2f}"
        )
        report = server.profile_report()
    else:
        report = session.profile_report()
    print()
    print(report.render(top=args.top))
    if args.json_out:
        import os

        bench["bit_identical"] = exact
        os.makedirs(
            os.path.dirname(os.path.abspath(args.json_out)), exist_ok=True
        )
        with open(args.json_out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    return 0 if exact else 1


def _serve_bench_sharded(args: argparse.Namespace, graph, feeds) -> bool:
    """Sharded multi-process serving vs the single-process batching server.

    Every replica maps the same shared-memory weight blob, so adding
    replicas costs CPU but (to first order) no weight memory; the printed
    metrics include the per-replica private weight bytes to prove it.
    """
    import numpy as np

    from repro.runtime.batching import BatchingServer
    from repro.runtime.session import InferenceSession
    from repro.runtime.sharding import ShardedServer

    # The sharded workers lower the graph themselves (no compiler TE
    # rewrites), so the reference must replay the same lowering — the
    # compiled ``module.program`` computes rewritten expressions whose
    # floats differ in the last bit.
    ref_program = lower_graph(graph)
    by_name = {t.name: v for t, v in feeds.items()}
    ref_feeds = {t: by_name[t.name] for t in ref_program.inputs}
    weights = {t.name: v for t, v in ref_feeds.items()
               if t.role == "weight"}
    lead = ref_program.inputs[0]
    rng = np.random.default_rng(args.seed + 2)
    requests = []
    for _ in range(args.calls):
        request = dict(ref_feeds)
        request[lead] = (ref_feeds[lead]
                         + rng.standard_normal(lead.shape) * 0.01)
        requests.append(request)
    batch = args.batch if args.batch > 1 else 8

    # Serial reference for the bit-identity check.
    ref = InferenceSession(ref_program, name=graph.name, tile=args.tile)
    serial = [ref.run(request) for request in requests]

    # Baseline: one process, one session, dynamic batching.
    baseline = BatchingServer(ref, max_batch_size=batch,
                              max_queue_delay_ms=2.0)
    baseline.start()
    start = time.perf_counter()
    base_futs = [baseline.submit(request) for request in requests]
    for fut in base_futs:
        fut.result(timeout=300)
    base_seconds = time.perf_counter() - start
    baseline.stop()

    server = ShardedServer(
        graph, weights, replicas=args.replicas, policy=args.policy,
        max_batch_size=batch, max_queue_delay_ms=2.0, tile=args.tile,
    )
    with server:
        start = time.perf_counter()
        futs = [
            server.submit({t.name: request[t] for t in ref_program.inputs
                           if t.role != "weight"})
            for request in requests
        ]
        results = [fut.result(timeout=300) for fut in futs]
        shard_seconds = time.perf_counter() - start
        report = server.render_metrics()
    exact = all(
        np.array_equal(got, want)
        for outs, want_outs in zip(results, serial)
        for got, want in zip(outs, want_outs)
    )
    print(
        f"\nsharded serving ({args.replicas} replicas, {args.policy}): "
        f"{args.calls / shard_seconds:.1f} req/s vs "
        f"{args.calls / base_seconds:.1f} req/s single-process "
        f"({base_seconds / shard_seconds:.2f}x), "
        f"bit-identical: {exact}"
    )
    print(report)
    return exact


def cmd_lint(args: argparse.Namespace) -> int:
    """Compile a model and run the full static verifier over the result."""
    from repro.verify import verify_module

    graph = _resolve_model(args.model)
    module = _compiler_from_args(args).compile(graph)
    report = verify_module(module)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def cmd_certify(args: argparse.Namespace) -> int:
    """Compile a model with translation validation on and certify the
    optimized plan + batched lowering (see ``repro.verify.equiv``)."""
    from repro.verify.equiv import certify_model

    graph = _resolve_model(args.model)
    jobs = getattr(args, "jobs", 1)
    if jobs is not None and jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {jobs}")
    report = certify_model(
        graph,
        level=args.level,
        batch_size=args.batch if args.batch > 0 else None,
        cache=getattr(args, "cache_dir", None),
        max_workers=None if jobs == 0 else jobs,
        tile=args.tile,
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def cmd_plan_stats(args: argparse.Namespace) -> int:
    """Report what the plan-optimizer pass pipeline does to one model."""
    from repro.runtime.plan_opt import plan_optimization

    batch = args.batch if args.batch > 1 else None
    if args.scale == "tiny":
        if args.model not in TINY_MODELS:
            raise SystemExit(
                f"unknown tiny model {args.model!r}; choose one of "
                f"{sorted(TINY_MODELS)} (or use --scale paper)"
            )
        graph = get_model(args.model, scale="tiny")
        program = lower_graph(graph)
        # Tiny models build the real optimized plan, so the report includes
        # the per-step matmul-specialization counts (decided at plan time
        # by the differential bit-identity gate).
        from repro.runtime.executor import (
            BatchedExecutionPlan,
            ExecutionPlan,
        )

        executor = "graph" if args.executor == "graph" else "wave"
        plan = (
            BatchedExecutionPlan(program, batch, optimize=True,
                                 executor=executor, tile=args.tile)
            if batch is not None
            else ExecutionPlan(program, optimize=True, executor=executor,
                               tile=args.tile)
        )
        optimization = plan.optimization
        stats = optimization.stats
        graph_stats = (
            plan.task_graph.stats if plan.task_graph is not None else None
        )
    else:
        # Paper-scale grids exceed the functional executor's limits; the
        # static planner still reports hoisting/fusion/elision/waves and
        # the repacked arena, and the task-graph shape comes from the
        # structure-only builder.
        graph = _resolve_model(args.model)
        program = lower_graph(graph)
        optimization = plan_optimization(program, batch_size=batch,
                                         tile=args.tile)
        stats = optimization.stats
        graph_stats = None
        if args.executor == "graph":
            from repro.runtime.task_graph import task_graph_stats

            graph_stats = task_graph_stats(program, batch_size=batch,
                                           tile=args.tile)
    suffix = f" (batch {batch})" if batch is not None else ""
    print(f"plan optimizer: {graph.name}{suffix}")
    print(stats.render())
    if graph_stats is not None:
        print(f"task graph: {graph.name}{suffix}")
        print(graph_stats.render())
    if args.replicas > 0:
        from repro.runtime.executor import EXEC_ITEMSIZE

        # Static sharded-serving memory report: the weight table and the
        # hoisted precompute boundary are immutable at serve time, so a
        # sharded deployment places them once in shared memory instead of
        # once per replica.
        weight_bytes = sum(
            t.num_elements * EXEC_ITEMSIZE
            for t in program.inputs if t.role == "weight"
        )
        boundary = optimization.hoist_boundary
        boundary_bytes = sum(
            t.num_elements * EXEC_ITEMSIZE for t in boundary
        )
        shared = weight_bytes + boundary_bytes
        k = args.replicas
        print(f"sharded serving ({k} replicas):")
        print(
            f"  weights: {weight_bytes / 1e6:.2f} MB "
            f"({sum(1 for t in program.inputs if t.role == 'weight')} "
            f"tensors), hoisted boundary: {boundary_bytes / 1e6:.2f} MB "
            f"({len(boundary)} tensors)"
        )
        print(
            f"  per-process copies: {k * shared / 1e6:.2f} MB — "
            f"shared-memory placement: {shared / 1e6:.2f} MB "
            f"(saves {(k - 1) * shared / 1e6:.2f} MB, "
            f"{(1 - 1 / k) * 100:.0f}%)"
        )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Profile-guided A/B tuning: measure, re-plan, prove, time, verdict."""
    from repro.runtime.tuner import tune

    if args.scale == "tiny":
        if args.model not in TINY_MODELS:
            raise SystemExit(
                f"unknown tiny model {args.model!r}; choose one of "
                f"{sorted(TINY_MODELS)} (or use --scale paper)"
            )
        graph = get_model(args.model, scale="tiny")
    else:
        graph = _resolve_model(args.model)
    program = lower_graph(graph)

    report = tune(
        program,
        name=graph.name,
        store=args.store,
        runs=args.runs,
        reps=args.reps,
        threshold=args.threshold,
        seed=args.seed,
        tile_budget=args.tile_budget,
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(f"tune: {graph.name} [{args.scale}]")
        if report.static_stats is not None:
            print("\nstatic plan:")
            print(report.static_stats.render())
        if report.tuned_stats is not None:
            print("\ntuned plan:")
            print(report.tuned_stats.render())
        print()
        print(report.render())
        if report.verdict_path:
            print(f"  verdict persisted: {report.verdict_path}")
    if not report.runnable:
        # Environment limit (grid budget), not a tuning failure.
        return 0
    # Identity or certification failures signal an optimizer bug; an
    # honest speed rejection is the harness doing its job.
    return 0 if (report.bit_identical and report.refuted == 0) else 1


def cmd_export(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    save_graph(graph, args.path)
    print(f"wrote {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Souffle (ASPLOS 2024) reproduction — DNN inference "
                    "compiler over tensor expressions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", help="model name or exported .json graph")
        p.add_argument("--level", type=int, default=4, choices=range(5),
                       help="optimisation level V0..V4 (default 4)")

    def add_accel(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None,
                       help="persistent compile-cache directory "
                            "(default: $REPRO_CACHE_DIR if set)")
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel subprogram build workers "
                            "(0 = auto-size to the machine; default 1)")

    p = sub.add_parser("compile", help="compile and profile a model")
    add_common(p)
    add_accel(p)
    p.add_argument("--validate", action="store_true",
                   help="differentially check every transformation")
    p.add_argument("--top", type=int, default=15,
                   help="profile rows to print")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser(
        "compile-stats",
        help="compile and report phase/subprogram timings and cache hit rates",
    )
    add_common(p)
    add_accel(p)
    p.add_argument("--repeat", type=int, default=1,
                   help="compile N times (shows warm-cache behaviour)")
    p.add_argument("--top", type=int, default=8,
                   help="slowest subprograms to print")
    p.set_defaults(fn=cmd_compile_stats)

    p = sub.add_parser("compare", help="Souffle vs all six baselines")
    add_common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("kernels", help="print generated pseudo-CUDA kernels")
    add_common(p)
    p.add_argument("--limit", type=int, default=1)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("memory", help="plan and print the global workspace")
    add_common(p)
    p.add_argument("--top", type=int, default=12)
    p.set_defaults(fn=cmd_memory)

    p = sub.add_parser(
        "serve-bench",
        help="serving throughput: plan-based replay vs interpretive run",
    )
    add_common(p)
    p.add_argument("--scale", choices=("tiny", "paper"), default="tiny",
                   help="model scale to execute functionally (default tiny; "
                        "paper-scale grids may exceed the evaluator limit)")
    p.add_argument("--calls", type=int, default=32,
                   help="timed requests per engine (default 32)")
    p.add_argument("--seed", type=int, default=0,
                   help="random-feed seed (default 0)")
    p.add_argument("--top", type=int, default=12,
                   help="slowest plan steps to print")
    p.add_argument("--batch", type=int, default=0,
                   help="also time batched plan replay at this batch size "
                        "(0 = off)")
    p.add_argument("--tile", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="block-tile eligible reduction chains "
                        "(--no-tile serves the untiled optimized plan)")
    p.add_argument("--concurrency", type=int, default=0,
                   help="drive a dynamic-batching server with this many "
                        "client threads (0 = off)")
    p.add_argument("--replicas", type=int, default=0,
                   help="also serve through this many sharded worker "
                        "processes mapping one shared-memory weight blob, "
                        "vs the single-process batching server (0 = off)")
    p.add_argument("--policy", choices=("round-robin", "least-outstanding"),
                   default="least-outstanding",
                   help="sharded dispatch policy (default least-outstanding)")
    p.add_argument("--json-out", default=None,
                   help="also write the headline metrics as JSON to this "
                        "path (e.g. benchmarks/results/serve_bench.json)")
    p.set_defaults(fn=cmd_serve_bench)

    p = sub.add_parser(
        "lint",
        help="compile a model and statically verify the result "
             "(bounds, shape/dtype, well-formedness, arena hazards, "
             "sync safety)",
    )
    add_common(p)
    add_accel(p)
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors (exit 1)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as machine-readable JSON")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "certify",
        help="compile with translation validation: prove every transform "
             "application equivalence-preserving (TE rewrites, plan "
             "optimizer passes, tiling, batched lowering)",
    )
    add_common(p)
    add_accel(p)
    p.add_argument("--batch", type=int, default=8,
                   help="certify the batched lowering at this batch size "
                        "(0 = skip explicit batch; default 8)")
    p.add_argument("--tile", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="certify the tiled plan (--no-tile certifies the "
                        "untiled one)")
    p.add_argument("--strict", action="store_true",
                   help="treat unknown verdicts as failures (exit 1)")
    p.add_argument("--json", action="store_true",
                   help="emit the certificates as machine-readable JSON")
    p.set_defaults(fn=cmd_certify)

    p = sub.add_parser(
        "plan-stats",
        help="what the plan optimizer does to a model's execution plan "
             "(steps fused, weights hoisted, bytes elided, waves)",
    )
    p.add_argument("model", help="model name")
    p.add_argument("--scale", choices=("tiny", "paper"), default="tiny",
                   help="tiny builds the real optimized plan (includes "
                        "matmul specialization); paper reports the static "
                        "planner only (default tiny)")
    p.add_argument("--batch", type=int, default=0,
                   help="optimize the batched plan at this batch size "
                        "(0 = unbatched)")
    p.add_argument("--tile", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="block-tile eligible reduction chains before "
                        "reporting (--no-tile reports the untiled plan)")
    p.add_argument("--executor", choices=("wave", "graph"), default="wave",
                   help="with 'graph', also report the compiled task "
                        "graph (task count, dependency edges, critical "
                        "path, max ready-width)")
    p.add_argument("--replicas", type=int, default=0,
                   help="also report the sharded-serving weight memory at "
                        "this replica count: bytes duplicated per process "
                        "vs placed once in shared memory (0 = off)")
    p.set_defaults(fn=cmd_plan_stats)

    p = sub.add_parser(
        "tune",
        help="profile-guided plan tuning: collect per-step measurements, "
             "re-plan with the fitted cost model, and adopt only when the "
             "tuned plan is bit-identical, fully certified, and measurably "
             "faster (interleaved A/B)",
    )
    p.add_argument("model", help="model name or exported .json graph")
    p.add_argument("--scale", choices=("tiny", "paper"), default="tiny",
                   help="model scale to execute functionally (default tiny)")
    p.add_argument("--store", default=None,
                   help="profile-store directory (default: "
                        "$REPRO_CACHE_DIR/profiles if set, else in-memory)")
    p.add_argument("--runs", type=int, default=3,
                   help="profiled exploration runs per plan variant "
                        "(default 3)")
    p.add_argument("--reps", type=int, default=9,
                   help="interleaved timing repetitions per engine "
                        "(default 9)")
    p.add_argument("--threshold", type=float, default=1.0,
                   help="minimum tuned-vs-static speedup to adopt "
                        "(default 1.0)")
    p.add_argument("--seed", type=int, default=0,
                   help="random-feed seed (default 0)")
    p.add_argument("--tile-budget", type=int, default=None,
                   help="cache budget (bytes) for the tiling pass of both "
                        "engines; measured rejection recovers the latency "
                        "a mispredicted budget costs the static plan")
    p.add_argument("--json", action="store_true",
                   help="emit the tune verdict as machine-readable JSON")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("export", help="export a model to the JSON format")
    add_common(p)
    p.add_argument("path", help="output .json path")
    p.set_defaults(fn=cmd_export)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
