"""Command-line interface: compile, profile and inspect models.

Usage::

    python -m repro compile bert --level 4
    python -m repro compare mmoe
    python -m repro kernels lstm --limit 2
    python -m repro memory bert
    python -m repro export swin /tmp/swin.json
    python -m repro compile /tmp/swin.json      # compile an exported graph
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.config import SouffleOptions
from repro.core.souffle import SouffleCompiler
from repro.frontends.serialize import load_graph, save_graph
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.models import PAPER_MODELS, get_model
from repro.runtime.profiler import profile_module


def _resolve_model(spec: str) -> Graph:
    """A model name from the registry, or a path to an exported JSON graph."""
    if spec in PAPER_MODELS:
        return get_model(spec)
    if spec.endswith(".json"):
        return load_graph(spec)
    raise SystemExit(
        f"unknown model {spec!r}; choose one of {sorted(PAPER_MODELS)} or "
        "pass a .json graph file"
    )


def cmd_compile(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    compiler = SouffleCompiler(
        options=SouffleOptions.from_level(args.level, validate=args.validate)
    )
    module = compiler.compile(graph)
    report = profile_module(module)
    print(report.render(top=args.top))
    print(f"\ncompile phases (s): "
          + ", ".join(f"{k}={v:.3f}"
                      for k, v in module.stats.phase_seconds.items()))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import ALL_BASELINES

    graph = _resolve_model(args.model)
    rows = [("souffle", profile_module(
        SouffleCompiler(options=SouffleOptions.from_level(args.level))
        .compile(graph)))]
    for name, compiler_cls in ALL_BASELINES.items():
        rows.append((name, profile_module(compiler_cls().compile(graph))))
    print(f"{'system':10s} {'ms':>10s} {'kernels':>8s} {'MB':>10s}")
    for name, report in sorted(rows, key=lambda r: r[1].total_time_ms):
        print(f"{name:10s} {report.total_time_ms:10.3f} "
              f"{report.kernel_calls:8d} {report.transfer_bytes / 1e6:10.2f}")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    module = SouffleCompiler(
        options=SouffleOptions.from_level(args.level)
    ).compile(graph)
    print(module.render_kernels(limit=args.limit))
    return 0


def cmd_memory(args: argparse.Namespace) -> int:
    from repro.runtime.memory_planner import plan_memory

    graph = _resolve_model(args.model)
    program = lower_graph(graph)
    plan = plan_memory(program)
    print(plan.render(top=args.top))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    graph = _resolve_model(args.model)
    save_graph(graph, args.path)
    print(f"wrote {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Souffle (ASPLOS 2024) reproduction — DNN inference "
                    "compiler over tensor expressions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", help="model name or exported .json graph")
        p.add_argument("--level", type=int, default=4, choices=range(5),
                       help="optimisation level V0..V4 (default 4)")

    p = sub.add_parser("compile", help="compile and profile a model")
    add_common(p)
    p.add_argument("--validate", action="store_true",
                   help="differentially check every transformation")
    p.add_argument("--top", type=int, default=15,
                   help="profile rows to print")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("compare", help="Souffle vs all six baselines")
    add_common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("kernels", help="print generated pseudo-CUDA kernels")
    add_common(p)
    p.add_argument("--limit", type=int, default=1)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("memory", help="plan and print the global workspace")
    add_common(p)
    p.add_argument("--top", type=int, default=12)
    p.set_defaults(fn=cmd_memory)

    p = sub.add_parser("export", help="export a model to the JSON format")
    add_common(p)
    p.add_argument("path", help="output .json path")
    p.set_defaults(fn=cmd_export)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
