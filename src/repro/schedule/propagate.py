"""Schedule propagation from compute-intensive producers to memory-intensive
consumers (paper Sec. 6.3 and Algorithm 1 lines 13-18).

A memory-intensive TE attached to a compute-intensive TE inherits the
producer's tile shape and launch dimensions ("Inherit tile shape from TE0's
schedule" in Fig. 2), then its computation is moved into the producer's loop
(`compute_at`) so the intermediate stays in shared memory/registers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.graph.te_program import TENode
from repro.schedule.schedule import ScheduleStep, TESchedule
from repro.te.patterns import count_arith_ops
from repro.te.tensor import dtype_bytes
from repro.te.traversal import input_tensors


def propagate_schedule(producer_sched: TESchedule, consumer: TENode) -> TESchedule:
    """Schedule a memory-intensive TE under its compute-intensive producer.

    The propagated schedule keeps the producer's launch geometry and adds the
    consumer's arithmetic; its own global traffic is limited to tensors the
    fused kernel must still read from outside (the producer's output arrives
    on-chip for free).
    """
    tensor = consumer.tensor
    assert tensor.op is not None
    producer_tensor = producer_sched.node.tensor

    extra_loads = 0.0
    for read in input_tensors(tensor.op.body):
        if read is producer_tensor:
            continue  # arrives via shared memory / registers
        extra_loads += read.size_bytes

    arith = count_arith_ops(tensor.op.body) * tensor.num_elements
    steps = list(producer_sched.steps) + [
        ScheduleStep(
            "split",
            f"{consumer.name}: inherit tile {producer_sched.tile} from "
            f"{producer_sched.node.name}",
        ),
        ScheduleStep("compute_at", f"{consumer.name} -> {producer_sched.node.name}"),
    ]
    return replace(
        producer_sched,
        node=consumer,
        load_bytes=extra_loads,
        store_bytes=float(tensor.size_bytes),
        fp16_flops=0.0,
        fp32_flops=float(arith),
        atomic_bytes=0.0,
        steps=steps,
    )


def inline_elementwise(consumer_sched: TESchedule, producer: TENode) -> TESchedule:
    """Record that an elementwise producer was inlined into ``consumer_sched``.

    Inlining removes the producer's intermediate tensor from global memory:
    the consumer loads the producer's *inputs* instead of its output.
    """
    producer_tensor = producer.tensor
    assert producer_tensor.op is not None
    producer_inputs = sum(
        t.size_bytes for t in input_tensors(producer_tensor.op.body)
    )
    load_bytes = (
        consumer_sched.load_bytes - producer_tensor.size_bytes + producer_inputs
    )
    steps = consumer_sched.steps + [
        ScheduleStep("inline", f"{producer.name} -> {consumer_sched.node.name}")
    ]
    return replace(
        consumer_sched, load_bytes=max(load_bytes, 0.0), steps=steps
    )
