"""Scheduling: TE schedules, the Ansor-like searcher and propagation."""

from repro.schedule.ansor import (
    AnsorScheduler,
    ContractionDims,
    contraction_dims,
    is_two_phase_reduction,
)
from repro.schedule.roller import RollerScheduler, compare_schedulers
from repro.schedule.propagate import inline_elementwise, propagate_schedule
from repro.schedule.schedule import (
    CONV,
    ELEMENTWISE,
    MATMUL,
    OPAQUE,
    REDUCE,
    ScheduleStep,
    TESchedule,
)

__all__ = [
    "AnsorScheduler",
    "RollerScheduler",
    "compare_schedulers",
    "is_two_phase_reduction",
    "CONV",
    "ContractionDims",
    "ELEMENTWISE",
    "MATMUL",
    "OPAQUE",
    "REDUCE",
    "ScheduleStep",
    "TESchedule",
    "contraction_dims",
    "inline_elementwise",
    "propagate_schedule",
]
