"""Ansor-like auto-scheduler (paper Sec. 6.3).

Souffle only needs Ansor as an oracle that, per TE, returns an optimised
schedule together with its resource usage (launch dimensions, shared memory
and register occupancy — Sec. 5.4 "Get required resource"). This module
provides that oracle: a tile-size search over the analytic device model for
contraction TEs, plus deterministic schedule templates for reduction and
elementwise TEs.

Schedules for structurally identical TEs are memoised, which keeps
compilation linear for models like LSTM with thousands of identical cells.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.cache.schedule_cache import ScheduleCache

from repro.analysis.characterize import _structure_key, te_flops
from repro.errors import ScheduleError
from repro.gpu.device import GPUSpec
from repro.gpu.kernel import KernelSpec
from repro.gpu.simulator import GPUSimulator
from repro.graph.te_program import TENode
from repro.schedule.schedule import (
    CONV,
    ELEMENTWISE,
    MATMUL,
    REDUCE,
    ScheduleStep,
    TESchedule,
)
from repro.te.expr import Reduce
from repro.te.patterns import count_arith_ops, match_matmul
from repro.te.tensor import Tensor, dtype_bytes
from repro.te.traversal import input_tensors


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# Fraction of repeated tile reads that still reach DRAM when the operand
# fits in L2: re-reads of a resident operand are mostly served on-chip.
L2_REREAD_DRAM_FRACTION = 0.05


def _l2_filtered(tensor_bytes: float, reload_factor: int, l2_bytes: int) -> float:
    """DRAM traffic for reading an operand ``reload_factor`` times in one
    kernel. Operands that fit comfortably in L2 pay full price once and a
    small residual for each re-read; larger operands stream every time."""
    if reload_factor <= 1 or tensor_bytes > l2_bytes / 2:
        return tensor_bytes * reload_factor
    rereads = tensor_bytes * (reload_factor - 1)
    return tensor_bytes + rereads * L2_REREAD_DRAM_FRACTION


class ContractionDims:
    """GEMM-shaped cost dimensions (batch, M, N, K) extracted from a TE."""

    def __init__(self, batch: int, m: int, n: int, k: int) -> None:
        self.batch = batch
        self.m = m
        self.n = n
        self.k = k

    def __repr__(self) -> str:
        return f"(b={self.batch}, M={self.m}, N={self.n}, K={self.k})"


def contraction_dims(node: TENode) -> Optional[ContractionDims]:
    """Extract (batch, M, N, K) for matmul/conv-shaped TEs, else ``None``."""
    tensor = node.tensor
    if tensor.op is None or not isinstance(tensor.op.body, Reduce):
        return None
    k = 1
    for ax in tensor.op.body.axes:
        k *= ax.extent
    shape = tensor.shape
    if node.op_type in ("conv2d", "depthwise_conv2d"):
        n_batch, channels, oh, ow = shape
        return ContractionDims(1, n_batch * oh * ow, channels, k)
    if len(shape) == 1:  # GEMV
        return ContractionDims(1, shape[0], 1, k)
    if len(shape) == 2:
        return ContractionDims(1, shape[0], shape[1], k)
    # Batched: fold all leading dims into the batch.
    batch = 1
    for extent in shape[:-2]:
        batch *= extent
    return ContractionDims(batch, shape[-2], shape[-1], k)


# Reductions with fewer outputs than this use the two-phase schedule
# (per-block partials + global atomicAdd); their final value only exists
# after a device-wide synchronisation point.
TWO_PHASE_OUTPUT_THRESHOLD = 128


def is_two_phase_reduction(tensor: Tensor) -> bool:
    """Whether the reduce schedule for ``tensor`` needs a global atomic."""
    if tensor.op is None or not isinstance(tensor.op.body, Reduce):
        return False
    return tensor.num_elements < TWO_PHASE_OUTPUT_THRESHOLD


class AnsorScheduler:
    """Searches schedules for TEs against an analytic device model."""

    # Tile candidates for the contraction search.
    TILES_I = (16, 32, 64, 128)
    TILES_J = (16, 32, 64, 128)
    TILES_K = (16, 32, 64)

    def __init__(self, device: GPUSpec) -> None:
        self.device = device
        self.simulator = GPUSimulator(device)
        self._cache: Dict[tuple, TESchedule] = {}
        self.search_trials = 0  # counts simulated candidates (Sec. 8.5)
        # Optional persistent tier (repro.cache): set via attach_cache().
        self._persistent: Optional["ScheduleCache"] = None
        self._cache_context: Optional[str] = None
        # schedule() must be callable from the parallel kernel builders; the
        # lock also makes search_trials deterministic (each structure is
        # built exactly once regardless of thread interleaving).
        self._lock = threading.Lock()

    # ---- public API ---------------------------------------------------------

    def attach_cache(
        self, cache: "ScheduleCache", options_token: str = ""
    ) -> None:
        """Plug a persistent schedule cache behind the in-memory memo.

        The cache context keys entries by scheduler class, device model and
        compiler options, so different oracles/targets never share entries.
        """
        from repro.cache.keys import schedule_context

        self._persistent = cache
        self._cache_context = schedule_context(
            type(self).__name__, self.device, options_token
        )

    def schedule(self, node: TENode) -> TESchedule:
        """Return an optimised schedule for one TE (memoised by structure,
        backed by the persistent cache when one is attached)."""
        from dataclasses import replace

        with self._lock:
            key = _structure_key(node)
            cached = self._cache.get(key)
            if cached is not None:
                # Re-target the cached schedule at this node.
                return replace(cached, node=node)
            if self._persistent is not None:
                from repro.cache.keys import schedule_cache_key

                pkey = schedule_cache_key(self._cache_context, node)
                loaded = self._persistent.load(pkey, node)
                if loaded is not None:
                    self._cache[key] = loaded
                    return loaded
                schedule = self._build(node)
                self._cache[key] = schedule
                self._persistent.store(pkey, schedule)
                return schedule
            schedule = self._build(node)
            self._cache[key] = schedule
            return schedule

    # ---- internals ----------------------------------------------------------

    def _build(self, node: TENode) -> TESchedule:
        tensor = node.tensor
        if tensor.op is None:
            raise ScheduleError(f"cannot schedule placeholder {tensor.name}")
        dims = contraction_dims(node)
        if dims is not None and self._is_matmul_like(node, dims):
            return self._schedule_contraction(node, dims)
        if isinstance(tensor.op.body, Reduce):
            return self._schedule_reduce(node)
        return self._schedule_elementwise(node)

    def _is_matmul_like(self, node: TENode, dims: ContractionDims) -> bool:
        """Contractions big enough to benefit from tiled/tensor-core code."""
        if node.op_type in ("conv2d",):
            return True
        if match_matmul(node.tensor) is None and node.op_type not in (
            "batch_matmul",
            "matmul",
            "gemv",
        ):
            return False
        return dims.m * dims.n >= 256 and dims.k >= 8

    # ---- contraction search --------------------------------------------------

    def _schedule_contraction(
        self, node: TENode, dims: ContractionDims
    ) -> TESchedule:
        tensor = node.tensor
        use_tc = tensor.dtype == "float16"
        bytes_el = dtype_bytes(tensor.dtype)
        inputs = input_tensors(tensor.op.body)  # type: ignore[union-attr]

        best: Optional[TESchedule] = None
        best_time = math.inf
        for ti in self.TILES_I:
            if ti > 2 * dims.m:
                continue
            for tj in self.TILES_J:
                if tj > 2 * max(dims.n, 1):
                    continue
                for tk in self.TILES_K:
                    if tk > 2 * dims.k:
                        continue
                    candidate = self._contraction_candidate(
                        node, dims, ti, tj, tk, use_tc, bytes_el
                    )
                    if candidate is None:
                        continue
                    self.search_trials += 1
                    time_us = self._estimate(candidate)
                    if time_us < best_time:
                        best, best_time = candidate, time_us
        if best is None:
            # Degenerate contraction (tiny dims): fall back to reduce template.
            return self._schedule_reduce(node)
        best.steps.extend(self._contraction_steps(best))
        return best

    def _contraction_candidate(
        self,
        node: TENode,
        dims: ContractionDims,
        ti: int,
        tj: int,
        tk: int,
        use_tc: bool,
        bytes_el: int,
    ) -> Optional[TESchedule]:
        device = self.device
        if use_tc:
            warps = max((ti // 16) * (tj // 16), 1)
            threads = min(warps * 32, device.max_threads_per_block)
            regs = 96
        else:
            threads = max(64, min((ti * tj) // 16, device.max_threads_per_block))
            regs = 64
        smem = (ti * tk + tk * tj) * bytes_el * 2  # double-buffered stages
        if smem > device.shared_mem_per_sm:
            return None
        if device.blocks_per_sm(threads, smem, regs) < 1:
            return None

        blocks = dims.batch * _ceil_div(dims.m, ti) * _ceil_div(max(dims.n, 1), tj)
        n_dim = max(dims.n, 1)
        if node.op_type in ("conv2d", "depthwise_conv2d"):
            # Direct convolution reads each input element once per output
            # tile that covers it — NOT the im2col-expanded M*K footprint
            # (overlapping patches are served from shared memory).
            inputs = input_tensors(node.tensor.op.body)  # type: ignore[union-attr]
            sizes = sorted((t.size_bytes for t in inputs), reverse=True)
            lhs_bytes = float(sizes[0]) if sizes else 0.0
            rhs_bytes = float(sum(sizes[1:]))
        else:
            lhs_bytes = float(dims.batch * dims.m * dims.k * bytes_el)
            rhs_bytes = float(dims.batch * dims.k * n_dim * bytes_el)
        loads = _l2_filtered(
            lhs_bytes, _ceil_div(n_dim, tj), device.l2_cache_bytes
        ) + _l2_filtered(rhs_bytes, _ceil_div(dims.m, ti), device.l2_cache_bytes)
        stores = dims.batch * dims.m * n_dim * bytes_el
        flops = 2.0 * dims.batch * dims.m * max(dims.n, 1) * dims.k
        return TESchedule(
            node=node,
            kind=CONV if node.op_type in ("conv2d", "depthwise_conv2d") else MATMUL,
            tile=(ti, tj, tk),
            grid_blocks=blocks,
            threads_per_block=threads,
            shared_mem_per_block=smem,
            regs_per_thread=regs,
            use_tensor_core=use_tc,
            load_bytes=float(loads),
            store_bytes=float(stores),
            fp16_flops=flops if use_tc else 0.0,
            fp32_flops=0.0 if use_tc else flops,
        )

    def _contraction_steps(self, schedule: TESchedule) -> List[ScheduleStep]:
        ti, tj, tk = schedule.tile
        return [
            ScheduleStep("split", f"i, j, k -> {ti}, {tj}, {tk}"),
            ScheduleStep("reorder", "io, jo, ko, ii, jj, ki"),
            ScheduleStep("cache_read", "inputs -> shared (double buffered)"),
            ScheduleStep("bind", "io*jo -> blockIdx.x, inner -> threadIdx"),
        ]

    # ---- reduction template -----------------------------------------------------

    def _schedule_reduce(self, node: TENode) -> TESchedule:
        tensor = node.tensor
        assert tensor.op is not None and isinstance(tensor.op.body, Reduce)
        out_elems = tensor.num_elements
        reduce_size = 1
        for ax in tensor.op.body.axes:
            reduce_size *= ax.extent
        bytes_el = dtype_bytes(tensor.dtype)
        inputs = input_tensors(tensor.op.body)
        load_bytes = float(sum(t.size_bytes for t in inputs))
        flops = float(te_flops(tensor))
        threads = 256
        steps = [ScheduleStep("split", f"reduce domain {reduce_size}")]

        if not is_two_phase_reduction(tensor):
            # One warp per output row, persistent-style: blocks never exceed
            # one wave; extra rows are looped serially inside each block.
            rows_per_block = threads // self.device.warp_size
            blocks = _ceil_div(out_elems, rows_per_block)
            blocks = min(blocks, self._wave_cap(threads))
            atomic = 0.0
            smem = threads * bytes_el
            steps.append(ScheduleStep("bind", "row -> warp, rows -> blockIdx.x"))
        else:
            # Two-phase reduction: per-block partials + global atomicAdd,
            # exactly the paper's aggressive reduction fusion substrate
            # (Sec. 2.3 "partial reduction ... atomicAdd for global
            # reduction").
            blocks = max(1, min(_ceil_div(reduce_size, 2048), 2 * self.device.sm_count))
            atomic = float(blocks * out_elems * bytes_el)
            smem = threads * bytes_el
            steps.append(
                ScheduleStep("rfactor", f"{blocks} partial blocks + atomicAdd")
            )

        return TESchedule(
            node=node,
            kind=REDUCE,
            tile=(0, 0, 0),
            grid_blocks=blocks,
            threads_per_block=threads,
            shared_mem_per_block=smem,
            regs_per_thread=32,
            use_tensor_core=False,
            load_bytes=load_bytes,
            store_bytes=float(tensor.size_bytes),
            fp16_flops=0.0,
            fp32_flops=flops,
            atomic_bytes=atomic,
            steps=steps,
        )

    # ---- elementwise template -----------------------------------------------------

    def _schedule_elementwise(self, node: TENode) -> TESchedule:
        tensor = node.tensor
        assert tensor.op is not None
        elems = tensor.num_elements
        bytes_el = dtype_bytes(tensor.dtype)
        inputs = input_tensors(tensor.op.body)
        load_bytes = float(sum(t.size_bytes for t in inputs))
        arith = count_arith_ops(tensor.op.body)
        threads = 256
        items_per_thread = 4
        blocks = max(1, _ceil_div(elems, threads * items_per_thread))
        blocks = min(blocks, self._wave_cap(threads))
        return TESchedule(
            node=node,
            kind=ELEMENTWISE,
            tile=(0, 0, 0),
            grid_blocks=blocks,
            threads_per_block=threads,
            shared_mem_per_block=0,
            regs_per_thread=24,
            use_tensor_core=False,
            load_bytes=load_bytes,
            store_bytes=float(elems * bytes_el),
            fp16_flops=0.0,
            fp32_flops=float(arith * elems),
            steps=[
                ScheduleStep("fuse", "all spatial axes"),
                ScheduleStep("bind", f"grid {blocks} x {threads}, ilp=4"),
            ],
        )

    def _wave_cap(self, threads: int) -> int:
        """Grid-size cap for persistent-style memory-bound schedules: one
        wave of resident blocks; extra work loops inside each block."""
        return max(self.device.max_blocks_per_wave(threads, 0), 1)

    # ---- cost -----------------------------------------------------------------

    def _estimate(self, schedule: TESchedule) -> float:
        kernel = KernelSpec(
            name=f"probe_{schedule.node.name}",
            grid_blocks=schedule.grid_blocks,
            threads_per_block=schedule.threads_per_block,
            shared_mem_per_block=schedule.shared_mem_per_block,
            regs_per_thread=schedule.regs_per_thread,
            fp16_flops=schedule.fp16_flops,
            fp32_flops=schedule.fp32_flops,
            load_bytes=schedule.load_bytes,
            store_bytes=schedule.store_bytes,
            atomic_bytes=schedule.atomic_bytes,
        )
        return self.simulator.run_kernel(kernel).time_us
