"""Schedule objects and primitives.

A :class:`TESchedule` records how one TE maps onto the GPU: tiling, launch
geometry, resource footprint and the standalone-kernel traffic/work numbers
the partitioner (Sec. 5.4) and the kernel builders consume. The primitive
trace (`steps`) mirrors TVM's schedule language as used in the paper's
Fig. 2 (`split`, `reorder`, `cache_read`, `bind`, `compute_at`, `inline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import ScheduleError
from repro.graph.te_program import TENode

# Schedule kinds.
MATMUL = "matmul"          # tensor-core eligible contraction
CONV = "conv"              # direct convolution (implicit-GEMM cost shape)
REDUCE = "reduce"          # generic one-relies-on-many TE
ELEMENTWISE = "elementwise"
OPAQUE = "opaque"          # library fallback (paper Sec. 9)


@dataclass
class ScheduleStep:
    """One schedule primitive application, for inspection/printing."""

    primitive: str
    detail: str

    def __repr__(self) -> str:
        return f"s.{self.primitive}({self.detail})"


@dataclass
class TESchedule:
    """A complete schedule for one TE (or a fused TE group leader)."""

    node: TENode
    kind: str
    tile: Tuple[int, int, int]           # (ti, tj, tk); (0,0,0) if n/a
    grid_blocks: int
    threads_per_block: int
    shared_mem_per_block: int            # bytes
    regs_per_thread: int
    use_tensor_core: bool
    load_bytes: float                    # standalone-kernel global loads
    store_bytes: float                   # standalone-kernel global stores
    fp16_flops: float
    fp32_flops: float
    atomic_bytes: float = 0.0
    steps: List[ScheduleStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ScheduleError(f"schedule for {self.node.name} has no blocks")
        if self.threads_per_block <= 0:
            raise ScheduleError(f"schedule for {self.node.name} has no threads")

    @property
    def total_flops(self) -> float:
        return self.fp16_flops + self.fp32_flops

    def occupancy_bytes(self) -> int:
        """Per-block shared-memory occupancy: the ``max_occ`` contribution in
        the paper's ``max_grid * max_occ < C`` partitioning constraint."""
        return self.shared_mem_per_block

    def with_traffic(self, load_bytes: float, store_bytes: float) -> "TESchedule":
        """Copy with adjusted traffic (used when fusion removes accesses)."""
        return replace(self, load_bytes=load_bytes, store_bytes=store_bytes)

    def describe(self) -> str:
        lines = [
            f"schedule[{self.node.name}] kind={self.kind} tile={self.tile} "
            f"grid={self.grid_blocks} threads={self.threads_per_block} "
            f"smem={self.shared_mem_per_block}B tc={self.use_tensor_core}"
        ]
        lines.extend(f"  {step!r}" for step in self.steps)
        return "\n".join(lines)
