"""Roller-style deterministic scheduler (paper Sec. 8.5).

"This overhead can be reduced by using faster optimizer like Roller, which
is orthogonal of Souffle." Roller (OSDI'22) replaces Ansor's search with a
*construction*: pick an rTile whose shapes align with the hardware's native
sizes (tensor-core fragment shapes, memory-transaction widths) and scale it
up until a resource budget is met — no candidate simulation at all.

This module implements that recipe against our device model and exposes the
same oracle interface as :class:`repro.schedule.ansor.AnsorScheduler`, so
``SouffleCompiler(scheduler_factory=RollerScheduler)`` swaps it in. The
ablation benchmark ``benchmarks/test_ablation_scheduler.py`` compares both
on compile time and schedule quality.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.characterize import _structure_key
from repro.errors import ScheduleError
from repro.gpu.device import GPUSpec
from repro.graph.te_program import TENode
from repro.schedule.ansor import (
    AnsorScheduler,
    ContractionDims,
    _ceil_div,
    _l2_filtered,
    contraction_dims,
)
from repro.schedule.schedule import CONV, MATMUL, ScheduleStep, TESchedule
from repro.te.expr import Reduce
from repro.te.tensor import dtype_bytes
from repro.te.traversal import input_tensors

# Native alignment units: a tensor-core fragment is 16x16x16; a 128-byte
# memory transaction holds 64 halves / 32 floats.
TC_FRAGMENT = 16
MAX_TILE = 128


def construct_rtile(device: GPUSpec, dims: ContractionDims,
                    bytes_el: int) -> tuple:
    """Roller's rTile construction: start from the hardware-native fragment
    and scale alternating dimensions while

      * the launch still *saturates* the device (>= one block per SM), and
      * the double-buffered staging stays within the shared-memory budget,
      * the thread block stays schedulable (threads/registers fit one SM).

    Deterministic; no candidate is ever simulated.
    """

    def blocks(ti: int, tj: int) -> int:
        return dims.batch * _ceil_div(dims.m, ti) * _ceil_div(max(dims.n, 1), tj)

    def feasible(ti: int, tj: int, tk: int) -> bool:
        smem = (ti * tk + tk * tj) * bytes_el * 2
        if smem > device.shared_mem_per_sm // 2:
            return False
        warps = max((ti // TC_FRAGMENT) * (tj // TC_FRAGMENT), 1)
        threads = min(warps * 32, device.max_threads_per_block)
        return device.blocks_per_sm(threads, smem, 96) >= 1

    ti = tj = TC_FRAGMENT
    tk = TC_FRAGMENT
    # Alternate enlarging the output tile while the grid saturates the SMs.
    progress = True
    while progress:
        progress = False
        for grow_i in (True, False):
            cand_ti = ti * 2 if grow_i else ti
            cand_tj = tj if grow_i else tj * 2
            if cand_ti > MAX_TILE or cand_tj > MAX_TILE:
                continue
            if grow_i and cand_ti > 2 * dims.m:
                continue
            if not grow_i and cand_tj > 2 * max(dims.n, 1):
                continue
            if blocks(cand_ti, cand_tj) < device.sm_count:
                continue
            if not feasible(cand_ti, cand_tj, tk):
                continue
            ti, tj = cand_ti, cand_tj
            progress = True

    # Deepen the reduction stage within the remaining shared-memory budget.
    while tk * 2 <= min(64, 2 * dims.k) and feasible(ti, tj, tk * 2):
        tk *= 2
    return ti, tj, tk


class RollerScheduler(AnsorScheduler):
    """Construction-based scheduling: aligned rTiles, zero search.

    Inherits the reduction/elementwise templates (already deterministic)
    and replaces only the contraction search. The inherited persistent-cache
    support (``attach_cache``) keys entries by scheduler class, so Roller
    and Ansor never serve each other's schedules from the same cache
    directory; a persistent hit skips the construction entirely (the
    ``constructions`` counter then stays flat, mirroring how cached Ansor
    lookups leave ``search_trials`` flat).
    """

    def __init__(self, device: GPUSpec) -> None:
        super().__init__(device)
        self.constructions = 0  # replaces search_trials as the effort metric

    def _schedule_contraction(
        self, node: TENode, dims: ContractionDims
    ) -> TESchedule:
        tensor = node.tensor
        use_tc = tensor.dtype == "float16"
        bytes_el = dtype_bytes(tensor.dtype)
        self.constructions += 1

        ti, tj, tk = construct_rtile(self.device, dims, bytes_el)
        candidate = self._contraction_candidate(
            node, dims, ti, tj, tk, use_tc, bytes_el
        )
        if candidate is None:
            return self._schedule_reduce(node)
        candidate.steps.append(
            ScheduleStep(
                "rtile",
                f"aligned rTile ({ti},{tj},{tk}) — constructed, not searched",
            )
        )
        candidate.steps.extend(self._contraction_steps(candidate))
        return candidate


def compare_schedulers(
    node: TENode, device: GPUSpec
) -> Dict[str, TESchedule]:
    """Schedule one TE with both oracles (used by tests and the ablation)."""
    return {
        "ansor": AnsorScheduler(device).schedule(node),
        "roller": RollerScheduler(device).schedule(node),
    }
