"""Compiler options: the paper's cumulative optimisation levels (Table 4).

    V0  TVM + Ansor generated code (per-TE kernels with epilogue fusion)
    V1  + horizontal TE transformation          (Sec. 6.1)
    V2  + vertical TE transformation            (Sec. 6.2)
    V3  + global synchronisation / big kernels  (Sec. 5.4, 6.4)
    V4  + subprogram-level optimisation         (Sec. 6.5: pipeline + reuse)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SouffleOptions:
    """Feature toggles of the Souffle pipeline."""

    horizontal: bool = True
    vertical: bool = True
    global_sync: bool = True
    subprogram_opt: bool = True
    validate: bool = False  # differentially check every transformation
    verify: bool = False    # statically verify the IR at every pipeline stage
    # Serve through plan-optimized execution plans (runtime step fusion,
    # weight hoisting, in-place elision, wave scheduling). Orthogonal to
    # the V-levels: it rewrites the *runtime* step list, not the TE IR.
    optimize_plans: bool = True
    # Replay plans through the task-graph scheduler (runtime.task_graph):
    # one persistent dependency table per plan, workers pulling ready steps
    # with no per-wave barriers. Off by default; the wave scheduler stays
    # the reference serving engine.
    graph_executor: bool = False
    # Block-level tiling of map->reduce->map chains (runtime.tiling):
    # cache-blocked sub-steps with per-worker scratch, applied by the plan
    # optimizer when profitable. On by default; only meaningful when
    # optimize_plans is on.
    tile_reductions: bool = True
    # Translation validation (verify.equiv): emit a symbolic equivalence
    # certificate per transform application and gate the compile on any
    # refuted certificate. ``certify_unknown`` picks what an *unknown*
    # verdict does: "warn" (default) renders a warning diagnostic, "fail"
    # aborts the compile like a refutation.
    certify: bool = False
    certify_unknown: str = "warn"
    # Record per-step execution timings into the persistent profile store
    # (runtime.profile_store), keyed by program hash and shape bucket.
    # Off by default: profiling adds a per-request bookkeeping cost and
    # most sessions only *consume* profiles (through the cost model).
    collect_profiles: bool = False

    @classmethod
    def from_level(cls, level: int, validate: bool = False,
                   verify: bool = False,
                   optimize_plans: bool = True,
                   graph_executor: bool = False,
                   tile_reductions: bool = True,
                   certify: bool = False,
                   certify_unknown: str = "warn",
                   collect_profiles: bool = False) -> "SouffleOptions":
        """Build the Table-4 ablation configuration V<level>."""
        if not 0 <= level <= 4:
            raise ValueError(f"optimisation level must be 0..4, got {level}")
        return cls(
            horizontal=level >= 1,
            vertical=level >= 2,
            global_sync=level >= 3,
            subprogram_opt=level >= 4,
            validate=validate,
            verify=verify,
            optimize_plans=optimize_plans,
            graph_executor=graph_executor,
            tile_reductions=tile_reductions,
            certify=certify,
            certify_unknown=certify_unknown,
            collect_profiles=collect_profiles,
        )

    @property
    def level_name(self) -> str:
        level = (
            int(self.horizontal)
            + int(self.vertical)
            + int(self.global_sync)
            + int(self.subprogram_opt)
        )
        return f"V{level}"
