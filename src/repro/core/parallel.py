"""Worker-pool abstraction for independent per-subprogram compile work.

Subprograms are independent once partitioned, so their scheduling and kernel
construction can proceed concurrently. The pool guarantees:

* **deterministic ordering** — results come back in submission order, never
  completion order, so the kernel list (and everything derived from it) is
  identical to a serial build;
* **serial fallback** — any worker failure aborts the parallel attempt and
  re-runs the whole batch serially, so a threading issue can only cost time,
  never correctness (tasks must therefore be idempotent, which schedule
  memoisation and keyed cache writes are);
* **no pool for trivial batches** — one item or one worker short-circuits
  to a plain loop.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    if hasattr(os, "sched_getaffinity"):  # honours container CPU limits
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


class WorkerPool:
    """Maps a function over items with deterministic result ordering.

    ``max_workers=None`` auto-sizes to the machine; ``0``/``1`` force serial
    execution. After :meth:`map`, ``used_workers`` and ``fell_back`` report
    what actually happened (for :class:`repro.runtime.module.CompileStats`).
    """

    def __init__(
        self, max_workers: Optional[int] = None, persistent: bool = False
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0, got {max_workers}")
        self.max_workers = max_workers
        self.used_workers = 1
        self.fell_back = False
        # A persistent pool keeps one ThreadPoolExecutor alive across calls:
        # per-request dispatch (the executor's wave scheduler) cannot afford
        # thread spawn/teardown on every map. Compile-time batches keep the
        # default one-shot behaviour.
        self.persistent = persistent
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    def _resolve_workers(self, num_items: int) -> int:
        workers = self.max_workers
        if workers is None:
            workers = default_worker_count()
        return max(1, min(workers, num_items)) if num_items else 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """``[fn(item) for item in items]``, possibly concurrently."""
        items = list(items)
        workers = self._resolve_workers(len(items))
        self.used_workers = workers
        self.fell_back = False
        if workers <= 1 or len(items) <= 1:
            self.used_workers = 1
            return [fn(item) for item in items]
        try:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(fn, item) for item in items]
                # Collect in submission order; any failure propagates here.
                return [future.result() for future in futures]
        except Exception:
            # Degrade, never break: one full serial re-run. If the failure
            # was not concurrency-related the serial pass raises it cleanly.
            self.fell_back = True
            self.used_workers = 1
            return [fn(item) for item in items]

    def _shared_executor(self) -> Optional[ThreadPoolExecutor]:
        """The persistent executor, created lazily (``None`` if serial)."""
        workers = self.max_workers
        if workers is None:
            workers = default_worker_count()
        if workers <= 1:
            return None
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-wave",
                )
            return self._executor

    def run_all(self, thunks: Sequence[Callable[[], None]]) -> None:
        """Run independent zero-arg tasks, concurrently when possible.

        The wave-dispatch entry point: tasks have no results to order and
        are *not* idempotent once partially run (a step may have overwritten
        a dying operand's bytes in place), so unlike :meth:`map` a task
        exception propagates instead of triggering a serial re-run. Serial
        fallback applies only *before* any task starts — one worker, one
        task, no persistent pool, or a pool that cannot accept work.
        """
        thunks = list(thunks)
        if len(thunks) <= 1 or not self.persistent:
            for thunk in thunks:
                thunk()
            return
        pool = self._shared_executor()
        if pool is None:
            for thunk in thunks:
                thunk()
            return
        try:
            futures = [pool.submit(thunk) for thunk in thunks]
        except RuntimeError:
            # Pool shut down (interpreter teardown): degrade to serial.
            for thunk in thunks:
                thunk()
            return
        for future in futures:
            future.result()

    def submit(self, fn: Callable[..., None], *args) -> Optional[object]:
        """Fire one task on the persistent executor (``None`` if serial).

        The task-graph executor's helper-worker entry point: helpers are
        best-effort — a serial pool, a single-CPU box, or a shut-down
        executor simply returns ``None`` and the caller keeps the work on
        its own thread. Correctness never depends on a submission landing.
        """
        if not self.persistent:
            return None
        pool = self._shared_executor()
        if pool is None:
            return None
        try:
            return pool.submit(fn, *args)
        except RuntimeError:
            return None

    def close(self) -> None:
        """Shut the persistent executor down (tests / explicit teardown)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
