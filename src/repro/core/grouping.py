"""Kernel-grouping strategies shared by Souffle's non-sync modes and the
baseline compilers.

Bottom-up compilers decide kernel boundaries by *fusion rules*; this module
implements the rule families the paper attributes to each system:

* ``singleton``   — one kernel per TE (the unfused reference of Fig. 5a);
* ``epilogue``    — elementwise TEs fuse into their producer's kernel
  (TVM/Ansor-style producer-consumer fusion);
* parameterised variants used by the baselines (e.g. XLA cannot fuse through
  library GEMM calls; Apollo only merges memory-bound neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.analysis.characterize import TECharacter
from repro.graph.te_program import TENode, TEProgram
from repro.schedule.ansor import is_two_phase_reduction
from repro.te.patterns import is_reduction

CI = "ci"
MI_ELEM = "mi-elem"
MI_REDUCE = "mi-reduce"


def node_kind(node: TENode, chars: Dict[TENode, TECharacter]) -> str:
    """Coarse TE category used by grouping rules."""
    if chars[node].is_compute_intensive:
        return CI
    if is_reduction(node.tensor):
        return MI_REDUCE
    return MI_ELEM


@dataclass(frozen=True)
class FusionRules:
    """What a bottom-up compiler's rules allow an elementwise TE to fuse into.

    ``elem_into_ci``: epilogue fusion into a compute-intensive producer
    (impossible for XLA, which calls cuBLAS for GEMMs).
    ``elem_into_reduce``: fusion after a row-wise reduction (e.g. softmax's
    div after its sum).
    ``elem_into_elem``: chaining elementwise TEs into one kernel.
    ``fuse_composites``: all TEs lowered from one composite graph operator
    (softmax, layernorm, ...) share a kernel — the hand-written fused
    kernels vendor libraries ship (TensorRT's fused softmax/LN).
    """

    elem_into_ci: bool = True
    elem_into_reduce: bool = True
    elem_into_elem: bool = True
    fuse_composites: bool = False
    # Prologue fusion: a pure memory operator (reshape/transpose/slice)
    # whose only consumer is a contraction folds into that consumer's kernel
    # (TVM inlines injective producers; TensorRT folds transposes into GEMM
    # operand modes). XLA cannot — its GEMMs are opaque cuBLAS calls.
    memory_into_consumer: bool = True


ANSOR_RULES = FusionRules()
XLA_RULES = FusionRules(elem_into_ci=False, memory_into_consumer=False)
APOLLO_RULES = FusionRules(elem_into_ci=False, elem_into_reduce=False,
                           memory_into_consumer=False)
TENSORRT_RULES = FusionRules(fuse_composites=True)


def singleton_groups(program: TEProgram) -> List[List[TENode]]:
    """One kernel per TE."""
    return [[node] for node in program]


def epilogue_groups(
    program: TEProgram,
    chars: Dict[TENode, TECharacter],
    rules: FusionRules = ANSOR_RULES,
) -> List[List[TENode]]:
    """Producer-consumer epilogue fusion under the given rules.

    Walks the program in order; an elementwise TE joins the group of one of
    its producers when the rules permit a sync-free attachment, otherwise it
    starts a new group. Compute-intensive and reduction TEs always anchor a
    fresh group.
    """
    groups: List[List[TENode]] = []
    group_of: Dict[TENode, int] = {}

    # Prologue fusion: memory ops whose single consumer is compute-intensive
    # ride along into that consumer's kernel (decided up-front so the main
    # walk can skip them and pull them in when the consumer anchors).
    from repro.graph.op import ELEMENTWISE_MEMORY_OPS

    deferred_to: Dict[TENode, TENode] = {}
    if rules.memory_into_consumer:
        for node in reversed(program.nodes):  # reverse: chains defer together
            if node.op_type not in ELEMENTWISE_MEMORY_OPS:
                continue
            if program.is_output(node.tensor):
                continue
            consumers = program.node_consumers(node)
            if len(consumers) != 1:
                continue
            consumer = consumers[0]
            if node_kind(consumer, chars) == CI or consumer in deferred_to:
                deferred_to[node] = consumer

    prologues: Dict[TENode, List[TENode]] = {}
    for producer, consumer in deferred_to.items():
        # Follow chains: reshape -> transpose -> GEMM defers both.
        root = consumer
        while root in deferred_to:
            root = deferred_to[root]
        prologues.setdefault(root, []).append(producer)

    for node in program:
        if node in deferred_to:
            continue
        kind = node_kind(node, chars)
        target: Optional[int] = None
        if rules.fuse_composites and not is_two_phase_reduction(node.tensor):
            # TEs decomposed from one composite operator (same source op)
            # share its hand-written fused kernel, provided no producer in
            # the group needs a device-wide sync before this TE — and the TE
            # itself is not a two-phase reduction (whose consumers would then
            # need a device-wide sync inside the fused kernel).
            for producer in program.node_producers(node):
                if (
                    producer in group_of
                    and producer.op_name == node.op_name
                    and not is_two_phase_reduction(producer.tensor)
                    and kind != CI
                ):
                    candidate = group_of[producer]
                    target = candidate if target is None else max(target, candidate)
            if target is not None:
                latest = max(
                    group_of[p] for p in program.node_producers(node)
                )
                if target < latest:
                    target = None
        if target is None and kind == MI_ELEM:
            producers = program.node_producers(node)
            latest_producer_group = max(
                (group_of[p] for p in producers), default=-1
            )
            for producer in producers:
                pkind = node_kind(producer, chars)
                allowed = (
                    (pkind == CI and rules.elem_into_ci)
                    or (
                        pkind == MI_REDUCE
                        and rules.elem_into_reduce
                        # A two-phase (atomic) reduction finishes only after a
                        # device-wide sync; without grid sync the consumer must
                        # live in a later kernel.
                        and not is_two_phase_reduction(producer.tensor)
                    )
                    or (pkind == MI_ELEM and rules.elem_into_elem)
                )
                if not allowed:
                    continue
                candidate = group_of[producer]
                target = candidate if target is None else max(target, candidate)
            # Kernels execute in group order: the node may only join a group
            # no earlier than all of its producers' groups.
            if target is not None and target < latest_producer_group:
                target = None
        if target is None:
            groups.append([])
            target = len(groups) - 1
        for prologue in sorted(prologues.get(node, []), key=lambda n: n.index):
            groups[target].append(prologue)
            group_of[prologue] = target
        groups[target].append(node)
        group_of[node] = target
    return groups


def wavefront_merge(
    program: TEProgram,
    groups: List[List[TENode]],
    max_groups_per_kernel: int = 10,
) -> List[List[TENode]]:
    """Rammer-style inter-operator co-scheduling.

    Independent groups at the same dependency level merge into one kernel
    (rTask co-scheduling): the LSTM wavefront of Fig. 7(a). Groups at the
    same level have no dataflow between them, so the merged kernel stays
    sync-free.
    """
    group_index: Dict[TENode, int] = {}
    for gi, group in enumerate(groups):
        for node in group:
            group_index[node] = gi

    level: Dict[int, int] = {}
    for gi, group in enumerate(groups):
        lvl = 0
        for node in group:
            for producer in program.node_producers(node):
                pg = group_index[producer]
                if pg != gi:
                    lvl = max(lvl, level[pg] + 1)
        level[gi] = lvl

    by_level: Dict[int, List[int]] = {}
    for gi in range(len(groups)):
        by_level.setdefault(level[gi], []).append(gi)

    merged: List[List[TENode]] = []
    for lvl in sorted(by_level):
        members = by_level[lvl]
        for start in range(0, len(members), max_groups_per_kernel):
            bundle: List[TENode] = []
            for gi in members[start : start + max_groups_per_kernel]:
                bundle.extend(groups[gi])
            merged.append(bundle)
    return merged
