"""Souffle core: the compiler pipeline and its options."""

from repro.core.config import SouffleOptions
from repro.core.grouping import (
    ANSOR_RULES,
    APOLLO_RULES,
    XLA_RULES,
    FusionRules,
    epilogue_groups,
    singleton_groups,
    wavefront_merge,
)
from repro.core.souffle import SouffleCompiler, compile_model

__all__ = [
    "ANSOR_RULES",
    "APOLLO_RULES",
    "FusionRules",
    "SouffleCompiler",
    "SouffleOptions",
    "XLA_RULES",
    "compile_model",
    "epilogue_groups",
    "singleton_groups",
    "wavefront_merge",
]
