"""The Souffle compiler: the paper's primary contribution, end to end.

Pipeline (Fig. 2):

    1. TE lowering                      (repro.graph.lowering)
    2. global computation-graph analysis (repro.analysis)
    3. resource-aware partitioning       (repro.analysis.partition)
    4. semantic-preserving TE transforms (repro.transform)
    5. joint optimisation + codegen      (repro.tir) -> merged kernels

The implementation runs the TE transformations before partitioning: both
orders produce the same kernels here because partition boundaries anchor on
compute-intensive TEs, which the transformations never dissolve; doing the
transforms first lets partitioning see the cleaned program (fewer TEs, the
merged horizontal contractions) and keeps each pass whole-program.

Compile acceleration (``repro.cache`` + ``repro.core.parallel``): a
persistent two-tier cache makes repeat compilation near-free (per-TE
schedules, then whole modules), and independent subprograms are built by a
worker pool. Both paths are provably inert — the differential suite asserts
cold/warm/serial/parallel compiles emit byte-identical kernels.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.characterize import characterize_program
from repro.analysis.partition import Partitioner
from repro.cache import (
    CompileCache,
    module_cache_key,
    resolve_compile_cache,
)
from repro.core.config import SouffleOptions
from repro.core.grouping import ANSOR_RULES, epilogue_groups
from repro.core.parallel import WorkerPool
from repro.gpu.device import GPUSpec, a100_40gb
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.graph.te_program import TEProgram
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.schedule.ansor import AnsorScheduler
from repro.tir.build import BuiltKernel, build_kernel
from repro.tir.pipeline import apply_pipeline
from repro.tir.reuse_cache import apply_reuse, cache_capacity_bytes
from repro.transform.horizontal import horizontal_transform
from repro.transform.semantics import assert_equivalent
from repro.transform.vertical import vertical_transform
from repro.verify import assert_verified, verify_kernels_or_raise
from repro.verify.equiv import (
    EquivalenceCertificate,
    certify_te_transform,
    gate_certificates,
)


class SouffleCompiler:
    """Top-down DNN inference compiler over tensor expressions.

    ``cache`` accepts ``None`` (honour ``$REPRO_CACHE_DIR``), ``False``
    (never cache), a directory path, or a :class:`repro.cache.CompileCache`.
    ``max_workers`` sizes the subprogram build pool (``None`` auto-sizes,
    ``0``/``1`` force a serial build).
    """

    name = "souffle"

    def __init__(
        self,
        device: Optional[GPUSpec] = None,
        options: Optional[SouffleOptions] = None,
        scheduler_factory=AnsorScheduler,
        cache=None,
        max_workers: Optional[int] = 1,
    ) -> None:
        self.device = device or a100_40gb()
        self.options = options or SouffleOptions()
        # The schedule oracle is pluggable (paper Sec. 8.5: "can be reduced
        # by using faster optimizer like Roller, which is orthogonal").
        self.scheduler_factory = scheduler_factory
        self.cache: Optional[CompileCache] = resolve_compile_cache(cache)
        self.max_workers = max_workers

    # ---- pipeline front half -------------------------------------------------

    def _front_half(
        self,
        model: Union[Graph, TEProgram],
        stats: CompileStats,
        certificates: Optional[List[EquivalenceCertificate]] = None,
    ) -> TEProgram:
        """Lowering + semantic-preserving TE transformations (Sec. 6).

        Each transformation is differentially validated against its own
        input, so the validation chain covers the whole pipeline without
        re-checking any pair twice: original == horizontal(original) and
        horizontal(original) == vertical(horizontal(original)) together pin
        original == final by transitivity. With ``options.certify`` the
        same chain is discharged *statically*: every transform application
        emits equivalence certificates (collected into ``certificates``)
        and a refutation aborts the compile at the offending stage.
        """
        options = self.options

        def certify(before: TEProgram, after: TEProgram, name: str) -> None:
            if not options.certify or certificates is None:
                return
            with PhaseTimer(stats, "certify"):
                certificate = certify_te_transform(before, after, name)
            certificates.append(certificate)
            gate_certificates(
                [certificate], f"{name}_transform", options.certify_unknown
            )

        with PhaseTimer(stats, "lowering"):
            program = lower_graph(model) if isinstance(model, Graph) else model
        if options.verify:
            assert_verified(program, "lowering")

        if options.horizontal:
            before = program
            with PhaseTimer(stats, "horizontal_transform"):
                program, _ = horizontal_transform(program)
            if options.validate:
                assert_equivalent(before, program)
            if options.verify:
                assert_verified(program, "horizontal_transform")
            certify(before, program, "horizontal")
        if options.vertical:
            before = program
            with PhaseTimer(stats, "vertical_transform"):
                program, _ = vertical_transform(program)
            if options.validate:
                assert_equivalent(before, program)
            if options.verify:
                assert_verified(program, "vertical_transform")
            certify(before, program, "vertical")
        return program

    # ---- cache plumbing ------------------------------------------------------

    def _module_key(self, model: Union[Graph, TEProgram]) -> Optional[str]:
        scheduler_name = getattr(
            self.scheduler_factory, "__name__", repr(self.scheduler_factory)
        )
        try:
            return module_cache_key(
                model, self.device, self.options, scheduler_name
            )
        except Exception:
            # An unhashable model only loses caching, never the compile.
            return None

    def _load_cached_module(
        self, key: str, model: Union[Graph, TEProgram], stats: CompileStats
    ) -> Optional[CompiledModule]:
        assert self.cache is not None and self.cache.modules is not None

        def materialise_program() -> TEProgram:
            return self._front_half(model, CompileStats())

        with PhaseTimer(stats, "cache_load"):
            module = self.cache.modules.load(
                key, self.device, stats, program_loader=materialise_program
            )
        if module is not None:
            stats.module_cache_hit = True
        return module

    # ---- compilation ---------------------------------------------------------

    def compile(self, model: Union[Graph, TEProgram]) -> CompiledModule:
        """Compile a model graph (or pre-lowered TE program) to kernels."""
        stats = CompileStats()
        options = self.options
        cache = self.cache

        mkey: Optional[str] = None
        if cache is not None and cache.modules is not None:
            mkey = self._module_key(model)
            if mkey is not None:
                module = self._load_cached_module(mkey, model, stats)
                if module is not None:
                    if not options.certify:
                        return module
                    # Certified warm path: replay the certificates from the
                    # cache tier (same content-addressed key as the module).
                    # No cached certificates -> fall through to a full
                    # certify-and-store compile; a certified compile never
                    # silently returns an uncertified module.
                    cached_certs = (
                        cache.certificates.load(mkey)
                        if cache.certificates is not None
                        else None
                    )
                    if cached_certs is not None:
                        gate_certificates(
                            cached_certs, "cache_load",
                            options.certify_unknown,
                        )
                        module.certificates = cached_certs
                        return module
                    stats.module_cache_hit = False

        certificates: List[EquivalenceCertificate] = []

        # ---- lowering + semantic-preserving TE transformations (Sec. 6) -----
        program = self._front_half(model, stats, certificates)

        # ---- global analysis (Sec. 5) ----------------------------------------
        with PhaseTimer(stats, "analysis"):
            chars = characterize_program(program)

        scheduler = self.scheduler_factory(self.device)
        schedule_snapshot: Dict[str, int] = {}
        if cache is not None and cache.schedules is not None and hasattr(
            scheduler, "attach_cache"
        ):
            scheduler.attach_cache(
                cache.schedules, options_token=options.level_name
            )
            schedule_snapshot = cache.schedules.stats.snapshot()

        # ---- partitioning / grouping -------------------------------------------
        with PhaseTimer(stats, "partitioning"):
            if options.global_sync:
                partitioner = Partitioner(self.device, scheduler)
                partition = partitioner.partition(program, chars)
                groups = [sp.nodes for sp in partition.subprograms]
                schedules = dict(partition.schedules)
            else:
                groups = epilogue_groups(program, chars, ANSOR_RULES)
                schedules = {}

        # ---- kernel construction (Sec. 6.4) ------------------------------------
        # Subprograms are independent: schedule lookups are lock-protected
        # and memoised, and each TE belongs to exactly one group, so the
        # worker pool builds them concurrently with identical results.
        def build_group(item: Tuple[int, List]) -> BuiltKernel:
            index, group = item
            kernel_name = f"{program.name}_sp{index}"
            start = time.perf_counter()
            built = build_kernel(
                name=kernel_name,
                nodes=group,
                program=program,
                chars=chars,
                schedules=schedules,
                scheduler=scheduler,
                device=self.device,
                allow_sync=options.global_sync,
            )
            stats.record_subprogram(kernel_name, time.perf_counter() - start)
            return built

        pool = WorkerPool(self.max_workers)
        with PhaseTimer(stats, "codegen"):
            kernels: List[BuiltKernel] = pool.map(
                build_group, list(enumerate(groups))
            )
        stats.parallel_workers = pool.used_workers
        stats.parallel_fallback = pool.fell_back
        if options.verify:
            verify_kernels_or_raise(kernels, self.device, program)

        # ---- subprogram-level optimisation (Sec. 6.5) -----------------------------
        if options.subprogram_opt:
            with PhaseTimer(stats, "subprogram_opt"):
                capacity = cache_capacity_bytes(
                    self.device.total_shared_mem, self.device.total_registers
                )
                for built, group in zip(kernels, groups):
                    built.reuse_report = apply_reuse(built.accesses, capacity)
                    built.refresh_traffic()
                    apply_pipeline(built, group, chars)

        stats.schedule_trials = scheduler.search_trials
        if schedule_snapshot:
            current = cache.schedules.stats.snapshot()
            stats.schedule_cache_hits = (
                current["hits"] - schedule_snapshot["hits"]
            )
            stats.schedule_cache_misses = (
                current["misses"] - schedule_snapshot["misses"]
            )

        module = CompiledModule(
            name=program.name,
            compiler=f"{self.name}-{options.level_name}",
            program=program,
            kernels=kernels,
            device=self.device,
            stats=stats,
            optimize_plans=options.optimize_plans,
            graph_executor=options.graph_executor,
            tile_reductions=options.tile_reductions,
            certificates=certificates,
        )

        if cache is not None and cache.modules is not None and mkey is not None:
            with PhaseTimer(stats, "cache_store"):
                cache.modules.store(mkey, module)
                if options.certify and cache.certificates is not None:
                    cache.certificates.save(mkey, certificates)
        return module


def compile_model(
    model: Union[Graph, TEProgram],
    device: Optional[GPUSpec] = None,
    level: int = 4,
    validate: bool = False,
    verify: bool = False,
    certify: bool = False,
    cache=None,
    max_workers: Optional[int] = 1,
) -> CompiledModule:
    """One-call convenience API: compile at optimisation level V0..V4."""
    compiler = SouffleCompiler(
        device=device,
        options=SouffleOptions.from_level(
            level, validate, verify, certify=certify
        ),
        cache=cache,
        max_workers=max_workers,
    )
    return compiler.compile(model)
