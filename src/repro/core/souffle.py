"""The Souffle compiler: the paper's primary contribution, end to end.

Pipeline (Fig. 2):

    1. TE lowering                      (repro.graph.lowering)
    2. global computation-graph analysis (repro.analysis)
    3. resource-aware partitioning       (repro.analysis.partition)
    4. semantic-preserving TE transforms (repro.transform)
    5. joint optimisation + codegen      (repro.tir) -> merged kernels

The implementation runs the TE transformations before partitioning: both
orders produce the same kernels here because partition boundaries anchor on
compute-intensive TEs, which the transformations never dissolve; doing the
transforms first lets partitioning see the cleaned program (fewer TEs, the
merged horizontal contractions) and keeps each pass whole-program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.characterize import characterize_program
from repro.analysis.partition import Partitioner
from repro.core.config import SouffleOptions
from repro.core.grouping import ANSOR_RULES, epilogue_groups
from repro.gpu.device import GPUSpec, a100_40gb
from repro.graph.graph import Graph
from repro.graph.lowering import lower_graph
from repro.graph.te_program import TEProgram
from repro.runtime.module import CompiledModule, CompileStats, PhaseTimer
from repro.schedule.ansor import AnsorScheduler
from repro.tir.build import BuiltKernel, build_kernel
from repro.tir.pipeline import apply_pipeline
from repro.tir.reuse_cache import apply_reuse, cache_capacity_bytes
from repro.transform.horizontal import horizontal_transform
from repro.transform.semantics import assert_equivalent
from repro.transform.vertical import vertical_transform


class SouffleCompiler:
    """Top-down DNN inference compiler over tensor expressions."""

    name = "souffle"

    def __init__(
        self,
        device: Optional[GPUSpec] = None,
        options: Optional[SouffleOptions] = None,
        scheduler_factory=AnsorScheduler,
    ) -> None:
        self.device = device or a100_40gb()
        self.options = options or SouffleOptions()
        # The schedule oracle is pluggable (paper Sec. 8.5: "can be reduced
        # by using faster optimizer like Roller, which is orthogonal").
        self.scheduler_factory = scheduler_factory

    def compile(self, model: Union[Graph, TEProgram]) -> CompiledModule:
        """Compile a model graph (or pre-lowered TE program) to kernels."""
        stats = CompileStats()
        options = self.options

        with PhaseTimer(stats, "lowering"):
            program = lower_graph(model) if isinstance(model, Graph) else model
        original = program

        # ---- semantic-preserving TE transformations (Sec. 6) ----------------
        if options.horizontal:
            with PhaseTimer(stats, "horizontal_transform"):
                program, _ = horizontal_transform(program)
            if options.validate:
                assert_equivalent(original, program)
        if options.vertical:
            with PhaseTimer(stats, "vertical_transform"):
                program, _ = vertical_transform(program)
            if options.validate:
                assert_equivalent(original, program)

        # ---- global analysis (Sec. 5) ----------------------------------------
        with PhaseTimer(stats, "analysis"):
            chars = characterize_program(program)

        scheduler = self.scheduler_factory(self.device)

        # ---- partitioning / grouping -------------------------------------------
        with PhaseTimer(stats, "partitioning"):
            if options.global_sync:
                partitioner = Partitioner(self.device, scheduler)
                partition = partitioner.partition(program, chars)
                groups = [sp.nodes for sp in partition.subprograms]
                schedules = dict(partition.schedules)
            else:
                groups = epilogue_groups(program, chars, ANSOR_RULES)
                schedules = {}

        # ---- kernel construction (Sec. 6.4) ------------------------------------
        kernels: List[BuiltKernel] = []
        with PhaseTimer(stats, "codegen"):
            for index, group in enumerate(groups):
                kernels.append(
                    build_kernel(
                        name=f"{program.name}_sp{index}",
                        nodes=group,
                        program=program,
                        chars=chars,
                        schedules=schedules,
                        scheduler=scheduler,
                        device=self.device,
                        allow_sync=options.global_sync,
                    )
                )

        # ---- subprogram-level optimisation (Sec. 6.5) -----------------------------
        if options.subprogram_opt:
            with PhaseTimer(stats, "subprogram_opt"):
                capacity = cache_capacity_bytes(
                    self.device.total_shared_mem, self.device.total_registers
                )
                for built, group in zip(kernels, groups):
                    built.reuse_report = apply_reuse(built.accesses, capacity)
                    built.refresh_traffic()
                    apply_pipeline(built, group, chars)

        stats.schedule_trials = scheduler.search_trials
        return CompiledModule(
            name=program.name,
            compiler=f"{self.name}-{options.level_name}",
            program=program,
            kernels=kernels,
            device=self.device,
            stats=stats,
        )


def compile_model(
    model: Union[Graph, TEProgram],
    device: Optional[GPUSpec] = None,
    level: int = 4,
    validate: bool = False,
) -> CompiledModule:
    """One-call convenience API: compile at optimisation level V0..V4."""
    compiler = SouffleCompiler(
        device=device, options=SouffleOptions.from_level(level, validate)
    )
    return compiler.compile(model)
