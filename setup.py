"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build. ``python setup.py
develop`` installs an egg-link without needing wheel. Metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
