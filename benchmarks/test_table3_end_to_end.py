"""Table 3 — end-to-end model runtime (ms), all 6 models x 7 systems.

Paper reference (A100, batch 1, ms):

    Model        XLA    Ansor   TRT   Rammer  Apollo   IREE    Ours
    BERT         2.55    2.31   1.30    2.19    3.29    2.22    1.22
    ResNeXt      8.91   20.50  24.82   11.69   22.80  314.8     4.43
    LSTM        10.57    6.78   6.30    1.72  Failed   16.0     0.80
    EfficientNet 2.96    0.91   1.21  Failed    2.3    12.33    0.66
    SwinTrans.   6.43    5.81   1.74  Failed   10.78   18.1     1.55
    MMoE         0.29    0.034  0.070 Failed   0.049   0.088    0.014

Shape to reproduce: Souffle fastest on every model; TensorRT the strongest
baseline on transformers; Rammer the strongest baseline on LSTM; IREE
catastrophic on ResNeXt; geometric-mean speedups in the "several x" range.
"""

import pytest

from common import BASELINE_NAMES, MODEL_NAMES, geomean, report_for, save_table

PAPER_MS = {
    "bert":         {"xla": 2.55, "ansor": 2.31, "tensorrt": 1.30,
                     "rammer": 2.19, "apollo": 3.29, "iree": 2.22,
                     "souffle": 1.22},
    "resnext":      {"xla": 8.91, "ansor": 20.50, "tensorrt": 24.82,
                     "rammer": 11.69, "apollo": 22.80, "iree": 314.8,
                     "souffle": 4.43},
    "lstm":         {"xla": 10.57, "ansor": 6.78, "tensorrt": 6.30,
                     "rammer": 1.72, "apollo": None, "iree": 16.0,
                     "souffle": 0.80},
    "efficientnet": {"xla": 2.96, "ansor": 0.91, "tensorrt": 1.21,
                     "rammer": None, "apollo": 2.3, "iree": 12.33,
                     "souffle": 0.66},
    "swin":         {"xla": 6.43, "ansor": 5.81, "tensorrt": 1.74,
                     "rammer": None, "apollo": 10.78, "iree": 18.1,
                     "souffle": 1.55},
    "mmoe":         {"xla": 0.29, "ansor": 0.034, "tensorrt": 0.070,
                     "rammer": None, "apollo": 0.049, "iree": 0.088,
                     "souffle": 0.014},
}

SYSTEMS = list(BASELINE_NAMES) + ["souffle-V4"]


@pytest.fixture(scope="module")
def all_reports():
    return {
        model: {system: report_for(model, system) for system in SYSTEMS}
        for model in MODEL_NAMES
    }


def _row(model, reports):
    cells = [f"{model:12s}"]
    for system in SYSTEMS:
        cells.append(f"{reports[system].total_time_ms:9.3f}")
    return " ".join(cells)


def test_table3_end_to_end(benchmark, all_reports):
    benchmark(lambda: report_for("bert", "souffle-V4"))

    header = f"{'model':12s} " + " ".join(f"{s:>9s}" for s in SYSTEMS)
    lines = [header]
    for model in MODEL_NAMES:
        lines.append(_row(model, all_reports[model]))

    speedups = {system: [] for system in BASELINE_NAMES}
    for model in MODEL_NAMES:
        ours = all_reports[model]["souffle-V4"].total_time_ms
        for system in BASELINE_NAMES:
            speedups[system].append(
                all_reports[model][system].total_time_ms / ours
            )
    lines.append("")
    lines.append("geomean speedup of Souffle over each baseline "
                 "(paper: up to 3.7x over TRT, 7.8x over XLA):")
    for system in BASELINE_NAMES:
        lines.append(f"  {system:10s} {geomean(speedups[system]):6.2f}x")
    save_table("table3_end_to_end", "\n".join(lines))

    # --- shape assertions -------------------------------------------------
    for model in MODEL_NAMES:
        ours = all_reports[model]["souffle-V4"].total_time_ms
        for system in BASELINE_NAMES:
            assert ours < all_reports[model][system].total_time_ms, (
                f"Souffle must win on {model} vs {system}"
            )

    # TensorRT is the best baseline on the transformer models.
    for model in ("bert", "swin"):
        trt = all_reports[model]["tensorrt"].total_time_ms
        for system in ("xla", "apollo", "iree", "ansor"):
            assert trt <= all_reports[model][system].total_time_ms

    # Rammer is the best baseline on LSTM (wavefront co-scheduling).
    rammer = all_reports["lstm"]["rammer"].total_time_ms
    for system in ("xla", "tensorrt", "apollo", "iree", "ansor"):
        assert rammer <= all_reports["lstm"][system].total_time_ms

    # IREE's ResNeXt catastrophe (paper: 314.8 ms vs everyone's < 25 ms).
    iree = all_reports["resnext"]["iree"].total_time_ms
    assert iree > 5 * all_reports["resnext"]["xla"].total_time_ms

    # Meaningful geometric-mean speedups.
    for system in BASELINE_NAMES:
        assert geomean(speedups[system]) > 1.5, system
