"""Benchmark-session configuration."""

import sys
from pathlib import Path

# Make `common` importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))
