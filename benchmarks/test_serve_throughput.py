"""Serving throughput — plan-based replay vs interpretive execution.

The ROADMAP's north star is serve-side: pay for analysis once at compile
time, replay a flat plan per request. This benchmark pins that down with an
explicit acceptance floor: on repeated inference (>= 32 calls) the
:class:`ExecutionPlan` replay must be at least ``FLOOR_SPEEDUP`` times
faster than constructing-and-walking a fresh ``Evaluator`` per request
(the pre-plan ``CompiledModule.run`` behaviour), for BERT and MMoE.

Also asserted here, because throughput claims are worthless without them:
plan outputs are *bit-identical* to the Evaluator oracle on all six paper
models, and a session allocates its arena workspace exactly once no matter
how many requests it serves.
"""

import time

import numpy as np
import pytest

from common import MODEL_NAMES, save_json, save_table

from repro.graph.lowering import lower_graph
from repro.models import TINY_MODELS
from repro.runtime.session import InferenceSession
from repro.te.evaluator import Evaluator
from repro.transform.semantics import random_feeds

# Acceptance floor from the issue: >= 2x on repeated BERT/MMoE inference.
FLOOR_SPEEDUP = 2.0
FLOOR_MODELS = ("bert", "mmoe")
CALLS = 32
BEST_OF = 3


def _interpret(program, feeds):
    evaluator = Evaluator(feeds)
    return [evaluator.value_of(t) for t in program.outputs]


def _time_loop(fn, calls=CALLS, best_of=BEST_OF) -> float:
    """Best-of-N timing of a ``calls``-request loop (seconds per loop)."""
    best = float("inf")
    for _ in range(best_of):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def programs():
    return {name: lower_graph(TINY_MODELS[name]()) for name in MODEL_NAMES}


@pytest.mark.parametrize("name", sorted(MODEL_NAMES))
def test_plan_outputs_bit_identical(programs, name):
    """Differential guarantee across every paper model: the plan engine and
    the interpretive oracle agree to the last bit."""
    program = programs[name]
    feeds = random_feeds(program, seed=17)
    session = InferenceSession(program)
    reference = _interpret(program, feeds)
    for _ in range(3):  # replay repeatedly through the shared arena
        outputs = session.run(feeds)
        for got, want in zip(outputs, reference):
            assert np.array_equal(got, want), name


def test_workspace_allocated_once(programs):
    """Intermediates come from the MemoryPlan arena: one workspace per
    session, reused across every request."""
    program = programs["bert"]
    # The per-tensor arena-backing claim is about the unoptimized layout:
    # the plan optimizer legitimately deletes fused interiors and hoisted
    # tensors from the arena, so they have no views to check.
    session = InferenceSession(program, optimize=False)
    feeds = random_feeds(program, seed=1)
    for _ in range(CALLS):
        session.run(feeds)
    assert session.request_count == CALLS
    assert session.arenas_allocated == 1
    assert session.workspace_bytes == session.plan.memory_plan.workspace_bytes
    assert session.workspace_bytes > 0
    # Every non-output intermediate is backed by planned arena bytes.
    arena = session._free_arenas[0]
    for node in program.nodes:
        if program.is_output(node.tensor):
            continue
        assert np.shares_memory(arena.views[id(node.tensor)], arena.buffer)


def test_serve_throughput(programs):
    """Plan replay beats interpretive run >= 2x on repeated BERT/MMoE."""
    rows = [
        f"{'model':14s} {'interp ms':>10s} {'plan ms':>9s} "
        f"{'speedup':>8s} {'plan req/s':>11s} {'arena kB':>9s} {'steps':>6s}"
    ]
    speedups = {}
    records = []
    for name in MODEL_NAMES:
        program = programs[name]
        feeds = random_feeds(program, seed=5)
        session = InferenceSession(program)
        session.run(feeds)            # warm: plan + arena already built
        _interpret(program, feeds)    # warm numpy caches

        interp_s = _time_loop(lambda: _interpret(program, feeds))
        plan_s = _time_loop(lambda: session.run(feeds))
        speedup = interp_s / plan_s
        speedups[name] = speedup
        records.append({
            "model": name,
            "interp_ms_per_req": interp_s / CALLS * 1e3,
            "plan_ms_per_req": plan_s / CALLS * 1e3,
            "speedup": speedup,
            "plan_req_per_s": CALLS / plan_s,
            "workspace_bytes": session.workspace_bytes,
            "steps": session.plan.num_steps,
        })
        rows.append(
            f"{name:14s} {interp_s / CALLS * 1e3:10.3f} "
            f"{plan_s / CALLS * 1e3:9.3f} {speedup:8.2f} "
            f"{CALLS / plan_s:11.1f} "
            f"{session.workspace_bytes / 1e3:9.1f} "
            f"{session.plan.num_steps:6d}"
        )

    rows.append("")
    rows.append(
        f"floor: plan replay >= {FLOOR_SPEEDUP:.1f}x vs interpretive run "
        f"on {', '.join(FLOOR_MODELS)} ({CALLS} calls, best of {BEST_OF})"
    )
    save_table("serve_throughput", "\n".join(rows))
    save_json("serve_throughput", {
        "benchmark": "serve_throughput",
        "calls": CALLS,
        "best_of": BEST_OF,
        "floor_speedup": FLOOR_SPEEDUP,
        "floor_models": list(FLOOR_MODELS),
        "results": records,
    })

    for name in FLOOR_MODELS:
        assert speedups[name] >= FLOOR_SPEEDUP, (
            f"{name}: plan replay only {speedups[name]:.2f}x faster than "
            f"the interpretive evaluator (floor {FLOOR_SPEEDUP}x)"
        )


# ---- plan-optimizer pass pipeline -------------------------------------------
#
# The optimizer acceptance floor: a plan-optimized session (step fusion,
# weight hoisting, in-place elision, matmul specialization, wave
# scheduling) must serve single requests >= OPT_FLOOR_SPEEDUP times faster
# than the unoptimized plan, on BERT and MMoE.

OPT_FLOOR_SPEEDUP = 1.3


def test_optimized_plan_latency(programs):
    """Optimized plan replay beats the baseline plan >= 1.3x on BERT/MMoE."""
    rows = [
        f"{'model':14s} {'plain ms':>9s} {'opt ms':>8s} {'speedup':>8s} "
        f"{'steps':>11s} {'matmul':>7s} {'fused':>6s} {'elided kB':>10s}"
    ]
    speedups = {}
    records = []
    for name in MODEL_NAMES:
        program = programs[name]
        feeds = random_feeds(program, seed=5)
        plain = InferenceSession(program, optimize=False)
        optimized = InferenceSession(program, optimize=True)
        plain.run(feeds)      # warm: plans + arenas + numpy caches
        optimized.run(feeds)

        plain_s = _time_loop(lambda: plain.run(feeds))
        opt_s = _time_loop(lambda: optimized.run(feeds))
        speedup = plain_s / opt_s
        speedups[name] = speedup
        stats = optimized.plan.optimization.stats
        records.append({
            "model": name,
            "plain_ms_per_req": plain_s / CALLS * 1e3,
            "optimized_ms_per_req": opt_s / CALLS * 1e3,
            "speedup": speedup,
            "steps_before": stats.steps_before,
            "steps_after": stats.steps_after,
            "specialized_contractions": stats.specialized_contractions,
            "fused_steps": stats.fused_steps,
            "elided_bytes": stats.elided_bytes,
        })
        rows.append(
            f"{name:14s} {plain_s / CALLS * 1e3:9.3f} "
            f"{opt_s / CALLS * 1e3:8.3f} {speedup:8.2f} "
            f"{stats.steps_before:>4d} -> {stats.steps_after:<3d} "
            f"{stats.specialized_contractions:7d} {stats.fused_steps:6d} "
            f"{stats.elided_bytes / 1e3:10.1f}"
        )

    rows.append("")
    rows.append(
        f"floor: optimized plan >= {OPT_FLOOR_SPEEDUP:.1f}x vs baseline "
        f"plan on {', '.join(FLOOR_MODELS)} "
        f"({CALLS} calls, best of {BEST_OF})"
    )
    save_table("serve_optimized_plan", "\n".join(rows))
    save_json("serve_optimized_plan", {
        "benchmark": "serve_optimized_plan",
        "calls": CALLS,
        "best_of": BEST_OF,
        "floor_speedup": OPT_FLOOR_SPEEDUP,
        "floor_models": list(FLOOR_MODELS),
        "results": records,
    })

    for name in FLOOR_MODELS:
        assert speedups[name] >= OPT_FLOOR_SPEEDUP, (
            f"{name}: optimized plan only {speedups[name]:.2f}x faster than "
            f"the baseline plan (floor {OPT_FLOOR_SPEEDUP}x)"
        )


# ---- profile-guided tuning --------------------------------------------------
#
# The tuner acceptance floor: when the static tiling heuristic mispredicts
# (cache budget pinned far below the real machine's), the measured cost
# model must reject the unprofitable chains and the A/B harness must adopt
# a plan >= TUNE_FLOOR_SPEEDUP faster — bit-identical and fully certified —
# on at least the two models where the misprediction bites hardest.

TUNE_FLOOR_SPEEDUP = 1.1
TUNE_MODELS = ("bert", "swin")
MISPREDICTED_BUDGET = 2048


def test_tuned_plan_recovery(programs):
    """Profile-guided tuning recovers >= 1.1x from a mispredicted budget."""
    from repro.runtime.tuner import tune

    rows = [
        f"{'model':14s} {'static ms':>10s} {'tuned ms':>9s} "
        f"{'speedup':>8s} {'adopted':>8s} {'certified':>10s}"
    ]
    records = []
    for name in TUNE_MODELS:
        program = programs[name]
        report = tune(
            program, name=name, store=False, runs=2, reps=9,
            tile_budget=MISPREDICTED_BUDGET,
        )
        records.append(report.to_json())
        rows.append(
            f"{name:14s} {report.static_seconds * 1e3:10.3f} "
            f"{report.tuned_seconds * 1e3:9.3f} {report.speedup:8.2f} "
            f"{str(report.adopted):>8s} {str(report.certified):>10s}"
        )
        assert report.bit_identical, name
        assert report.certified, name

    rows.append("")
    rows.append(
        f"floor: tuned plan >= {TUNE_FLOOR_SPEEDUP:.1f}x vs static plan "
        f"at a {MISPREDICTED_BUDGET}-byte tile budget on "
        f"{', '.join(TUNE_MODELS)}"
    )
    save_table("serve_tuned_plan", "\n".join(rows))
    save_json("serve_tuned_plan", {
        "benchmark": "serve_tuned_plan",
        "floor_speedup": TUNE_FLOOR_SPEEDUP,
        "tile_budget": MISPREDICTED_BUDGET,
        "results": records,
    })

    for record in records:
        assert record["adopted"], record["model"]
        assert record["speedup"] >= TUNE_FLOOR_SPEEDUP, (
            f"{record['model']}: tuned plan only {record['speedup']:.2f}x "
            f"faster than static (floor {TUNE_FLOOR_SPEEDUP}x)"
        )


# ---- dynamic micro-batching -------------------------------------------------
#
# The batched acceptance floor: replaying one BatchedExecutionPlan over 8
# concurrent requests must be >= BATCH_FLOOR_SPEEDUP times faster than 8
# sequential single-request replays, on BERT and MMoE. Requests share their
# weight arrays (as serving traffic does), which the batched binder turns
# into zero-copy broadcast lanes.

BATCH_FLOOR_SPEEDUP = 3.0
BATCH_SIZE = 8
BATCH_ROUNDS = 8  # timed batches per measurement (BATCH_ROUNDS * 8 requests)


def _batch_requests(program, count, seed):
    """Per-request feeds: shared weight objects, fresh leading input."""
    base = random_feeds(program, seed=seed)
    lead = program.inputs[0]
    rng = np.random.default_rng(seed + 1)
    requests = []
    for _ in range(count):
        feeds = dict(base)
        feeds[lead] = rng.standard_normal(lead.shape)
        requests.append(feeds)
    return requests


@pytest.mark.parametrize("name", sorted(MODEL_NAMES))
def test_batched_outputs_bit_identical(programs, name):
    """Differential guarantee across every paper model: each lane of a
    batched replay equals its own unbatched replay, to the last bit."""
    program = programs[name]
    session = InferenceSession(program)
    requests = _batch_requests(program, 11, seed=23)  # pads + chunks
    singles = [session.run(feeds) for feeds in requests]
    for want, got in zip(singles, session.run_batch(requests)):
        for a, b in zip(want, got):
            assert np.array_equal(a, b), name


def test_batched_serve_throughput(programs):
    """Batched replay beats sequential single-request replay >= 3x at
    batch 8 on BERT and MMoE."""
    rows = [
        f"{'model':14s} {'single ms/req':>14s} {'batch ms/req':>13s} "
        f"{'speedup':>8s} {'batch req/s':>12s}"
    ]
    speedups = {}
    for name in MODEL_NAMES:
        program = programs[name]
        session = InferenceSession(program, batch_buckets=(2, 4, BATCH_SIZE))
        batches = [
            _batch_requests(program, BATCH_SIZE, seed=31 + i)
            for i in range(BATCH_ROUNDS)
        ]
        total = BATCH_ROUNDS * BATCH_SIZE
        # Warm both paths: plan + batched plan + arenas + numpy caches.
        session.run(batches[0][0])
        session.run_batch(batches[0])

        def run_singles():
            for batch in batches:
                for feeds in batch:
                    session.run(feeds)

        def run_batched():
            for batch in batches:
                session.run_batch(batch)

        single_s = _time_loop(run_singles, calls=1)
        batch_s = _time_loop(run_batched, calls=1)
        speedup = single_s / batch_s
        speedups[name] = speedup
        rows.append(
            f"{name:14s} {single_s / total * 1e3:14.3f} "
            f"{batch_s / total * 1e3:13.3f} {speedup:8.2f} "
            f"{total / batch_s:12.1f}"
        )

    rows.append("")
    rows.append(
        f"floor: batched replay >= {BATCH_FLOOR_SPEEDUP:.1f}x vs sequential "
        f"singles on {', '.join(FLOOR_MODELS)} "
        f"(batch {BATCH_SIZE}, {BATCH_ROUNDS} rounds, best of {BEST_OF})"
    )
    save_table("serve_throughput_batched", "\n".join(rows))

    for name in FLOOR_MODELS:
        assert speedups[name] >= BATCH_FLOOR_SPEEDUP, (
            f"{name}: batched replay only {speedups[name]:.2f}x faster than "
            f"sequential singles (floor {BATCH_FLOOR_SPEEDUP}x)"
        )


# ---- task-graph executor ----------------------------------------------------
#
# The mega-step acceptance floor: where dispatch overhead dominates, the
# task-graph executor (one compiled dependency table, no per-wave barriers)
# must beat the wave scheduler *in its dispatching regime* by
# >= GRAPH_FLOOR_SPEEDUP on single-request latency. The wave plan is
# measured with wave dispatch actually engaged — the parallelism threshold
# dropped to zero and a two-worker persistent pool pinned — so the
# comparison isolates exactly what the task graph removes: future creation,
# handoff, and a barrier per wave. The floor rides on ``lstm-deep``, the
# paper's stacked LSTM (``build_lstm``) at 12 unrolled timesteps x 3 cells:
# the wavefront anti-diagonal makes most of its waves dispatch (the
# paper-scale model replays >1300 of them per request), which is precisely
# the ISSUE's "dispatch, not einsum time, dominates" regime. The six tiny
# models are reported alongside for coverage, and scheduler occupancy is
# taken from the executor's busy-over-scheduled-time counter.

GRAPH_FLOOR_SPEEDUP = 1.2
GRAPH_FLOOR_MODEL = "lstm-deep"
DEEP_LSTM = dict(time_steps=12, num_cells=3, hidden=16, input_size=16)


def test_graph_executor_latency(programs, monkeypatch):
    """Task-graph replay beats dispatching wave replay >= 1.2x on the
    deep-unrolled LSTM, bit-identically, on every model measured."""
    from repro.core.parallel import WorkerPool
    from repro.models import build_lstm
    from repro.runtime import plan_opt
    from repro.runtime.executor import ExecutionPlan

    monkeypatch.setattr(plan_opt, "PARALLEL_MIN_WAVE_ELEMENTS", 0)
    rows = [
        f"{'model':14s} {'wave ms':>8s} {'graph ms':>9s} {'speedup':>8s} "
        f"{'occup %':>8s} {'tasks':>6s} {'crit':>5s} {'width':>6s}"
    ]
    cases = {name: programs[name] for name in MODEL_NAMES}
    cases[GRAPH_FLOOR_MODEL] = lower_graph(
        build_lstm(name="lstm_deep", **DEEP_LSTM)
    )
    speedups = {}
    pools = []
    for name, program in cases.items():
        feeds = random_feeds(program, seed=5)
        wave_plan = ExecutionPlan(program, optimize=True)
        # Pin the wave pool to two workers so dispatch engages identically
        # on any host (the shared pool degrades to serial on one CPU and
        # would silently benchmark a flat loop instead of wave dispatch).
        pool = WorkerPool(max_workers=2, persistent=True)
        pools.append(pool)
        wave_plan._wave_pool = pool
        # Pure chains compile to one group per wave and never dispatch;
        # they are reported for completeness but carry no floor.
        dispatching = wave_plan.waves is not None and any(
            parallel for _, parallel in wave_plan.waves
        )
        graph_plan = ExecutionPlan(program, optimize=True, executor="graph")

        bound_w = wave_plan.bind_feeds(feeds)
        bound_g = graph_plan.bind_feeds(feeds)
        arena_w = wave_plan.new_arena()
        arena_g = graph_plan.new_arena()
        # Differential gate before timing anything.
        want = graph_plan.execute_serial(bound_g, graph_plan.new_arena())
        for got in (wave_plan.execute(bound_w, arena_w),
                    graph_plan.execute(bound_g, arena_g)):
            for a, b in zip(got, want):
                assert np.array_equal(a, b), name

        wave_s = _time_loop(lambda: wave_plan.execute(bound_w, arena_w))
        graph_s = _time_loop(lambda: graph_plan.execute(bound_g, arena_g))
        speedup = wave_s / graph_s
        if dispatching:
            speedups[name] = speedup
        stats = graph_plan.task_graph.stats
        occupancy = graph_plan.graph_executor.occupancy
        rows.append(
            f"{name:14s} {wave_s / CALLS * 1e3:8.3f} "
            f"{graph_s / CALLS * 1e3:9.3f} {speedup:8.2f}"
            f"{' ' if dispatching else '*'}"
            f"{occupancy * 100:7.1f} {stats.tasks:6d} "
            f"{stats.critical_path:5d} {stats.max_ready_width:6d}"
        )
    for pool in pools:
        pool.close()

    rows.append("")
    rows.append(
        "* = pure chain, wave replay never dispatches (no floor applies)"
    )
    rows.append(
        f"floor: task-graph replay >= {GRAPH_FLOOR_SPEEDUP:.1f}x vs "
        f"dispatching wave replay on {GRAPH_FLOOR_MODEL} "
        f"({CALLS} calls, best of {BEST_OF}; wave pool pinned to 2 workers)"
    )
    save_table("serve_graph_executor", "\n".join(rows))

    assert GRAPH_FLOOR_MODEL in speedups, (
        "deep LSTM no longer compiles to a dispatching wave plan"
    )
    got = speedups[GRAPH_FLOOR_MODEL]
    assert got >= GRAPH_FLOOR_SPEEDUP, (
        f"task-graph executor only {got:.2f}x vs the dispatching wave "
        f"scheduler on {GRAPH_FLOOR_MODEL} (floor {GRAPH_FLOOR_SPEEDUP}x)"
    )


# ---- block-level tiling of reduction chains ---------------------------------
#
# The tiling acceptance floor: on a softmax/layernorm-heavy model at
# cache-pressure scale, the tiled plan (runtime.tiling: map->reduce->map
# chains computed block-by-block through per-worker scratch) must serve
# single requests >= TILE_FLOOR_SPEEDUP times faster than the *untiled
# optimized* plan — same pass pipeline, tiling off — bit-identically. The
# model is the normalisation stack of a BERT-shaped encoder (alternating
# softmax and layernorm over (rows, hidden) activations) grown until each
# chain's working set far exceeds the tiling cache budget: exactly the
# regime the footprint model targets, where the untiled plan streams every
# chain intermediate through DRAM while the tiled plan keeps one block's
# whole chain in cache. The six tiny models are cache-resident by
# construction (the auto gate declines to tile them), so the floor rides
# on this paper-scale stack alone.

TILE_FLOOR_SPEEDUP = 1.2
TILE_ROWS = 4096
TILE_COLS = 1024
TILE_DEPTH = 3
TILE_CALLS = 3


def build_norm_stack(rows=TILE_ROWS, cols=TILE_COLS, depth=TILE_DEPTH):
    """Alternating softmax/layernorm blocks over (rows, cols) activations."""
    from repro.graph import GraphBuilder

    builder = GraphBuilder("norm_stack")
    x = builder.input((rows, cols), dtype="float32", name="x")
    for i in range(depth):
        gamma = builder.weight((cols,), name=f"gamma{i}")
        beta = builder.weight((cols,), name=f"beta{i}")
        soft = builder.softmax(
            builder.scale(x, 1.25, name=f"scale{i}"), name=f"softmax{i}"
        )
        x = builder.layernorm(soft, gamma, beta, name=f"ln{i}")
    return builder.build([x])


def test_tiled_reduction_latency():
    """Tiled chains beat the untiled optimized plan >= 1.2x on the
    softmax/layernorm stack, bit-identically."""
    from repro.runtime.executor import ExecutionPlan

    program = lower_graph(build_norm_stack())
    feeds = random_feeds(program, seed=43)
    untiled = InferenceSession(program, name="norm_stack", tile=False)
    tiled = InferenceSession(program, name="norm_stack")

    chains = tiled.plan.optimization.tiled_chains
    assert chains, "footprint model failed to tile the norm stack"
    assert untiled.plan.optimization.tiled_chains == []

    # Differential gate before timing anything: every output bit equal.
    want = untiled.run(feeds)
    got = tiled.run(feeds)
    for a, b in zip(got, want):
        assert np.array_equal(a, b), "tiled outputs diverged"

    untiled_s = _time_loop(lambda: untiled.run(feeds),
                           calls=TILE_CALLS, best_of=BEST_OF)
    tiled_s = _time_loop(lambda: tiled.run(feeds),
                         calls=TILE_CALLS, best_of=BEST_OF)
    speedup = untiled_s / tiled_s

    stats = tiled.plan.optimization.stats
    rows = [
        f"{'model':14s} {'untiled ms':>11s} {'tiled ms':>9s} "
        f"{'speedup':>8s} {'chains':>7s} {'blocks':>7s} {'blk rows':>9s} "
        f"{'scratch kB':>11s}",
        f"{'norm_stack':14s} {untiled_s / TILE_CALLS * 1e3:11.1f} "
        f"{tiled_s / TILE_CALLS * 1e3:9.1f} {speedup:8.2f} "
        f"{stats.tiled_chains:7d} {stats.tiled_blocks:7d} "
        f"{max(stats.tile_block_rows):9d} "
        f"{stats.scratch_bytes / 1e3:11.1f}",
        "",
        f"model: {TILE_DEPTH} x (softmax -> layernorm) over "
        f"({TILE_ROWS}, {TILE_COLS}) float64 activations, outputs "
        "bit-identical to the untiled optimized plan",
        f"floor: tiled plan >= {TILE_FLOOR_SPEEDUP:.1f}x vs untiled "
        f"optimized plan ({TILE_CALLS} calls, best of {BEST_OF})",
    ]
    save_table("serve_tiled_reduction", "\n".join(rows))

    assert speedup >= TILE_FLOOR_SPEEDUP, (
        f"tiled plan only {speedup:.2f}x faster than the untiled "
        f"optimized plan (floor {TILE_FLOOR_SPEEDUP}x)"
    )


def test_tiled_reduction_smoke():
    """Fast CI smoke: a scaled-down stack still tiles under a small budget
    and stays bit-identical (no latency floor at this size)."""
    from repro.runtime.executor import ExecutionPlan

    program = lower_graph(build_norm_stack(rows=256, cols=64, depth=2))
    feeds = random_feeds(program, seed=47)
    want = ExecutionPlan(program, optimize=True, tile=False).run(feeds)
    plan = ExecutionPlan(program, optimize=True, tile_budget=1 << 16)
    assert plan.optimization.tiled_chains
    for a, b in zip(plan.run(feeds), want):
        assert np.array_equal(a, b)


# ---- sharded multi-process serving (shared-memory weights) ------------------
#
# K worker processes map one shared-memory weight segment and serve through
# the ShardedServer dispatcher. The aggregate-throughput floor needs real
# cores to mean anything, so the replicas sweep always writes its table but
# only enforces the >= 2x floor on machines with >= 4 CPUs.

SHARD_FLOOR_SPEEDUP = 2.0
SHARD_FLOOR_REPLICAS = 4
SHARD_MODELS = ("bert", "mmoe")
SHARD_CALLS = 48


def _shard_traffic(program, count, seed):
    """Name-keyed (weights, request feeds) split from one random feed set."""
    base = random_feeds(program, seed=seed)
    weights = {t.name: v for t, v in base.items() if t.role == "weight"}
    lead = program.inputs[0]
    rng = np.random.default_rng(seed + 1)
    requests = [{lead.name: rng.standard_normal(lead.shape)}
                for _ in range(count)]
    return base, weights, requests


def _serve_all(server, requests) -> float:
    """Submit every request, wait for the last future; wall seconds."""
    start = time.perf_counter()
    futures = [server.submit(feeds) for feeds in requests]
    for future in futures:
        future.result(timeout=600)
    return time.perf_counter() - start


@pytest.mark.parametrize("name", sorted(SHARD_MODELS))
def test_sharded_outputs_bit_identical_and_zero_copy(name):
    """Two replicas over one weight segment: every request bit-identical
    to a serial single-session replay, and neither replica holds a
    private weight copy (incremental weight RSS of a replica ~ 0)."""
    from repro.runtime.sharding import ShardedServer

    graph = TINY_MODELS[name]()
    program = lower_graph(graph)
    base, weights, requests = _shard_traffic(program, 12, seed=31)
    session = InferenceSession(program)
    lead = program.inputs[0]
    want = []
    for request in requests:
        feeds = dict(base)
        feeds[lead] = request[lead.name]
        want.append(session.run(feeds))

    with ShardedServer(graph, weights, replicas=2) as server:
        futures = [server.submit(r) for r in requests]
        got = [f.result(timeout=600) for f in futures]
        metrics = server.metrics()

    for a, b in zip(got, want):
        for x, y in zip(a, b):
            assert np.array_equal(x, y), name
    agg = metrics["aggregate"]
    assert agg["requests_completed"] == len(requests)
    assert agg["weight_bytes_total"] > 0
    for row in metrics["per_replica"]:
        assert row["weight_bytes_mapped"] == agg["weight_bytes_total"]
        assert row["weight_private_bytes"] == 0, (
            f"{name}: replica {row['index']} copied "
            f"{row['weight_private_bytes']} weight bytes"
        )


def test_sharded_replicas_sweep():
    """Aggregate throughput at K=1,2,4 replicas vs the single-process
    batching server; floor >= 2x at K=4 on BERT/MMoE (needs >= 4 cores)."""
    import os

    from repro.runtime.batching import BatchingServer
    from repro.runtime.sharding import ShardedServer

    cores = os.cpu_count() or 1
    rows = [
        f"{'model':10s} {'baseline r/s':>13s} {'K=1 r/s':>9s} "
        f"{'K=2 r/s':>9s} {'K=4 r/s':>9s} {'K=4 vs base':>12s} "
        f"{'shared MB':>10s} {'saved MB (K=4)':>15s}"
    ]
    speedups = {}
    for name in SHARD_MODELS:
        graph = TINY_MODELS[name]()
        program = lower_graph(graph)
        base, weights, requests = _shard_traffic(
            program, SHARD_CALLS, seed=37
        )

        session = InferenceSession(program)
        lead = program.inputs[0]
        feeds0 = dict(base)
        feeds0[lead] = requests[0][lead.name]
        session.run(feeds0)  # warm the plan
        baseline = BatchingServer(session, max_batch_size=8,
                                  max_queue_delay_ms=2.0)
        baseline.start()
        named = []
        for request in requests:
            feeds = dict(base)
            feeds[lead] = request[lead.name]
            named.append(feeds)
        start = time.perf_counter()
        futures = [baseline.submit(feeds) for feeds in named]
        for future in futures:
            future.result(timeout=600)
        base_s = time.perf_counter() - start
        baseline.stop()

        per_k = {}
        shared_mb = 0.0
        for k in (1, 2, 4):
            with ShardedServer(graph, weights, replicas=k,
                               max_queue_delay_ms=2.0) as server:
                _serve_all(server, requests[:4])  # warm worker plans
                per_k[k] = _serve_all(server, requests)
                shared_mb = server.store.total_bytes / 1e6
        speedups[name] = base_s / per_k[4]
        rows.append(
            f"{name:10s} {SHARD_CALLS / base_s:13.1f} "
            f"{SHARD_CALLS / per_k[1]:9.1f} "
            f"{SHARD_CALLS / per_k[2]:9.1f} "
            f"{SHARD_CALLS / per_k[4]:9.1f} "
            f"{speedups[name]:11.2f}x "
            f"{shared_mb:10.2f} {3 * shared_mb:15.2f}"
        )

    rows.append("")
    rows.append(
        f"floor: sharded K={SHARD_FLOOR_REPLICAS} >= "
        f"{SHARD_FLOOR_SPEEDUP:.1f}x the single-process batching server "
        f"on {', '.join(SHARD_MODELS)} ({SHARD_CALLS} requests; "
        f"enforced with >= 4 cores, this machine has {cores})"
    )
    save_table("serve_sharded", "\n".join(rows))

    if cores < SHARD_FLOOR_REPLICAS:
        pytest.skip(
            f"{cores} cores: table written, throughput floor needs >= "
            f"{SHARD_FLOOR_REPLICAS}"
        )
    for name in SHARD_MODELS:
        assert speedups[name] >= SHARD_FLOOR_SPEEDUP, (
            f"{name}: sharded x{SHARD_FLOOR_REPLICAS} only "
            f"{speedups[name]:.2f}x the single-process server "
            f"(floor {SHARD_FLOOR_SPEEDUP}x)"
        )
