"""Shared harness for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper. Compiled
modules are cached per session (compilation is the expensive part; the
simulated measurement is cheap and is what pytest-benchmark times).

Every benchmark writes its rendered table to ``benchmarks/results/`` so the
regenerated rows can be compared against the paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

from repro import SouffleCompiler, SouffleOptions, profile_module
from repro.baselines import ALL_BASELINES, UnfusedCompiler
from repro.graph.graph import Graph
from repro.models import PAPER_MODELS
from repro.runtime.module import CompiledModule
from repro.runtime.profiler import ProfileReport

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

MODEL_NAMES = ("bert", "resnext", "lstm", "efficientnet", "swin", "mmoe")
BASELINE_NAMES = ("xla", "ansor", "tensorrt", "rammer", "apollo", "iree")

_graph_cache: Dict[str, Graph] = {}
_module_cache: Dict[Tuple[str, str], CompiledModule] = {}
_report_cache: Dict[Tuple[str, str], ProfileReport] = {}


def get_graph(name: str) -> Graph:
    if name not in _graph_cache:
        _graph_cache[name] = PAPER_MODELS[name]()
    return _graph_cache[name]


def compile_with(model: str, compiler: str) -> CompiledModule:
    """Compile (cached) a paper model with one of the compilers.

    ``compiler`` is a baseline name, ``unfused``, or ``souffle-V<k>``.
    """
    key = (model, compiler)
    if key in _module_cache:
        return _module_cache[key]
    graph = get_graph(model)
    if compiler.startswith("souffle"):
        level = int(compiler.split("V")[1]) if "V" in compiler else 4
        module = SouffleCompiler(
            options=SouffleOptions.from_level(level)
        ).compile(graph)
    elif compiler == "unfused":
        module = UnfusedCompiler().compile(graph)
    else:
        module = ALL_BASELINES[compiler]().compile(graph)
    _module_cache[key] = module
    return module


def report_for(model: str, compiler: str) -> ProfileReport:
    key = (model, compiler)
    if key not in _report_cache:
        _report_cache[key] = profile_module(compile_with(model, compiler))
    return _report_cache[key]


def geomean(values) -> float:
    values = list(values)
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def save_table(name: str, text: str) -> None:
    """Persist a regenerated table and echo it for the bench log."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n[{name}]\n{text}")


def save_json(name: str, payload) -> str:
    """Persist a machine-readable benchmark result next to its table.

    ``benchmarks/results/<name>.json`` — one JSON document per benchmark,
    so CI and regression tooling can compare runs without scraping the
    rendered tables.
    """
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
