"""Table 1 / Fig. 1 — the motivating BERT attention subgraph.

Paper (A100, one simplified BERT subgraph):

    metric                      TensorRT   Apollo   Souffle
    total execution time (us)      62.34   179.07     57.73
    #kernels                           7       14         1
    bytes loaded from global (M)   16.52    27.78      8.87

Expected shape: Souffle maps the subgraph to a single kernel, loads the
fewest bytes, and edges out TensorRT despite TensorRT's hand-tuned kernels;
Apollo is far behind on both time and traffic.
"""

import pytest

from repro import SouffleCompiler, profile_module
from repro.baselines import ApolloCompiler, TensorRTCompiler
from repro.models import build_bert_attention_subgraph

from common import save_table

PAPER = {
    "tensorrt": {"time_us": 62.34, "kernels": 7, "mb": 16.52},
    "apollo": {"time_us": 179.07, "kernels": 14, "mb": 27.78},
    "souffle": {"time_us": 57.73, "kernels": 1, "mb": 8.87},
}


@pytest.fixture(scope="module")
def modules():
    graph = build_bert_attention_subgraph()  # one attention block, seq 128
    return {
        "tensorrt": TensorRTCompiler().compile(graph),
        "apollo": ApolloCompiler().compile(graph),
        "souffle": SouffleCompiler().compile(graph),
    }


def test_table1_motivating_subgraph(benchmark, modules):
    reports = {name: profile_module(m) for name, m in modules.items()}
    benchmark(modules["souffle"].simulate)

    lines = [
        f"{'system':10s} {'time(us)':>10s} {'paper':>8s} {'#kernels':>9s} "
        f"{'paper':>6s} {'MB loaded':>10s} {'paper':>7s}"
    ]
    for system, report in reports.items():
        ref = PAPER[system]
        lines.append(
            f"{system:10s} {report.total_time_us:10.2f} {ref['time_us']:8.2f} "
            f"{report.kernel_calls:9d} {ref['kernels']:6d} "
            f"{report.load_bytes / 1e6:10.2f} {ref['mb']:7.2f}"
        )
    save_table("table1_motivating", "\n".join(lines))

    souffle, trt, apollo = (
        reports["souffle"], reports["tensorrt"], reports["apollo"],
    )
    # Shape assertions mirroring the paper's relationships.
    assert souffle.total_time_us < trt.total_time_us < apollo.total_time_us
    assert souffle.kernel_calls <= 3          # paper: 1
    assert souffle.kernel_calls < trt.kernel_calls < apollo.kernel_calls
    assert souffle.load_bytes < trt.load_bytes < apollo.load_bytes
