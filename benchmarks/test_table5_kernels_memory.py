"""Table 5 — number of GPU kernel calls and global-memory transfer size.

Paper reference:

    # kernel calls                      memory transfer (MB)
    Model      TRT  Apollo   XLA  Ours   TRT   Apollo   Ours
    BERT       120    240    216    24   361.8  880.5  226.8
    ResNeXt   2406   1226    526   105   622.2  436.1  470.2
    LSTM       662  Failed  3363     1   126.8  Failed  10.6
    Efficient. 187    273    332    66    96.4  127.4   86.6
    Swin-Tran. 716   1014   3188    53   831.5 1309.0  282.9
    MMoE        20     10      7     1   0.061  0.063  0.058

Shape: Souffle launches an order of magnitude fewer kernels than every
baseline and moves the least data; XLA fragments reduction-heavy models
(LSTM/Swin) the worst.
"""

import pytest

from common import MODEL_NAMES, report_for, save_table

SYSTEMS = ("tensorrt", "apollo", "xla", "souffle-V4")

PAPER_KERNELS = {
    "bert": {"tensorrt": 120, "apollo": 240, "xla": 216, "souffle-V4": 24},
    "resnext": {"tensorrt": 2406, "apollo": 1226, "xla": 526, "souffle-V4": 105},
    "lstm": {"tensorrt": 662, "apollo": None, "xla": 3363, "souffle-V4": 1},
    "efficientnet": {"tensorrt": 187, "apollo": 273, "xla": 332, "souffle-V4": 66},
    "swin": {"tensorrt": 716, "apollo": 1014, "xla": 3188, "souffle-V4": 53},
    "mmoe": {"tensorrt": 20, "apollo": 10, "xla": 7, "souffle-V4": 1},
}

PAPER_MB = {
    "bert": {"tensorrt": 361.8, "apollo": 880.5, "souffle-V4": 226.8},
    "resnext": {"tensorrt": 622.2, "apollo": 436.1, "souffle-V4": 470.2},
    "lstm": {"tensorrt": 126.8, "apollo": None, "souffle-V4": 10.6},
    "efficientnet": {"tensorrt": 96.4, "apollo": 127.4, "souffle-V4": 86.6},
    "swin": {"tensorrt": 831.5, "apollo": 1309.0, "souffle-V4": 282.9},
    "mmoe": {"tensorrt": 0.061, "apollo": 0.063, "souffle-V4": 0.058},
}


@pytest.fixture(scope="module")
def reports():
    return {
        model: {system: report_for(model, system) for system in SYSTEMS}
        for model in MODEL_NAMES
    }


def test_table5_kernels_and_memory(benchmark, reports):
    benchmark(lambda: report_for("mmoe", "souffle-V4"))

    lines = [
        f"{'model':12s} " + " ".join(f"{s + ' #k':>14s}" for s in SYSTEMS)
        + "   " + " ".join(f"{s + ' MB':>14s}" for s in SYSTEMS)
    ]
    for model in MODEL_NAMES:
        kernel_cells = []
        mb_cells = []
        for system in SYSTEMS:
            report = reports[model][system]
            ref_k = PAPER_KERNELS[model].get(system)
            kernel_cells.append(
                f"{report.kernel_calls:6d}({ref_k if ref_k else '-':>5})"
            )
            ref_mb = PAPER_MB.get(model, {}).get(system)
            mb_cells.append(
                f"{report.transfer_bytes / 1e6:8.2f}"
                + (f"({ref_mb:g})" if ref_mb else "")
            )
        lines.append(
            f"{model:12s} " + " ".join(kernel_cells) + "   " + " ".join(mb_cells)
        )
    save_table("table5_kernels_memory", "\n".join(lines))

    for model in MODEL_NAMES:
        ours = reports[model]["souffle-V4"]
        for system in ("tensorrt", "apollo", "xla"):
            baseline = reports[model][system]
            assert ours.kernel_calls < baseline.kernel_calls, (model, system)
            assert ours.transfer_bytes <= baseline.transfer_bytes, (model, system)

    # Souffle compiles LSTM and MMoE to a single kernel (paper Table 5).
    assert reports["lstm"]["souffle-V4"].kernel_calls == 1
    assert reports["mmoe"]["souffle-V4"].kernel_calls == 1

    # Kernel-count gap is at least ~4x everywhere (paper: 5-660x).
    for model in MODEL_NAMES:
        ours = reports[model]["souffle-V4"].kernel_calls
        best_baseline = min(
            reports[model][s].kernel_calls for s in ("tensorrt", "apollo", "xla")
        )
        assert best_baseline >= 3 * ours, model
