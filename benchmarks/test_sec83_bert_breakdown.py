"""Sec. 8.3 — BERT analysis: kernel-class latency split and per-layer kernels.

Paper observations reproduced here:

* "TensorRT maps a BERT layer to 10 kernels, while Souffle can partition
  one layer into two kernels";
* "Souffle reduces the memory-intensive kernel latency from 31.0 us (in
  TensorRT) to 25.5 us ... for BERT one layer" — i.e. most of Souffle's win
  on BERT comes from the memory-intensive side, while TensorRT's hand-tuned
  compute kernels remain competitive;
* IREE launches 180 kernels vs Souffle's 24 end-to-end.
"""

import pytest

from repro import SouffleCompiler, profile_module
from repro.baselines import IREECompiler, TensorRTCompiler
from repro.models import build_bert

from common import save_table


@pytest.fixture(scope="module")
def one_layer_reports():
    graph = build_bert(layers=1)
    return {
        "tensorrt": profile_module(TensorRTCompiler().compile(graph)),
        "iree": profile_module(IREECompiler().compile(graph)),
        "souffle": profile_module(SouffleCompiler().compile(graph)),
    }


def test_sec83_bert_layer_breakdown(benchmark, one_layer_reports):
    graph = build_bert(layers=1)
    module = SouffleCompiler().compile(graph)
    benchmark(module.simulate)

    lines = [
        f"{'system':10s} {'kernels/layer':>14s} {'compute us':>11s} "
        f"{'memory us':>10s} {'total us':>9s}"
    ]
    for system, report in one_layer_reports.items():
        compute, memory = report.latency_split_us()
        lines.append(
            f"{system:10s} {report.kernel_calls:14d} {compute:11.2f} "
            f"{memory:10.2f} {report.total_time_us:9.2f}"
        )
    lines.append("")
    lines.append("paper: TRT 10 kernels/layer vs Souffle 2; memory-kernel "
                 "latency 31.0us (TRT) -> 25.5us (Souffle)")
    save_table("sec83_bert_layer_breakdown", "\n".join(lines))

    trt = one_layer_reports["tensorrt"]
    souffle = one_layer_reports["souffle"]
    iree = one_layer_reports["iree"]

    # Souffle maps one layer to very few kernels; TRT needs many more.
    assert souffle.kernel_calls <= 4
    assert trt.kernel_calls >= 3 * souffle.kernel_calls

    # The memory-intensive latency shrinks under Souffle.
    _, trt_memory = trt.latency_split_us()
    _, souffle_memory = souffle.latency_split_us()
    assert souffle_memory < trt_memory

    # IREE launches many more kernels than Souffle (paper: 180 vs 24).
    assert iree.kernel_calls > 3 * souffle.kernel_calls
