"""Table 4 — execution time (ms) with Souffle's optimisations enabled
cumulatively: V0 (TVM+Ansor) -> +horizontal (V1) -> +vertical (V2) ->
+global sync (V3) -> +subprogram-level optimisation (V4).

Paper reference (ms):

    Model         V0     V1     V2     V3     V4
    BERT         3.1    2.12   1.53   1.41   1.22
    ResNeXt     29.0    5.90   4.43   4.43   4.43
    LSTM        6.78    1.60   1.21   0.8    0.8
    EfficientNet 4.2    0.91   0.72   0.63   0.63
    Swin-Trans. 5.81    4.88   2.09   1.78   1.55
    MMoE        0.05    0.019  0.016  0.014  0.014

Shape: each level is monotone non-increasing (within noise) and V4 is a
clear improvement over V0 on every model; transformer models gain from V3/V4
(global sync + pipeline/reuse), as the paper highlights.
"""

import pytest

from common import MODEL_NAMES, report_for, save_table

LEVELS = [f"souffle-V{k}" for k in range(5)]

PAPER_MS = {
    "bert": [3.1, 2.12, 1.53, 1.41, 1.22],
    "resnext": [29.0, 5.90, 4.43, 4.43, 4.43],
    "lstm": [6.78, 1.60, 1.21, 0.8, 0.8],
    "efficientnet": [4.2, 0.91, 0.72, 0.63, 0.63],
    "swin": [5.81, 4.88, 2.09, 1.78, 1.55],
    "mmoe": [0.05, 0.019, 0.016, 0.014, 0.014],
}


@pytest.fixture(scope="module")
def ablation():
    return {
        model: [report_for(model, level).total_time_ms for level in LEVELS]
        for model in MODEL_NAMES
    }


def test_table4_ablation(benchmark, ablation):
    benchmark(lambda: report_for("bert", "souffle-V4"))

    header = f"{'model':12s} " + " ".join(f"{f'V{k}':>8s}" for k in range(5))
    lines = [header + "   (paper V0..V4)"]
    for model in MODEL_NAMES:
        ours = " ".join(f"{t:8.3f}" for t in ablation[model])
        ref = "/".join(f"{t:g}" for t in PAPER_MS[model])
        lines.append(f"{model:12s} {ours}   ({ref})")
    save_table("table4_ablation", "\n".join(lines))

    for model in MODEL_NAMES:
        times = ablation[model]
        # The full pipeline clearly beats the Ansor starting point.
        assert times[4] < times[0], model
        # Cumulative levels never regress by more than measurement slack.
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.15, (model, times)

    # Transformers benefit from V3 (global sync) and V4 (subprogram opt),
    # Sec. 8.2: "Transformer-based BERT and Swin-Trans. also benefit from
    # global sync and subprogram-level optimization".
    for model in ("bert", "swin"):
        times = ablation[model]
        assert times[4] < times[2], model
