"""Sec. 8.5 — compilation overhead.

"Souffle adds up to 63s overhead on top of Ansor, which is negligible
compared to the hours Ansor requires for schedule search."

Here the Ansor stand-in searches in milliseconds (analytic cost model, no
hardware measurements), so absolute numbers differ; the reproduced shape is
that Souffle's *added* phases (global analysis, TE transformation,
partitioning, merged-kernel codegen) stay within tens of seconds for every
model, dominated by the largest unrolled program (LSTM).
"""

import time

import pytest

from common import MODEL_NAMES, compile_with, get_graph, save_table

SOUFFLE_PHASES = (
    "horizontal_transform",
    "vertical_transform",
    "analysis",
    "partitioning",
    "codegen",
    "subprogram_opt",
)


@pytest.fixture(scope="module")
def stats():
    return {
        model: compile_with(model, "souffle-V4").stats
        for model in MODEL_NAMES
    }


def test_sec85_compile_overhead(benchmark, stats):
    benchmark(lambda: compile_with("mmoe", "souffle-V4"))

    lines = [
        f"{'model':12s} {'total s':>9s} {'souffle-added s':>16s} "
        f"{'sched trials':>13s}"
    ]
    for model in MODEL_NAMES:
        stat = stats[model]
        added = sum(stat.phase_seconds.get(p, 0.0) for p in SOUFFLE_PHASES)
        lines.append(
            f"{model:12s} {stat.total_seconds:9.2f} {added:16.2f} "
            f"{stat.schedule_trials:13d}"
        )
    lines.append("")
    lines.append("paper: Souffle adds <= 63 s on top of Ansor's search")
    save_table("sec85_compile_overhead", "\n".join(lines))

    for model in MODEL_NAMES:
        stat = stats[model]
        added = sum(stat.phase_seconds.get(p, 0.0) for p in SOUFFLE_PHASES)
        # Same bound the paper reports for its added overhead.
        assert added < 63.0, (model, added)
        assert stat.schedule_trials >= 0


def test_sec85_warm_cache_recompile(tmp_path):
    """The persistent compile cache amortises the overhead entirely: a warm
    BERT recompile hits the module tier and must be at least 5x faster than
    the cold compile while emitting byte-identical kernels."""
    from repro import SouffleCompiler, SouffleOptions

    graph = get_graph("bert")
    directory = str(tmp_path / "cache")

    def timed_compile():
        compiler = SouffleCompiler(
            options=SouffleOptions.from_level(4), cache=directory
        )
        start = time.perf_counter()
        module = compiler.compile(graph)
        return module, time.perf_counter() - start

    cold, cold_seconds = timed_compile()
    assert not cold.stats.module_cache_hit

    # Best of three warm runs: each uses a fresh compiler (and a fresh
    # CompileCache), so every one exercises the on-disk store.
    warm_runs = [timed_compile() for _ in range(3)]
    warm, warm_seconds = min(warm_runs, key=lambda run: run[1])
    assert warm.stats.module_cache_hit

    assert warm.kernel_calls == cold.kernel_calls
    assert warm.render_kernels() == cold.render_kernels()
    assert warm.simulate().total_time_us == cold.simulate().total_time_us

    speedup = cold_seconds / warm_seconds
    save_table(
        "sec85_warm_cache_recompile",
        "\n".join(
            [
                f"{'path':12s} {'compile s':>10s} {'sched trials':>13s}",
                f"{'cold':12s} {cold_seconds:10.4f} "
                f"{cold.stats.schedule_trials:13d}",
                f"{'warm':12s} {warm_seconds:10.4f} "
                f"{warm.stats.schedule_trials:13d}",
                "",
                f"warm-cache speedup: {speedup:.1f}x (acceptance floor: 5x)",
            ]
        ),
    )
    assert speedup >= 5.0, (cold_seconds, warm_seconds)
