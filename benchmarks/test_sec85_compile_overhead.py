"""Sec. 8.5 — compilation overhead.

"Souffle adds up to 63s overhead on top of Ansor, which is negligible
compared to the hours Ansor requires for schedule search."

Here the Ansor stand-in searches in milliseconds (analytic cost model, no
hardware measurements), so absolute numbers differ; the reproduced shape is
that Souffle's *added* phases (global analysis, TE transformation,
partitioning, merged-kernel codegen) stay within tens of seconds for every
model, dominated by the largest unrolled program (LSTM).
"""

import pytest

from common import MODEL_NAMES, compile_with, save_table

SOUFFLE_PHASES = (
    "horizontal_transform",
    "vertical_transform",
    "analysis",
    "partitioning",
    "codegen",
    "subprogram_opt",
)


@pytest.fixture(scope="module")
def stats():
    return {
        model: compile_with(model, "souffle-V4").stats
        for model in MODEL_NAMES
    }


def test_sec85_compile_overhead(benchmark, stats):
    benchmark(lambda: compile_with("mmoe", "souffle-V4"))

    lines = [
        f"{'model':12s} {'total s':>9s} {'souffle-added s':>16s} "
        f"{'sched trials':>13s}"
    ]
    for model in MODEL_NAMES:
        stat = stats[model]
        added = sum(stat.phase_seconds.get(p, 0.0) for p in SOUFFLE_PHASES)
        lines.append(
            f"{model:12s} {stat.total_seconds:9.2f} {added:16.2f} "
            f"{stat.schedule_trials:13d}"
        )
    lines.append("")
    lines.append("paper: Souffle adds <= 63 s on top of Ansor's search")
    save_table("sec85_compile_overhead", "\n".join(lines))

    for model in MODEL_NAMES:
        stat = stats[model]
        added = sum(stat.phase_seconds.get(p, 0.0) for p in SOUFFLE_PHASES)
        # Same bound the paper reports for its added overhead.
        assert added < 63.0, (model, added)
        assert stat.schedule_trials >= 0
