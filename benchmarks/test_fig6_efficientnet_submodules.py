"""Fig. 5 / Fig. 6 — EfficientNet sub-module latency breakdown.

The MBConv building block (M0-M9, varying channel/resolution) is compiled
four ways, matching Fig. 5's versions:

    (a) unfused      — one kernel per TE                 (UnfusedCompiler)
    (b) fused        — Ansor's producer-consumer fusion  (AnsorCompiler)
    (c) global-sync  — whole sub-module as one kernel,
                       no data reuse                     (Souffle V3)
    (d) data-reuse   — + on-chip tensor reuse            (Souffle V4)

Paper reference (Fig. 6, speedup over unfused, average across M0-M9):
global-sync achieves 1.31x over unfused and data-reuse lifts it to 1.84x.
"""

import pytest

from repro import SouffleCompiler, SouffleOptions, profile_module
from repro.baselines import AnsorCompiler, UnfusedCompiler
from repro.models import build_mbconv_submodule

from common import geomean, save_table

# (channels, resolution) of representative B0 sub-modules M0-M9.
SUBMODULES = [
    (16, 112), (24, 56), (24, 56), (40, 28), (40, 28),
    (80, 14), (80, 14), (112, 14), (192, 7), (320, 7),
]

VERSIONS = ("unfused", "fused", "global-sync", "data-reuse")


def compile_version(graph, version):
    if version == "unfused":
        return UnfusedCompiler().compile(graph)
    if version == "fused":
        return AnsorCompiler().compile(graph)
    level = 3 if version == "global-sync" else 4
    return SouffleCompiler(options=SouffleOptions.from_level(level)).compile(graph)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for index, (channels, resolution) in enumerate(SUBMODULES):
        graph = build_mbconv_submodule(channels, resolution, name=f"M{index}")
        times = {}
        for version in VERSIONS:
            module = compile_version(graph, version)
            times[version] = profile_module(module).total_time_us
        results[f"M{index}"] = times
    return results


def test_fig6_efficientnet_submodule_breakdown(benchmark, sweep):
    graph = build_mbconv_submodule(*SUBMODULES[0], name="probe")
    module = compile_version(graph, "data-reuse")
    benchmark(module.simulate)

    header = (
        f"{'module':8s} " + " ".join(f"{v:>12s}" for v in VERSIONS)
        + "   speedups vs unfused"
    )
    lines = [header]
    speedups = {v: [] for v in VERSIONS}
    for name, times in sweep.items():
        base = times["unfused"]
        cells = " ".join(f"{times[v]:12.2f}" for v in VERSIONS)
        sp = " ".join(f"{base / times[v]:5.2f}x" for v in VERSIONS)
        for version in VERSIONS:
            speedups[version].append(base / times[version])
        lines.append(f"{name:8s} {cells}   {sp}")
    lines.append("")
    lines.append(
        "average speedups (paper: global-sync 1.31x, data-reuse 1.84x): "
        + ", ".join(
            f"{v}={geomean(speedups[v]):.2f}x" for v in VERSIONS
        )
    )
    save_table("fig6_efficientnet_submodules", "\n".join(lines))

    avg = {v: geomean(speedups[v]) for v in VERSIONS}
    # The paper's ordering: every added mechanism helps on average.
    assert avg["fused"] > 1.0
    assert avg["global-sync"] > avg["fused"] * 0.95
    assert avg["data-reuse"] >= avg["global-sync"]
    # Data reuse is a clear win over plain fusion (paper: 1.84x vs ~1.3x).
    assert avg["data-reuse"] > 1.3
