"""Table 6 / Fig. 7 — GPU performance counters for the LSTM case study.

Paper reference:

    metric                              Rammer    Souffle
    global memory transactions (bytes)  1911.0 MB  21.11 MB
    pipeline utilisation (LSU)           20.2%      35.4%
    pipeline utilisation (FMA)            8.0%      19.0%

Mechanism to reproduce (Sec. 8.4): Rammer's wavefront kernels reload every
cell's weights at every time step; Souffle generates ONE kernel for the
whole model, discovers the temporal reuse of the weights, and keeps them
on-chip — memory traffic drops by ~two orders of magnitude and both
pipelines are busier.
"""

import pytest

from common import report_for, save_table

PAPER = {
    "rammer": {"mb": 1911.0, "lsu": 0.202, "fma": 0.080},
    "souffle-V4": {"mb": 21.11, "lsu": 0.354, "fma": 0.190},
}


@pytest.fixture(scope="module")
def reports():
    return {
        system: report_for("lstm", system)
        for system in ("rammer", "souffle-V4")
    }


def test_table6_lstm_counters(benchmark, reports):
    benchmark(lambda: report_for("lstm", "souffle-V4"))

    lines = [f"{'metric':34s} {'rammer':>12s} {'souffle':>12s} {'paper':>18s}"]
    rammer, souffle = reports["rammer"], reports["souffle-V4"]
    lines.append(
        f"{'global memory transfer (MB)':34s} "
        f"{rammer.transfer_bytes / 1e6:12.2f} "
        f"{souffle.transfer_bytes / 1e6:12.2f} "
        f"{'1911.0 / 21.11':>18s}"
    )
    rammer_util = rammer.utilization()
    souffle_util = souffle.utilization()
    lines.append(
        f"{'pipeline utilisation LSU (%)':34s} "
        f"{rammer_util['lsu'] * 100:12.1f} {souffle_util['lsu'] * 100:12.1f} "
        f"{'20.2 / 35.4':>18s}"
    )
    lines.append(
        f"{'pipeline utilisation FMA (%)':34s} "
        f"{rammer_util['fma'] * 100:12.1f} {souffle_util['fma'] * 100:12.1f} "
        f"{'8.0 / 19.0':>18s}"
    )
    lines.append(
        f"{'kernel calls':34s} {rammer.kernel_calls:12d} "
        f"{souffle.kernel_calls:12d} {'(souffle: 1 kernel)':>18s}"
    )
    save_table("table6_lstm_counters", "\n".join(lines))

    # Orders-of-magnitude traffic reduction (paper: ~90x).
    assert souffle.transfer_bytes < rammer.transfer_bytes / 20

    # Souffle's remaining traffic is dominated by reading the weights once:
    # ~10.5 MB of FP16 weights -> low tens of MB total (paper: 21.1 MB).
    assert souffle.transfer_bytes / 1e6 < 60

    # The single merged kernel does more useful arithmetic per unit time.
    assert souffle_util["fma"] > rammer_util["fma"]

    # One kernel for the whole unrolled LSTM (Fig. 7b).
    assert souffle.kernel_calls == 1
