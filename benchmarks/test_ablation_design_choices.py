"""Ablations of this implementation's own design choices (DESIGN.md §5).

Not a paper table — these benches justify the reproduction's internal
decisions, the ablation counterpart the paper runs implicitly:

  A. schedule oracle: Ansor-style search vs Roller-style construction
     (paper Sec. 8.5 cites Roller as the faster, orthogonal optimizer);
  B. reuse-cache capacity: how on-chip capacity drives the LSTM result
     (Table 6's mechanism is capacity-sensitive by construction);
  C. partitioning oracle: searched schedules vs the closed-form occupancy
     model (paper Sec. 9's proposed improvement).
"""

import time

import pytest

from repro import SouffleCompiler, profile_module
from repro.analysis import Partitioner, characterize_program
from repro.analysis.occupancy import FastPartitioner
from repro.gpu import a100_40gb
from repro.graph import lower_graph
from repro.models import build_bert, build_bert_attention_subgraph, build_lstm
from repro.schedule import AnsorScheduler, RollerScheduler
from repro.tir.reuse_cache import apply_reuse

from common import save_table


def test_ablation_scheduler_choice(benchmark):
    """A: Ansor search vs Roller construction — compile effort vs quality."""
    graph = build_bert_attention_subgraph()

    rows = []
    for name, factory in (("ansor", AnsorScheduler), ("roller", RollerScheduler)):
        start = time.perf_counter()
        compiler = SouffleCompiler(scheduler_factory=factory)
        module = compiler.compile(graph)
        compile_s = time.perf_counter() - start
        report = profile_module(module)
        trials = module.stats.schedule_trials
        rows.append((name, compile_s, trials, report.total_time_us))

    benchmark(lambda: SouffleCompiler(
        scheduler_factory=RollerScheduler).compile(graph))

    lines = [f"{'oracle':8s} {'compile s':>10s} {'trials':>8s} {'exec us':>9s}"]
    for name, compile_s, trials, exec_us in rows:
        lines.append(f"{name:8s} {compile_s:10.3f} {trials:8d} {exec_us:9.2f}")
    save_table("ablation_scheduler", "\n".join(lines))

    (_, ansor_s, ansor_trials, ansor_us) = rows[0]
    (_, roller_s, roller_trials, roller_us) = rows[1]
    assert roller_trials == 0 and ansor_trials > 0
    # Construction may cost some quality but stays in the same league.
    assert roller_us <= 6 * ansor_us


def test_ablation_reuse_capacity(benchmark):
    """B: sweep the software-cache capacity on the LSTM kernel.

    The Table-6 result (weights pinned on-chip) requires capacity >= the
    ~10.5 MB of FP16 weights; below that, traffic grows steeply.
    """
    graph = build_lstm(time_steps=20, num_cells=10)
    module = SouffleCompiler().compile(graph)
    kernel = module.kernels[0]

    import copy

    capacities_mb = (0.5, 2, 8, 16, 32)
    rows = []
    for capacity_mb in capacities_mb:
        accesses = copy.deepcopy(kernel.accesses)
        for access in accesses:
            access.satisfied = False
        apply_reuse(accesses, capacity=capacity_mb * 1e6)
        loads = sum(a.nbytes for a in accesses
                    if a.kind == "load" and not a.satisfied)
        rows.append((capacity_mb, loads / 1e6))

    benchmark(module.simulate)

    lines = [f"{'capacity MB':>12s} {'load MB':>9s}"]
    for capacity_mb, loads_mb in rows:
        lines.append(f"{capacity_mb:12.1f} {loads_mb:9.2f}")
    save_table("ablation_reuse_capacity", "\n".join(lines))

    loads = [loads_mb for _, loads_mb in rows]
    assert loads == sorted(loads, reverse=True)  # monotone in capacity
    assert loads[-1] < loads[0] / 3              # big caches pay off


def test_ablation_partitioner_cost_model(benchmark):
    """C: FastPartitioner (closed-form occupancy) vs search-based, on BERT."""
    program = lower_graph(build_bert())
    chars = characterize_program(program)
    device = a100_40gb()

    start = time.perf_counter()
    slow = Partitioner(device, AnsorScheduler(device)).partition(program, chars)
    slow_s = time.perf_counter() - start

    start = time.perf_counter()
    fast = FastPartitioner(device).partition(program, chars)
    fast_s = time.perf_counter() - start

    benchmark(lambda: FastPartitioner(device).partition(program, chars))

    lines = [
        f"{'partitioner':14s} {'seconds':>9s} {'subprograms':>12s}",
        f"{'search-based':14s} {slow_s:9.4f} {slow.num_subprograms:12d}",
        f"{'cost-model':14s} {fast_s:9.4f} {fast.num_subprograms:12d}",
    ]
    save_table("ablation_partitioner", "\n".join(lines))

    assert fast_s <= slow_s * 1.5
    assert 1 <= fast.num_subprograms <= 3 * slow.num_subprograms
    assert slow.num_subprograms <= 3 * fast.num_subprograms
