"""Tests for the shared transformation machinery (toposort/rebuild)."""

import pytest

from repro.errors import TransformError
from repro.graph import GraphBuilder, lower_graph
from repro.graph.te_program import TENode
from repro.te import compute, placeholder
from repro.transform.common import rebuild, toposort_nodes


@pytest.fixture()
def diamond():
    b = GraphBuilder("d")
    x = b.input((4, 4), name="x")
    left = b.relu(x)
    right = b.sigmoid(x)
    out = b.add(left, right)
    return lower_graph(b.build([out]))


class TestToposort:
    def test_preserves_valid_order(self, diamond):
        ordered = toposort_nodes(diamond.inputs, diamond.nodes)
        assert [n.name for n in ordered] == [n.name for n in diamond.nodes]

    def test_repairs_shuffled_order(self, diamond):
        shuffled = list(reversed(diamond.nodes))
        ordered = toposort_nodes(diamond.inputs, shuffled)
        position = {n: i for i, n in enumerate(ordered)}
        for node in ordered:
            for producer in diamond.node_producers(node):
                assert position[producer] < position[node]

    def test_stability_prefers_original_positions(self, diamond):
        """Independent nodes keep their relative order (Kahn with an
        index-ordered frontier)."""
        ordered = toposort_nodes(diamond.inputs, diamond.nodes)
        names = [n.name for n in ordered]
        assert names.index(diamond.nodes[0].name) < names.index(
            diamond.nodes[1].name
        )

    def test_unknown_tensor_rejected(self):
        ghost = placeholder((4,), name="ghost")
        t = compute((4,), lambda i: ghost[i] + 1, name="t")
        node = TENode(0, t, "op", "add")
        with pytest.raises(TransformError):
            toposort_nodes([], [node])

    def test_rebuild_renumbers(self, diamond):
        shuffled = list(reversed(diamond.nodes))
        program = rebuild(diamond, shuffled, diamond.outputs)
        assert [n.index for n in program.nodes] == list(range(len(program)))
        assert program.outputs[0] is diamond.outputs[0]
