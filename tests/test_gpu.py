"""Tests for the device model and analytic simulator."""

import pytest

from repro.gpu import GPUSimulator, KernelSpec, a100_40gb, v100_16gb


@pytest.fixture()
def device():
    return a100_40gb()


@pytest.fixture()
def sim(device):
    return GPUSimulator(device)


class TestDeviceModel:
    def test_blocks_per_sm_thread_bound(self, device):
        assert device.blocks_per_sm(1024, 0) == 2

    def test_blocks_per_sm_smem_bound(self, device):
        assert device.blocks_per_sm(128, 96 * 1024) == 1

    def test_blocks_per_sm_register_bound(self, device):
        assert device.blocks_per_sm(256, 0, regs_per_thread=128) == 2

    def test_max_blocks_per_wave(self, device):
        per_sm = device.blocks_per_sm(256, 8 * 1024)
        assert device.max_blocks_per_wave(256, 8 * 1024) == 108 * per_sm

    def test_peaks(self, device):
        assert device.peak_flops(True) > device.peak_flops(False)
        assert device.bandwidth_bytes == pytest.approx(1555e9)

    def test_total_shared(self, device):
        assert device.total_shared_mem == 108 * 164 * 1024

    def test_v100_is_smaller(self, device):
        v100 = v100_16gb()
        assert v100.fp16_tensor_tflops < device.fp16_tensor_tflops
        assert v100.sm_count < device.sm_count


def _kernel(**kw):
    base = dict(name="k", grid_blocks=108, threads_per_block=256)
    base.update(kw)
    return KernelSpec(**base)


class TestKernelCost:
    def test_launch_overhead_floor(self, sim, device):
        m = sim.run_kernel(_kernel())
        assert m.time_us >= device.kernel_launch_us

    def test_more_bytes_more_time(self, sim):
        t1 = sim.run_kernel(_kernel(load_bytes=1e6)).time_us
        t2 = sim.run_kernel(_kernel(load_bytes=1e8)).time_us
        assert t2 > t1

    def test_more_flops_more_time(self, sim):
        t1 = sim.run_kernel(_kernel(fp32_flops=1e8)).time_us
        t2 = sim.run_kernel(_kernel(fp32_flops=1e10)).time_us
        assert t2 > t1

    def test_tensor_core_faster_than_cuda_core(self, sim):
        t16 = sim.run_kernel(_kernel(fp16_flops=1e10)).time_us
        t32 = sim.run_kernel(_kernel(fp32_flops=1e10)).time_us
        assert t16 < t32

    def test_pipelining_helps_balanced_kernels(self, sim):
        flops, nbytes = 5e9, 5e8
        plain = sim.run_kernel(_kernel(fp32_flops=flops, load_bytes=nbytes))
        piped = sim.run_kernel(
            _kernel(fp32_flops=flops, load_bytes=nbytes, pipelined=True)
        )
        assert piped.time_us < plain.time_us

    def test_small_grid_underutilises_compute(self, sim):
        full = sim.run_kernel(_kernel(fp32_flops=1e9, grid_blocks=108))
        tiny = sim.run_kernel(_kernel(fp32_flops=1e9, grid_blocks=4))
        assert tiny.compute_time_us > full.compute_time_us

    def test_grid_sync_costs(self, sim, device):
        plain = sim.run_kernel(_kernel(load_bytes=1e6))
        synced = sim.run_kernel(_kernel(load_bytes=1e6, grid_syncs=10))
        assert synced.time_us == pytest.approx(
            plain.time_us + 10 * device.grid_sync_us
        )

    def test_atomic_traffic_counted(self, sim):
        t0 = sim.run_kernel(_kernel(load_bytes=1e6)).time_us
        t1 = sim.run_kernel(_kernel(load_bytes=1e6, atomic_bytes=1e8)).time_us
        assert t1 > t0

    def test_efficiency_override(self, sim):
        fast = sim.run_kernel(_kernel(fp32_flops=1e10, compute_efficiency=0.9))
        slow = sim.run_kernel(_kernel(fp32_flops=1e10, compute_efficiency=0.1))
        assert slow.compute_time_us > fast.compute_time_us * 5

    def test_min_memory_latency_floor(self, sim):
        m = sim.run_kernel(_kernel(load_bytes=16))
        assert m.memory_time_us >= 1.0

    def test_utilizations_bounded(self, sim):
        m = sim.run_kernel(_kernel(load_bytes=1e7, fp32_flops=1e9))
        assert 0 <= m.lsu_utilization <= 1
        assert 0 <= m.fma_utilization <= 1

    def test_empty_launch_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(name="bad", grid_blocks=0, threads_per_block=128)


class TestModuleMetrics:
    def test_module_aggregates(self, sim, device):
        kernels = [_kernel(load_bytes=1e6, store_bytes=5e5) for _ in range(4)]
        metrics = sim.run_module(kernels)
        assert metrics.kernel_calls == 4
        assert metrics.load_bytes == pytest.approx(4e6)
        assert metrics.store_bytes == pytest.approx(2e6)
        assert metrics.launch_overhead_us == pytest.approx(
            4 * device.kernel_launch_us
        )
        assert metrics.total_time_ms == pytest.approx(
            metrics.total_time_us / 1e3
        )

    def test_kernel_launches_dominate_tiny_kernels(self, sim, device):
        """Why fusion matters for MMoE: launch overhead dominates."""
        many = sim.run_module([_kernel(load_bytes=1e4) for _ in range(50)])
        one = sim.run_module([_kernel(load_bytes=50e4)])
        assert many.total_time_us > one.total_time_us

    def test_mean_utilization(self, sim):
        metrics = sim.run_module([_kernel(load_bytes=1e8)])
        util = metrics.mean_utilization()
        assert util["lsu"] > util["fma"]
