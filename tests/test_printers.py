"""Tests for the TE printer and TIR statement rendering."""

import pytest

from repro.graph import GraphBuilder, lower_graph
from repro.te import (
    compute,
    describe_dependencies,
    format_program,
    format_tensor,
    placeholder,
    reduce_axis,
    sum_expr,
)
from repro.tir.stmt import (
    AllocShared,
    ComputeStmt,
    GridSync,
    KernelFunction,
    LoadGlobal,
    Predicate,
    StoreGlobal,
)


class TestTEPrinter:
    def test_placeholder(self):
        t = placeholder((4, 8), name="A", dtype="float16")
        text = format_tensor(t)
        assert "A" in text and "placeholder" in text and "4x8" in text

    def test_compute_shows_axes_and_body(self):
        a = placeholder((4, 8), name="A")
        rk = reduce_axis((0, 8), name="rk")
        t = compute((4,), lambda i: sum_expr(a[i, rk], [rk]), name="S")
        text = format_tensor(t)
        assert "S[" in text and "sum(" in text and "rk" in text

    def test_format_program_multi_line(self):
        b = GraphBuilder("p")
        x = b.input((4, 4))
        program = lower_graph(b.build([b.sigmoid(b.relu(x))]))
        text = format_program(n.tensor for n in program)
        assert len(text.splitlines()) == 2

    def test_describe_dependencies(self):
        a = placeholder((4,), name="A")
        t = compute((4,), lambda i: a[i] * 2, name="T")
        assert "A" in describe_dependencies(t)
        assert "(input)" in describe_dependencies(a)


class TestStmtRendering:
    def test_alloc(self):
        assert "uint8_t buf[128]" in AllocShared("buf", 128).render()

    def test_load_and_cached_load(self):
        t = placeholder((4,), name="T")
        assert "ldg2s" in LoadGlobal(t, 16.0).render()
        assert "reuse hit" in LoadGlobal(t, 16.0, cached=True).render()

    def test_store_and_elided_store(self):
        t = placeholder((4,), name="T")
        assert "sts2g" in StoreGlobal(t, 16.0).render()
        assert "elided" in StoreGlobal(t, 16.0, elided=True).render()

    def test_compute_tensor_core_vs_ffma(self):
        assert "wmma" in ComputeStmt("te", "matmul", 1e6, tensor_core=True).render()
        assert "ffma" in ComputeStmt("te", "add", 1e3).render()
        assert "atomicAdd" in ComputeStmt("te", "reduce_sum", 1e3,
                                          atomic=True).render()

    def test_grid_sync(self):
        assert GridSync().render() == "grid.sync();"

    def test_predicate_indents_body(self):
        pred = Predicate(48, [GridSync()])
        text = pred.render()
        assert "blockIdx.x < 48" in text and "  grid.sync();" in text

    def test_kernel_function_render_and_sync_count(self):
        t = placeholder((4,), name="T")
        fn = KernelFunction(
            name="k", params=[t], grid_blocks=8, threads_per_block=128,
            shared_mem_bytes=1024,
            stmts=[Predicate(8, [LoadGlobal(t, 16.0)]), GridSync(),
                   Predicate(4, [StoreGlobal(t, 16.0)])],
        )
        text = fn.render()
        assert "__global__ void k(" in text
        assert "<<<8, 128>>>" in text
        assert fn.sync_count == 1
